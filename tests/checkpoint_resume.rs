//! Resume-equivalence over the whole benchmark suite: snapshotting any
//! tiny workload mid-launch, serialising the snapshot to bytes, restoring
//! it and continuing must reproduce the exact event digest of an
//! uninterrupted run. This is the correctness anchor of the checkpoint
//! subsystem — a checkpoint that loses any timing-relevant state shows up
//! here as a digest mismatch on at least one workload.

use gcl::prelude::*;
use gcl::workloads::tiny_workloads;

fn sanitized_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::small();
    cfg.sanitize = true;
    cfg
}

/// Every tiny workload, interrupted at several cycle offsets (the snapshot
/// round-trips through bytes each time, on every launch the workload
/// performs), finishes with the digest, cycle count and output of an
/// uninterrupted run.
#[test]
fn every_tiny_workload_resumes_digest_identical() {
    for w in tiny_workloads() {
        let mut gpu = Gpu::new(sanitized_cfg()).expect("small config is valid");
        let reference = w.run(&mut gpu).expect("uninterrupted run completes");
        let ref_digest = reference.stats.digest.expect("sanitize produces a digest");

        // Cycle 0 (before the first step), cycle 1, mid-run, and one cycle
        // before the end of the longest launch. Offsets past a launch's
        // length simply never fire for that launch; offset 0 fires for all.
        let cycles = reference.stats.cycles;
        let offsets = [0, 1, cycles / 2, cycles.saturating_sub(1)];
        for at in offsets {
            let mut gpu = Gpu::new(sanitized_cfg()).expect("small config is valid");
            gpu.set_resume_selftest(Some(at));
            let run = w
                .run(&mut gpu)
                .unwrap_or_else(|e| panic!("{} interrupted at cycle {at}: {e}", w.name()));
            assert_eq!(
                run.stats.digest,
                Some(ref_digest),
                "{} resumed at cycle {at} diverged from the uninterrupted run",
                w.name()
            );
            assert_eq!(
                run.stats.cycles,
                reference.stats.cycles,
                "{} resumed at cycle {at} took a different number of cycles",
                w.name()
            );
        }
    }
}
