//! Integration tests of the `gcl suite` CLI: the parallel job pool, the
//! content-addressed result cache, and `--resume` composing with `--jobs`.
//! Each test drives the real binary in its own scratch directory (the
//! manifest and cache live under the working directory).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcl-cli-suite-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn gcl(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gcl"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("run gcl binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The digest column of a suite table, in row order.
fn digests(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|l| l.split_whitespace().find(|t| t.starts_with("0x")))
        .map(str::to_string)
        .collect()
}

#[test]
fn parallel_suite_matches_serial_and_replays_from_cache() {
    let dir = scratch("parallel");
    // Cold parallel run (cache fills), then a serial run with the cache
    // bypassed: same 15 digests in the same order.
    let par = gcl(&dir, &["suite", "--tiny", "--sanitize", "--jobs", "4"]);
    assert!(
        par.status.success(),
        "{}",
        String::from_utf8_lossy(&par.stderr)
    );
    let par_digests = digests(&stdout(&par));
    assert_eq!(par_digests.len(), 15);

    let ser = gcl(&dir, &["suite", "--tiny", "--sanitize", "--no-cache"]);
    assert!(ser.status.success());
    assert_eq!(
        digests(&stdout(&ser)),
        par_digests,
        "-j4 == -j1, digest for digest"
    );

    // Warm rerun: all 15 served from cache, zero simulations.
    let warm = gcl(&dir, &["suite", "--tiny", "--sanitize", "--jobs", "4"]);
    assert!(warm.status.success());
    let text = stdout(&warm);
    assert!(text.contains("(15 from cache)"), "{text}");
    assert_eq!(
        digests(&text),
        par_digests,
        "cached digests are the originals"
    );
}

#[test]
fn resume_composes_with_different_jobs() {
    let dir = scratch("resume");
    // Serial run with one forced failure: 14 ok, bfs failed, exit nonzero.
    let first = gcl(
        &dir,
        &[
            "suite",
            "--tiny",
            "--jobs",
            "1",
            "--no-cache",
            "--force-fail",
            "bfs",
        ],
    );
    assert!(
        !first.status.success(),
        "forced failure must fail the suite"
    );
    let text = stdout(&first);
    assert!(text.contains("FAILED"), "{text}");

    // Resuming with a different --jobs is NOT a config mismatch: the
    // parallelism of the recording run is irrelevant to its results. Only
    // bfs reruns; the other 14 are skipped from the manifest.
    let resumed = gcl(
        &dir,
        &["suite", "--tiny", "--resume", "--jobs", "4", "--no-cache"],
    );
    assert!(
        resumed.status.success(),
        "resume -j1 -> -j4 must work: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let text = stdout(&resumed);
    assert_eq!(
        text.matches("skipped (ok in manifest)").count(),
        14,
        "{text}"
    );
    assert!(text.contains("15 of 15 benchmarks completed"), "{text}");

    // Scale and sanitize remain hard mismatches.
    let wrong = gcl(&dir, &["suite", "--tiny", "--sanitize", "--resume"]);
    assert!(!wrong.status.success());
    let err = String::from_utf8_lossy(&wrong.stderr);
    assert!(err.contains("resume with the same flags"), "{err}");
}
