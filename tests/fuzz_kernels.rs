//! Random-kernel fuzzing under the sanitizer and memcheck.
//!
//! Each seed generates a kernel from a constrained PTX subset — integer
//! arithmetic, predicated branches, shared-memory traffic, uniform
//! `bar.sync`, and masked global loads/stores — that is race-free and
//! in-bounds *by construction*: every thread owns a private shared slot,
//! barriers are only emitted at top level (never inside a predicated
//! region), and every global index is masked to the buffer. Any sanitizer
//! or memcheck report is therefore a simulator bug, and every launch must
//! also be cycle-deterministic (equal digests across two runs from
//! identical initial state).

use gcl_ptx::{CmpOp, Kernel, KernelBuilder, Reg, Special, Type};
use gcl_rng::Rng;
use gcl_sim::{check_digests, pack_params, Dim3, Gpu, GpuConfig};

/// Words in the global buffer; indices are masked with `WORDS - 1`.
const WORDS: u32 = 64;
/// Threads per CTA: two warps, so cross-warp interleaving is exercised.
const THREADS: u32 = 64;
const SEEDS: u64 = 24;

/// Generate one random race-free, in-bounds kernel.
fn fuzz_kernel(seed: u64) -> Kernel {
    let mut rng = Rng::new(seed);
    let mut b = KernelBuilder::new("fuzz");
    let p = b.param("buf", Type::U64);
    let base = b.ld_param(Type::U64, p);
    let tid = b.sreg(Special::TidX);
    b.shared(THREADS * 4);
    // Each thread's private shared slot: races are impossible regardless
    // of barrier placement, so any RaceReport is a detector bug.
    let mine = b.mul(Type::U32, tid, 4i64);
    b.st_shared(Type::U32, mine, tid);

    // Pool of u32 values the generator draws operands from.
    let mut pool: Vec<Reg> = vec![tid];
    for _ in 0..3 {
        let c = rng.next_u32() & 0xffff;
        pool.push(b.imm32(c));
    }

    let pick = |rng: &mut Rng, pool: &[Reg]| pool[rng.usize_below(pool.len())];
    let n_ops = rng.u32_range_inclusive(6, 24);
    for _ in 0..n_ops {
        match rng.u32_below(8) {
            // Integer arithmetic between two pool values.
            0 | 1 => {
                let a = pick(&mut rng, &pool);
                let c = pick(&mut rng, &pool);
                let r = match rng.u32_below(4) {
                    0 => b.add(Type::U32, a, c),
                    1 => b.mul(Type::U32, a, c),
                    2 => b.xor(Type::U32, a, c),
                    _ => b.and(Type::U32, a, c),
                };
                pool.push(r);
            }
            // Store a pool value to the thread's private shared slot.
            2 => {
                let v = pick(&mut rng, &pool);
                b.st_shared(Type::U32, mine, v);
            }
            // Load it back.
            3 => {
                let v = b.ld_shared(Type::U32, mine);
                pool.push(v);
            }
            // Uniform barrier: only ever at top level, so every thread
            // reaches it and named-barrier deadlock is impossible.
            4 => b.bar_id(rng.u32_below(2)),
            // Masked global load; the index often derives from loaded
            // data, exercising the non-deterministic load path.
            5 => {
                let i = pick(&mut rng, &pool);
                let idx = b.and(Type::U32, i, i64::from(WORDS - 1));
                let addr = b.index64(base, idx, 4);
                let v = b.ld_global(Type::U32, addr);
                pool.push(v);
            }
            // Global store to the thread's own masked slot (tid < WORDS,
            // so threads never collide on a word).
            6 => {
                let v = pick(&mut rng, &pool);
                let addr = b.index64(base, tid, 4);
                b.st_global(Type::U32, addr, v);
            }
            // Predicated region: a couple of arithmetic / private-shared
            // ops under a divergent branch. No barriers inside.
            _ => {
                let a = pick(&mut rng, &pool);
                let bound = i64::from(rng.next_u32() & 0xffff);
                let pr = b.setp(CmpOp::Lt, Type::U32, a, bound);
                let skip = b.new_label();
                b.bra_unless(pr, skip);
                let x = pick(&mut rng, &pool);
                let y = pick(&mut rng, &pool);
                let s = b.add(Type::U32, x, y);
                b.st_shared(Type::U32, mine, s);
                b.place(skip);
            }
        }
    }
    let v = pool[pool.len() - 1];
    let addr = b.index64(base, tid, 4);
    b.st_global(Type::U32, addr, v);
    b.exit();
    b.build()
        .unwrap_or_else(|e| panic!("seed {seed}: generated kernel invalid: {e}"))
}

fn run_once(kernel: &Kernel, seed: u64) -> Option<u64> {
    let mut cfg = GpuConfig::small();
    cfg.sanitize = true;
    cfg.memcheck = true;
    let mut gpu = Gpu::new(cfg).unwrap();
    let buf = gpu.mem().alloc(u64::from(WORDS) * 4, 128).unwrap();
    let params = pack_params(kernel, &[buf]);
    let stats = gpu
        .launch(kernel, Dim3::x(2), Dim3::x(THREADS), &params)
        .unwrap_or_else(|e| panic!("seed {seed}: sanitized launch failed: {e}"));
    stats.digest
}

/// Every generated kernel must run clean under sanitize + memcheck, and
/// deterministically: two runs from identical initial state agree on the
/// event digest.
#[test]
fn random_kernels_run_sanitizer_and_memcheck_clean() {
    for seed in 0..SEEDS {
        let kernel = fuzz_kernel(seed);
        let first = run_once(&kernel, seed);
        let second = run_once(&kernel, seed);
        assert!(first.is_some(), "seed {seed}: digest missing");
        check_digests("fuzz", first, second).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
