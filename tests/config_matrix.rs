//! Robustness matrix: the simulator must produce identical functional
//! results and complete without deadlock across extreme configurations —
//! single SM, single partition, tiny queues, tiny caches, degenerate
//! interconnects.

use gcl::prelude::*;
use gcl_workloads::graph_apps::Bfs;
use gcl_workloads::linear::Mm2;

fn bfs_cost_signature(cfg: GpuConfig) -> u64 {
    let w = Bfs::tiny();
    let mut gpu = Gpu::new(cfg).unwrap();
    w.run(&mut gpu).unwrap();
    // Hash all of device memory's bfs cost range indirectly via the block
    // summary access count + a sample of the cost array.
    let csr = gcl_workloads::graph::Csr::rmat(w.scale, w.edge_factor, 0xBF5);
    let align = |v: u64| v.div_ceil(128) * 128;
    let mut addr = gcl::sim::HEAP_BASE;
    for words in [
        csr.row_ptr.len(),
        csr.col_idx.len(),
        csr.n(),
        csr.n(),
        csr.n(),
    ] {
        addr = align(addr) + (words * 4) as u64;
    }
    let cost = gpu.mem_ref().read_u32_slice(align(addr), csr.n());
    cost.iter().fold(0u64, |h, &v| {
        h.wrapping_mul(1_000_003).wrapping_add(u64::from(v))
    })
}

fn base() -> GpuConfig {
    GpuConfig::small()
}

#[test]
fn single_sm_single_partition() {
    let mut cfg = base();
    cfg.n_sms = 1;
    cfg.n_partitions = 1;
    let want = bfs_cost_signature(base());
    assert_eq!(bfs_cost_signature(cfg), want);
}

#[test]
fn many_sms_odd_partitions() {
    let mut cfg = base();
    cfg.n_sms = 7;
    cfg.n_partitions = 3;
    let want = bfs_cost_signature(base());
    assert_eq!(bfs_cost_signature(cfg), want);
}

#[test]
fn starved_queues_still_complete() {
    let mut cfg = base();
    cfg.ldst_queue_len = 1;
    cfg.l1.miss_queue_len = 1;
    cfg.l1.mshr_entries = 2;
    cfg.l1.mshr_max_merge = 1;
    cfg.icnt.input_queue_len = 1;
    cfg.partition.input_queue_len = 1;
    cfg.partition.dram.queue_len = 1;
    let want = bfs_cost_signature(base());
    assert_eq!(bfs_cost_signature(cfg), want);
}

#[test]
fn tiny_direct_mapped_l1() {
    let mut cfg = base();
    cfg.l1.sets = 2;
    cfg.l1.ways = 1;
    let want = bfs_cost_signature(base());
    assert_eq!(bfs_cost_signature(cfg), want);
}

#[test]
fn slow_interconnect_and_dram() {
    let mut cfg = base();
    cfg.icnt.hop_latency = 64;
    cfg.partition.dram.access_latency = 500;
    cfg.partition.dram.data_bus_gap = 16;
    let want = bfs_cost_signature(base());
    assert_eq!(bfs_cost_signature(cfg), want);
}

#[test]
fn narrow_warps() {
    // A 16-lane machine still computes the right matmul.
    let mut cfg = base();
    cfg.warp_size = 16;
    let w = Mm2::tiny();
    let n = w.n as usize;
    let mut gpu = Gpu::new(cfg).unwrap();
    w.run(&mut gpu).unwrap();
    let a = gcl_workloads::gen::dense_matrix(n, n, 0x2001);
    let bm = gcl_workloads::gen::dense_matrix(n, n, 0x2003);
    let want_d = Mm2::reference(&a, &bm, n);
    // D is the 4th allocation.
    let align = |v: u64| v.div_ceil(128) * 128;
    let sz = (n * n * 4) as u64;
    let mut addr = gcl::sim::HEAP_BASE;
    for _ in 0..3 {
        addr = align(addr) + sz;
    }
    let dd = align(addr);
    let got = gpu.mem_ref().read_f32_slice(dd, n * n);
    for (i, (g, w_)) in got.iter().zip(want_d.iter()).enumerate() {
        assert!(
            (g - w_).abs() <= w_.abs() * 1e-4 + 1e-3,
            "D[{i}] = {g}, want {w_}"
        );
    }
}

#[test]
fn single_scheduler_and_one_cta_slot() {
    let mut cfg = base();
    cfg.n_schedulers = 1;
    cfg.max_ctas_per_sm = 1;
    let want = bfs_cost_signature(base());
    assert_eq!(bfs_cost_signature(cfg), want);
}
