//! Integration tests of the simsan runtime sanitizer: each injectable
//! violation produces its structured report, the shared-memory race
//! detector separates racy from barrier-correct kernels, and the whole
//! tiny suite runs sanitizer-clean with reproducible digests.

use gcl_ptx::{Kernel, KernelBuilder, Special, Type};
use gcl_sim::{
    check_digests, pack_params, ConservationKind, Dim3, Gpu, GpuConfig, SanInject, SanitizerReport,
    SimError,
};
use gcl_workloads::tiny_workloads;

fn sanitize_gpu(inject: SanInject) -> Gpu {
    let mut cfg = GpuConfig::small();
    cfg.sanitize = true;
    cfg.san_inject = inject;
    Gpu::new(cfg).expect("small config with sanitize is valid")
}

/// One store per thread: `buf[tid] = tid`.
fn store_kernel() -> Kernel {
    let mut b = KernelBuilder::new("san_store");
    let p = b.param("buf", Type::U64);
    let base = b.ld_param(Type::U64, p);
    let tid = b.thread_linear_id();
    let addr = b.index64(base, tid, 4);
    b.st_global(Type::U32, addr, tid);
    b.exit();
    b.build().unwrap()
}

/// One load + store per thread: `buf[tid] <<= 1`.
fn load_kernel() -> Kernel {
    let mut b = KernelBuilder::new("san_load");
    let p = b.param("buf", Type::U64);
    let base = b.ld_param(Type::U64, p);
    let tid = b.thread_linear_id();
    let addr = b.index64(base, tid, 4);
    let v = b.ld_global(Type::U32, addr);
    let v2 = b.shl(Type::U32, v, 1i64);
    b.st_global(Type::U32, addr, v2);
    b.exit();
    b.build().unwrap()
}

fn launch(gpu: &mut Gpu, kernel: &Kernel) -> Result<gcl_sim::LaunchStats, SimError> {
    let buf = gpu.mem().alloc(4 * 64, 128).unwrap();
    let params = pack_params(kernel, &[buf]);
    gpu.launch(kernel, Dim3::x(1), Dim3::x(32), &params)
}

fn expect_conservation(err: SimError) -> gcl_sim::ConservationReport {
    match err {
        SimError::Sanitizer(report) => match *report {
            SanitizerReport::Conservation(r) => r,
            other => panic!("expected a conservation report, got {other}"),
        },
        other => panic!("expected SimError::Sanitizer, got {other}"),
    }
}

/// A store silently dropped between the L1 miss queue and the interconnect
/// leaves nothing waiting — the launch completes normally, and ONLY the
/// end-of-launch drain check can see the loss. The leak report must name
/// the store, its block, and its last-known stage.
#[test]
fn dropped_store_is_reported_as_a_leak_at_launch_end() {
    let mut gpu = sanitize_gpu(SanInject::DropIcntStore { nth: 1 });
    let kernel = store_kernel();
    let err = launch(&mut gpu, &kernel).expect_err("dropped store must leak");
    let r = expect_conservation(err);
    assert!(
        matches!(r.kind, ConservationKind::Leak { live: 1 }),
        "one tracked request leaked: {:?}",
        r.kind
    );
    assert!(r.is_write, "the leaked request is the dropped store");
    assert_eq!(r.stage, gcl_sim::SanStage::MissQueue);
    let rendered = r.to_string();
    assert!(rendered.contains("still live at launch end"), "{rendered}");
    assert!(rendered.contains("store of block"), "{rendered}");
    // The GPU stays usable, and the injection (part of its config) re-fires
    // deterministically: the rerun reports the same leak, not corruption.
    let again = expect_conservation(
        launch(&mut gpu, &kernel).expect_err("injection re-fires on the rerun"),
    );
    assert_eq!(again.kind, r.kind);
}

/// A read response delivered twice must be caught on its second delivery,
/// as a double response for an already-completed request.
#[test]
fn duplicated_response_is_reported_as_a_double_response() {
    let mut gpu = sanitize_gpu(SanInject::DuplicateResponse { nth: 1 });
    let kernel = load_kernel();
    let err = launch(&mut gpu, &kernel).expect_err("duplicated response must be caught");
    let r = expect_conservation(err);
    assert!(
        matches!(r.kind, ConservationKind::DoubleResponse { .. }),
        "{:?}",
        r.kind
    );
    assert!(!r.is_write);
    let rendered = r.to_string();
    assert!(rendered.contains("double response"), "{rendered}");
}

/// A fill whose MSHR entry vanished has no waiting request to release; the
/// sanitizer must report it instead of silently dropping the data (or
/// panicking, as the debug assertion otherwise would).
#[test]
fn dropped_mshr_entry_is_reported_as_response_without_request() {
    let mut gpu = sanitize_gpu(SanInject::DropMshrEntry { nth: 1 });
    let kernel = load_kernel();
    let err = launch(&mut gpu, &kernel).expect_err("orphaned fill must be caught");
    let r = expect_conservation(err);
    assert_eq!(r.kind, ConservationKind::ResponseWithoutRequest);
    let rendered = r.to_string();
    assert!(rendered.contains("no waiting request"), "{rendered}");
}

/// The determinism audit: identical runs produce identical digests; the
/// DigestNoise injection makes them diverge and `check_digests` must
/// report exactly that.
#[test]
fn digest_noise_fails_the_determinism_audit() {
    let kernel = load_kernel();
    let run = |inject| {
        let mut gpu = sanitize_gpu(inject);
        launch(&mut gpu, &kernel).expect("launch completes").digest
    };

    let clean_a = run(SanInject::None);
    let clean_b = run(SanInject::None);
    assert!(clean_a.is_some(), "sanitized runs expose a digest");
    assert_eq!(clean_a, clean_b, "identical runs must agree");
    check_digests("san_load", clean_a, clean_b).expect("clean digests compare equal");

    let noisy_a = run(SanInject::DigestNoise);
    let noisy_b = run(SanInject::DigestNoise);
    let err = check_digests("san_load", noisy_a, noisy_b).expect_err("salted digests must diverge");
    match *err {
        SanitizerReport::Determinism(r) => {
            assert_eq!(r.workload, "san_load");
            assert_ne!(r.first, r.second);
            let rendered = r.to_string();
            assert!(rendered.contains("determinism violated"), "{rendered}");
        }
        other => panic!("expected a determinism report, got {other}"),
    }
}

/// Build the two-warp shared-memory exchange kernel: every thread stores
/// to its own shared slot, then reads its cross-warp partner's slot
/// (`tid ^ 32`). Without a barrier between the phases that is a textbook
/// cross-warp race; with one it is the canonical correct idiom.
fn exchange_kernel(with_barrier: bool) -> Kernel {
    let name = if with_barrier {
        "exchange_ok"
    } else {
        "exchange_racy"
    };
    let mut b = KernelBuilder::new(name);
    let p = b.param("out", Type::U64);
    let out = b.ld_param(Type::U64, p);
    b.shared(64 * 4);
    let tid = b.sreg(Special::TidX);
    let mine = b.mul(Type::U32, tid, 4i64);
    b.st_shared(Type::U32, mine, tid);
    if with_barrier {
        b.bar();
    }
    let partner = b.xor(Type::U32, tid, 32i64);
    let theirs = b.mul(Type::U32, partner, 4i64);
    let v = b.ld_shared(Type::U32, theirs);
    let oaddr = b.index64(out, tid, 4);
    b.st_global(Type::U32, oaddr, v);
    b.exit();
    b.build().unwrap()
}

/// Reading another warp's shared slot without an intervening barrier is a
/// race; the report must name both accesses' warps and pcs, the byte
/// range, and that it happened before the CTA's first barrier.
#[test]
fn missing_barrier_race_is_detected_with_both_pcs() {
    let mut gpu = sanitize_gpu(SanInject::None);
    let kernel = exchange_kernel(false);
    let buf = gpu.mem().alloc(4 * 64, 128).unwrap();
    let params = pack_params(&kernel, &[buf]);
    let err = gpu
        .launch(&kernel, Dim3::x(1), Dim3::x(64), &params)
        .expect_err("cross-warp exchange without a barrier must race");
    match err {
        SimError::Sanitizer(report) => match *report {
            SanitizerReport::Race(r) => {
                assert_ne!(
                    r.prev.warp_in_cta, r.curr.warp_in_cta,
                    "the race is between different warps"
                );
                assert!(
                    r.prev.is_write || r.curr.is_write,
                    "at least one side writes"
                );
                assert_ne!(r.prev.pc, r.curr.pc, "store and load are distinct pcs");
                assert!(r.byte_hi > r.byte_lo);
                assert_eq!(r.barrier, None, "no barrier released before the race");
                let rendered = r.to_string();
                assert!(rendered.contains("shared-memory race"), "{rendered}");
                assert!(
                    rendered.contains("before the CTA's first barrier"),
                    "{rendered}"
                );
            }
            other => panic!("expected a race report, got {other}"),
        },
        other => panic!("expected SimError::Sanitizer, got {other}"),
    }
}

/// The same exchange with a `bar.sync` between store and load phases is
/// the canonical correct pattern and must run clean, producing the
/// exchanged values.
#[test]
fn barrier_separated_exchange_runs_clean() {
    let mut gpu = sanitize_gpu(SanInject::None);
    let kernel = exchange_kernel(true);
    let buf = gpu.mem().alloc(4 * 64, 128).unwrap();
    let params = pack_params(&kernel, &[buf]);
    gpu.launch(&kernel, Dim3::x(1), Dim3::x(64), &params)
        .expect("barrier-correct exchange is race-free");
    let got = gpu.mem().read_u32_slice(buf, 64);
    let want: Vec<u32> = (0..64u32).map(|t| t ^ 32).collect();
    assert_eq!(got, want, "each thread read its partner's value");
}

/// The sanitizer is a pure observer: every tiny workload completes clean
/// under it, and a second run from an identical initial state produces an
/// identical digest.
#[test]
fn all_tiny_workloads_run_sanitizer_clean_with_stable_digests() {
    for w in tiny_workloads() {
        let digest_of = || {
            let mut cfg = GpuConfig::small();
            cfg.sanitize = true;
            let mut gpu = Gpu::new(cfg).unwrap();
            let run = w
                .run(&mut gpu)
                .unwrap_or_else(|e| panic!("{} must be sanitizer-clean: {e}", w.name()));
            run.stats.digest
        };
        let first = digest_of();
        let second = digest_of();
        assert!(
            first.is_some(),
            "{}: sanitized runs expose a digest",
            w.name()
        );
        check_digests(w.name(), first, second).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// The sanitizer costs under 15% wall-clock on the tiny suite.
/// Timing-sensitive, so ignored by default; run with
/// `cargo test --release -- --ignored sanitizer_overhead`.
#[test]
#[ignore = "wall-clock measurement; run explicitly in release mode"]
fn sanitizer_overhead_is_under_fifteen_percent() {
    fn sweep(sanitize: bool) -> std::time::Duration {
        let start = std::time::Instant::now();
        for w in tiny_workloads() {
            let mut cfg = GpuConfig::small();
            cfg.sanitize = sanitize;
            let mut gpu = Gpu::new(cfg).unwrap();
            w.run(&mut gpu).unwrap();
        }
        start.elapsed()
    }
    sweep(false); // warm up
    let plain = (0..5).map(|_| sweep(false)).min().unwrap();
    let checked = (0..5).map(|_| sweep(true)).min().unwrap();
    let ratio = checked.as_secs_f64() / plain.as_secs_f64();
    assert!(
        ratio < 1.15,
        "sanitizer slowdown {ratio:.3}x exceeds 15% ({checked:?} vs {plain:?})"
    );
}
