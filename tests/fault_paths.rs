//! Integration tests of the fault-aware simulation layer: memcheck on
//! corrupted inputs, the forward-progress watchdog on a barrier deadlock,
//! and the no-false-positives property over every tiny workload.

use gcl_core::LoadClass;
use gcl_sim::{pack_params, AccessKind, Dim3, Gpu, GpuConfig, SimError};
use gcl_workloads::graph_apps::Bfs;
use gcl_workloads::linear::Spmv;
use gcl_workloads::{tiny_workloads, upload_u32, Workload};

fn memcheck_gpu() -> Gpu {
    let mut cfg = GpuConfig::small();
    cfg.memcheck = true;
    Gpu::new(cfg).expect("small config with memcheck is valid")
}

/// Corrupt bfs row offsets: vertex 0's edge range runs far past the edge
/// array, so the non-deterministic `edges[i]` gather walks off the end of
/// device memory. Memcheck must name that load, its class, and the
/// def-chain back to the row-offset loads.
#[test]
fn corrupted_bfs_row_offsets_raise_a_memfault_on_an_n_load() {
    let mut gpu = memcheck_gpu();
    let n = 32u32;
    let dmask = upload_u32(&mut gpu, &vec![1u32; n as usize]).unwrap();
    let dupd = upload_u32(&mut gpu, &vec![0u32; n as usize]).unwrap();
    let dvis = upload_u32(&mut gpu, &vec![0u32; n as usize]).unwrap();
    let dcost = upload_u32(&mut gpu, &vec![0u32; n as usize]).unwrap();
    // row_ptr[1] claims vertex 0 has 2^26 edges; the edge array has four.
    let mut row_ptr = vec![0u32; n as usize + 1];
    row_ptr[1] = 1 << 26;
    let drp = upload_u32(&mut gpu, &row_ptr).unwrap();
    let dedge = upload_u32(&mut gpu, &[0u32; 4]).unwrap();

    let kernel = Bfs::expand_kernel();
    let params = pack_params(
        &kernel,
        &[dmask, dupd, dvis, drp, dedge, dcost, u64::from(n)],
    );
    let err = gpu
        .launch(&kernel, Dim3::x(1), Dim3::x(n), &params)
        .expect_err("corrupted row offsets must fault");
    match err {
        SimError::MemFault(fault) => {
            assert_eq!(fault.kernel, "bfs_expand");
            assert_eq!(fault.violation.kind, AccessKind::Load);
            assert_eq!(
                fault.class,
                Some(LoadClass::NonDeterministic),
                "the faulting edge gather is an N load"
            );
            assert!(
                !fault.witness.is_empty(),
                "N loads carry a def-chain witness"
            );
            // The rendered report names pc, class and witness for the CLI.
            let report = fault.to_string();
            assert!(report.contains("out-of-bounds"), "{report}");
            assert!(report.contains("non-deterministic"), "{report}");
            assert!(report.contains("def-chain"), "{report}");
        }
        other => panic!("expected MemFault, got {other}"),
    }
    // The GPU stays usable after the fault: a clean launch still works.
    let csr_run = Bfs::tiny();
    csr_run
        .run(&mut gpu)
        .expect("gpu is reusable after a fault");
}

/// Corrupt spmv column indices: the gathered `x[col]` address is computed
/// from loaded data, so a poisoned column sends the N-classified gather out
/// of bounds.
#[test]
fn corrupted_spmv_columns_raise_a_memfault_on_the_gather() {
    let mut gpu = memcheck_gpu();
    let n = 32u32;
    let mut row_ptr = vec![0u32; n as usize + 1];
    for (i, rp) in row_ptr.iter_mut().enumerate() {
        *rp = i as u32; // one nonzero per row
    }
    let mut col_idx = vec![0u32; n as usize];
    col_idx[7] = 1 << 26; // poisoned column index
    let drp = upload_u32(&mut gpu, &row_ptr).unwrap();
    let dci = upload_u32(&mut gpu, &col_idx).unwrap();
    let dval = upload_u32(&mut gpu, &vec![0u32; n as usize]).unwrap();
    let dx = upload_u32(&mut gpu, &vec![0u32; n as usize]).unwrap();
    let dy = upload_u32(&mut gpu, &vec![0u32; n as usize]).unwrap();

    let kernel = Spmv::kernel();
    let params = pack_params(&kernel, &[drp, dci, dval, dx, dy, u64::from(n)]);
    let err = gpu
        .launch(&kernel, Dim3::x(1), Dim3::x(n), &params)
        .expect_err("poisoned column index must fault");
    match err {
        SimError::MemFault(fault) => {
            assert_eq!(fault.kernel, "spmv_csr");
            assert_eq!(fault.class, Some(LoadClass::NonDeterministic));
            assert!(!fault.witness.is_empty());
        }
        other => panic!("expected MemFault, got {other}"),
    }
}

/// Two warps of one CTA parked on *different* named barriers never release
/// each other. The watchdog must report a hang shortly after the last
/// retirement — not spin to the full `max_cycles` budget — and the report
/// must show the stuck warps at their barriers.
#[test]
fn named_barrier_deadlock_is_reported_as_a_hang() {
    use gcl_ptx::{CmpOp, KernelBuilder, Special, Type};

    let mut b = KernelBuilder::new("bar_mismatch");
    let tid = b.sreg(Special::TidX);
    let hi = b.setp(CmpOp::Ge, Type::U32, tid, 32i64);
    let other = b.new_label();
    let done = b.new_label();
    b.bra_if(hi, other);
    b.bar_id(0); // warp 0 waits at barrier 0 ...
    b.bra(done);
    b.place(other);
    b.bar_id(1); // ... warp 1 at barrier 1: nobody ever releases either.
    b.place(done);
    b.exit();
    let kernel = b.build().unwrap();

    let mut cfg = GpuConfig::small();
    cfg.hang_cycles = 5_000;
    cfg.max_cycles = 10_000_000;
    let mut gpu = Gpu::new(cfg).unwrap();
    let params = pack_params(&kernel, &[]);
    let err = gpu
        .launch(&kernel, Dim3::x(1), Dim3::x(64), &params)
        .expect_err("mismatched barriers must deadlock");
    match err {
        SimError::Hang(report) => {
            assert_eq!(report.hang_cycles, 5_000);
            assert!(
                report.cycle < 100_000,
                "hang must be detected within hang_cycles of the last \
                 retirement, not at the max_cycles budget (cycle {})",
                report.cycle
            );
            assert!(!report.sms.is_empty(), "report snapshots the SMs");
            let stuck: Vec<_> = report
                .sms
                .iter()
                .flat_map(|sm| &sm.warps)
                .filter(|w| w.at_barrier.is_some())
                .collect();
            assert_eq!(stuck.len(), 2, "both warps are parked at barriers");
            let rendered = report.to_string();
            assert!(rendered.contains("kernel hang"), "{rendered}");
            assert!(rendered.contains("at barrier"), "{rendered}");
        }
        other => panic!("expected Hang, got {other}"),
    }
}

/// Memcheck is a pure observer: every tiny workload, which only ever
/// touches memory it allocated, must complete with zero faults.
#[test]
fn all_tiny_workloads_run_memcheck_clean() {
    for w in tiny_workloads() {
        let mut cfg = GpuConfig::small();
        cfg.memcheck = true;
        let mut gpu = Gpu::new(cfg).unwrap();
        w.run(&mut gpu)
            .unwrap_or_else(|e| panic!("{} must be memcheck-clean: {e}", w.name()));
    }
}

/// Memcheck range checks cost under 10% wall-clock on the tiny suite.
/// Timing-sensitive, so ignored by default; run with
/// `cargo test --release -- --ignored memcheck_overhead`.
#[test]
#[ignore = "wall-clock measurement; run explicitly in release mode"]
fn memcheck_overhead_is_under_ten_percent() {
    fn sweep(memcheck: bool) -> std::time::Duration {
        let start = std::time::Instant::now();
        for w in tiny_workloads() {
            let mut cfg = GpuConfig::small();
            cfg.memcheck = memcheck;
            let mut gpu = Gpu::new(cfg).unwrap();
            w.run(&mut gpu).unwrap();
        }
        start.elapsed()
    }
    sweep(false); // warm up
    let plain = (0..5).map(|_| sweep(false)).min().unwrap();
    let checked = (0..5).map(|_| sweep(true)).min().unwrap();
    let ratio = checked.as_secs_f64() / plain.as_secs_f64();
    assert!(
        ratio < 1.10,
        "memcheck slowdown {ratio:.3}x exceeds 10% ({checked:?} vs {plain:?})"
    );
}
