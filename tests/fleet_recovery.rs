//! Deterministic coordinator crash-recovery through the real CLI: a
//! `gcl coordinate --journal --recover` process is `kill -9`ed after
//! acknowledging a sweep, a replacement recovers the journal on the same
//! address, the `--rejoin` workers re-attach with their lease and replica
//! inventories, and the fleet proves zero lost acknowledged jobs, no
//! duplicate simulations for already-done keys, and replica convergence
//! back to R=2 — with every statistic byte-identical to a serial run.

use gcl::exec::fleet::decode_stats_payload;
use gcl::prelude::*;
use gcl::stats::Json;
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SWEEP: &[&str] = &["bfs", "spmv", "lu", "dwt"];

fn free_addr() -> String {
    let holder = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = holder.local_addr().expect("addr").to_string();
    drop(holder);
    addr
}

fn spawn_coordinator(addr: &str, journal: &std::path::Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_gcl"))
        .args([
            "coordinate",
            "--addr",
            addr,
            "--journal",
            journal.to_str().expect("utf8 path"),
            "--recover",
            "--replicas",
            "2",
            "--rebalance-ms",
            "200",
            "--heartbeat-ms",
            "200",
            "--heartbeat-timeout-ms",
            "2000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator")
}

fn spawn_worker(addr: &str, name: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_gcl"))
        .args([
            "serve",
            "--join",
            addr,
            "--name",
            name,
            "--jobs",
            "2",
            "--no-cache",
            "--rejoin",
            "--connect-retries",
            "200",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker")
}

/// Dial until the coordinator answers (fresh boot or post-crash rebind).
fn connect(addr: &str) -> ServeClient {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match ServeClient::connect(ClientOptions {
            addr: addr.to_string(),
            max_frame: 1024 * 1024,
            ..ClientOptions::default()
        }) {
            Ok(c) => return c,
            Err(e) => {
                assert!(Instant::now() < deadline, "coordinator never listened: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn await_workers(client: &mut ServeClient, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = client.status().expect("status");
        let alive = status
            .get("workers")
            .and_then(Json::as_arr)
            .map(|ws| {
                ws.iter()
                    .filter(|w| w.get("alive").and_then(Json::as_bool) == Some(true))
                    .count() as u64
            })
            .unwrap_or(0);
        if alive >= n {
            return;
        }
        assert!(Instant::now() < deadline, "never saw {n} workers: {status}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn cache_counter(client: &mut ServeClient, field: &str) -> u64 {
    let status = client.status().expect("status");
    status
        .get("cache")
        .and_then(|c| c.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no cache counter `{field}` in {status}"))
}

fn wait_stats(client: &mut ServeClient, id: u64) -> LaunchStats {
    let r = client
        .wait(id, Duration::from_secs(300))
        .unwrap_or_else(|e| panic!("job {id}: {e}"));
    assert_eq!(
        r.get("state").and_then(Json::as_str),
        Some("done"),
        "job {id} must succeed: {r}"
    );
    let hex = r.get("stats").and_then(Json::as_str).expect("stats");
    let sum = r.get("sum").and_then(Json::as_str).expect("checksum");
    decode_stats_payload(hex, sum).expect("payload verifies")
}

#[test]
fn coordinator_kill_nine_recovers_acked_sweep() {
    let addr = free_addr();
    let journal = {
        let mut p = std::env::temp_dir();
        p.push(format!("gcl-fleet-recovery-{}.journal", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    };

    let mut coordinator = spawn_coordinator(&addr, &journal);
    let mut workers = vec![spawn_worker(&addr, "r0"), spawn_worker(&addr, "r1")];

    let mut c = connect(&addr);
    await_workers(&mut c, 2);
    let ids: Vec<u64> = SWEEP
        .iter()
        .map(|w| c.submit(w, true, false).expect("submit"))
        .collect();
    let acked: Vec<LaunchStats> = ids.iter().map(|&id| wait_stats(&mut c, id)).collect();
    assert_eq!(cache_counter(&mut c, "sims"), SWEEP.len() as u64);

    // Serial ground truth: the fleet's answers must match byte-for-byte.
    for (w, stats) in SWEEP.iter().zip(&acked) {
        let serial = run_job(&JobSpec::new(*w, true, GpuConfig::small()), None)
            .outcome
            .expect("serial run")
            .stats;
        assert_eq!(serial, *stats, "{w}: fleet result differs from serial");
    }

    // SIGKILL the coordinator: no drain, no goodbye, journal is all that
    // survives. The --rejoin workers outlive it and redial.
    coordinator.kill().expect("kill -9 coordinator");
    coordinator.wait().expect("reap coordinator");

    let mut coordinator2 = spawn_coordinator(&addr, &journal);
    let mut c2 = connect(&addr);
    await_workers(&mut c2, 2);

    // Zero lost acknowledged jobs: every pre-crash id still answers with
    // the exact acknowledged stats.
    for (&id, stats) in ids.iter().zip(&acked) {
        assert_eq!(&wait_stats(&mut c2, id), stats, "job {id} lost in crash");
    }

    // No duplicate simulations: resubmitting the sweep joins the
    // recovered terminal jobs, and the recovered sims counter stands.
    for (w, &id) in SWEEP.iter().zip(&ids) {
        assert_eq!(c2.submit(w, true, false).expect("resubmit"), id);
    }
    assert_eq!(
        cache_counter(&mut c2, "sims"),
        SWEEP.len() as u64,
        "already-done keys must not re-simulate"
    );

    // Replica convergence: worker inventories plus the rebalancer restore
    // every key to its full R=2 set without any read forcing a repair.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = c2.status().expect("status");
        let replicas = status.get("replicas").expect("replicas object");
        let keys = replicas.get("keys").and_then(Json::as_u64).unwrap_or(0);
        let full = replicas.get("full").and_then(Json::as_u64).unwrap_or(0);
        if keys >= SWEEP.len() as u64 && full == keys {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replicas never converged: {status}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    c2.shutdown().expect("shutdown");
    let code = coordinator2.wait().expect("coordinator exit");
    assert!(code.success(), "recovered coordinator exits clean: {code}");
    for w in &mut workers {
        let code = w.wait().expect("worker exit");
        assert!(code.success(), "worker exits clean: {code}");
    }
    std::fs::remove_file(&journal).ok();
}
