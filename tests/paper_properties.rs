//! Cross-crate integration tests asserting the paper's key observations
//! hold end-to-end on (tiny-scale) runs of the actual workloads.

use gcl::prelude::*;
use gcl_core::LoadClass;
use gcl_mem::{AccessOutcome, ClassTag};
use gcl_workloads::{graph_apps, linear, tiny_workloads};

fn run_tiny(w: &dyn Workload) -> (RunResult, gcl::sim::Gpu) {
    let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
    let run = w
        .run(&mut gpu)
        .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
    (run, gpu)
}

/// Observation (Section II): "Even in an application that has highly
/// irregular memory access patterns not all load instructions are
/// uncoalesced" — graph kernels still have a substantial share of static
/// deterministic loads.
#[test]
fn graph_kernels_keep_static_deterministic_loads() {
    let k = graph_apps::Bfs::expand_kernel();
    let (d, n) = gcl_core::classify(&k).global_load_counts();
    assert!(
        d > n,
        "bfs expand: {d} deterministic vs {n} non-deterministic"
    );
    let k = graph_apps::Sssp::relax_kernel();
    let (d, n) = gcl_core::classify(&k).global_load_counts();
    assert!(d >= n - 1, "sssp relax: {d} vs {n}");
}

/// Observation (Section VI / Figure 2): non-deterministic loads generate
/// more memory requests per warp than deterministic loads, in every
/// workload that has both.
#[test]
fn nondet_loads_generate_more_requests_per_warp() {
    for w in tiny_workloads() {
        let (run, _) = run_tiny(w.as_ref());
        let d = run.stats.class(LoadClass::Deterministic);
        let n = run.stats.class(LoadClass::NonDeterministic);
        if d.warp_loads == 0 || n.warp_loads == 0 {
            continue;
        }
        assert!(
            n.requests_per_warp() >= d.requests_per_warp(),
            "{}: N {} < D {}",
            w.name(),
            n.requests_per_warp(),
            d.requests_per_warp()
        );
    }
}

/// Observation (Figure 1): graph applications have far higher dynamic
/// non-deterministic fractions than (non-spmv) linear algebra.
#[test]
fn category_nondet_ordering_matches_figure_1() {
    let mm2 = run_tiny(&linear::Mm2::tiny()).0;
    let bfs = run_tiny(&graph_apps::Bfs::tiny()).0;
    assert_eq!(mm2.stats.nondet_load_fraction(), 0.0);
    assert!(bfs.stats.nondet_load_fraction() > 0.5);
}

/// Observation (Figure 3 / Section VI): reservation failures are charged
/// overwhelmingly to non-deterministic loads where both classes run.
#[test]
fn reservation_fails_come_from_nondet_loads() {
    let (run, _) = run_tiny(&linear::Spmv::tiny());
    let fails = |class: ClassTag| -> u64 {
        [
            AccessOutcome::ReservationFailTags,
            AccessOutcome::ReservationFailMshr,
            AccessOutcome::ReservationFailIcnt,
        ]
        .iter()
        .map(|o| run.stats.l1.outcome_class(*o, class))
        .sum()
    };
    let n_fails = fails(ClassTag::NonDeterministic);
    let d_fails = fails(ClassTag::Deterministic);
    assert!(
        n_fails >= d_fails,
        "spmv: N fails {n_fails} should dominate D fails {d_fails}"
    );
}

/// Observation (Figure 5): non-deterministic loads have longer turnaround
/// than deterministic ones in irregular workloads — once the working set
/// actually stresses the memory system (at tiny scale everything fits in
/// the L1 and the effect vanishes, as the paper's large-dataset choice
/// anticipates).
#[test]
fn nondet_turnaround_exceeds_det_in_spmv() {
    let w = linear::Spmv {
        n: 768,
        nnz_per_row: 16,
        block: 64,
    };
    let (run, _) = run_tiny(&w);
    let d = run.stats.class(LoadClass::Deterministic).turnaround.mean();
    let n = run
        .stats
        .class(LoadClass::NonDeterministic)
        .turnaround
        .mean();
    assert!(n > d, "spmv turnaround: N {n} should exceed D {d}");
}

/// Observation (Figures 10–11): data blocks are reused and shared across
/// CTAs even in graph applications — the "hidden locality".
#[test]
fn graph_apps_share_blocks_across_ctas() {
    let (_, gpu) = run_tiny(&graph_apps::Ccl::tiny());
    let s = gpu.block_summary();
    assert!(
        s.mean_accesses_per_block > 2.0,
        "blocks barely reused: {s:?}"
    );
    assert!(
        s.shared_block_ratio > 0.2,
        "little inter-CTA sharing: {s:?}"
    );
    assert!(s.cold_miss_ratio < 0.5, "cold misses dominate: {s:?}");
}

/// Observation (Figure 12): shared accesses concentrate at short CTA
/// distances for linear-algebra tiling.
#[test]
fn linear_algebra_shares_at_short_cta_distances() {
    let (_, gpu) = run_tiny(&linear::Mm2::tiny());
    let hist = gpu.distance_histogram();
    assert!(!hist.is_empty(), "no shared accesses recorded");
    let near: f64 = hist.iter().filter(|(d, _)| *d <= 2).map(|(_, f)| f).sum();
    assert!(near > 0.3, "nearest-CTA sharing only {near}: {hist:?}");
}

/// Observation (Figure 9): image-processing workloads use shared memory far
/// more intensively per global load than the other categories.
#[test]
fn image_apps_lead_shared_memory_usage() {
    let htw = run_tiny(&gcl_workloads::image::Htw::tiny()).0;
    let bfs = run_tiny(&graph_apps::Bfs::tiny()).0;
    let htw_ratio = htw.stats.profiler().shared_per_global();
    let bfs_ratio = bfs.stats.profiler().shared_per_global();
    assert!(htw_ratio > 2.0, "htw shared/global = {htw_ratio}");
    assert_eq!(bfs_ratio, 0.0, "bfs uses no shared memory");
}

/// Table III: the profiler counters are internally consistent.
#[test]
fn profiler_counters_are_consistent() {
    for w in tiny_workloads() {
        let (run, _) = run_tiny(w.as_ref());
        let p = run.stats.profiler();
        // Every accepted L1 access came from some request of a global load.
        let accesses = p.l1_global_load_hit + p.l1_global_load_miss;
        let requests = run.stats.class(LoadClass::Deterministic).requests
            + run.stats.class(LoadClass::NonDeterministic).requests;
        assert_eq!(accesses, requests, "{}: L1 accesses vs requests", w.name());
        // L2 sees no more read queries than L1 misses issued (merges only
        // reduce traffic).
        assert!(
            p.l2_read_sector_queries <= p.l1_global_load_miss,
            "{}: L2 queries {} > L1 misses {}",
            w.name(),
            p.l2_read_sector_queries,
            p.l1_global_load_miss
        );
    }
}
