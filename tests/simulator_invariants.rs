//! Cross-crate invariants: determinism, cache warmth, and functional
//! correctness under every microarchitectural configuration the ablations
//! exercise.

use gcl::prelude::*;
use gcl::sim::CtaSchedPolicy;
use gcl_mem::L2Topology;
use gcl_workloads::graph_apps::{Bfs, Sssp};
use gcl_workloads::linear::Mm2;

/// The simulator is fully deterministic: identical runs produce identical
/// statistics, cycle for cycle.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        Bfs::tiny().run(&mut gpu).unwrap().stats
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// L1/L2 contents persist across launches: relaunching the same kernel on
/// the same data gets faster and hits more.
#[test]
fn caches_stay_warm_across_launches() {
    let mut b = KernelBuilder::new("reader");
    let p = b.param("buf", Type::U64);
    let base = b.ld_param(Type::U64, p);
    let tid = b.thread_linear_id();
    let a = b.index64(base, tid, 4);
    let v = b.ld_global(Type::U32, a);
    let dummy = b.add(Type::U32, v, 1i64);
    let _ = dummy;
    b.exit();
    let kernel = b.build().unwrap();

    let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
    let buf = gpu.mem().alloc_array(Type::U32, 256).unwrap();
    let params = pack_params(&kernel, &[buf]);
    let cold = gpu
        .launch(&kernel, Dim3::x(2), Dim3::x(128), &params)
        .unwrap();
    let warm = gpu
        .launch(&kernel, Dim3::x(2), Dim3::x(128), &params)
        .unwrap();
    let hit = |s: &LaunchStats| {
        s.l1.outcome_class(
            gcl_mem::AccessOutcome::Hit,
            gcl_mem::ClassTag::Deterministic,
        )
    };
    assert!(
        hit(&warm) > hit(&cold),
        "warm {} vs cold {}",
        hit(&warm),
        hit(&cold)
    );
    assert!(
        warm.cycles < cold.cycles,
        "warm {} vs cold {}",
        warm.cycles,
        cold.cycles
    );
}

/// Functional results are identical under every scheduler / topology /
/// warp-split configuration — the knobs change timing only.
#[test]
fn config_knobs_do_not_change_results() {
    let baseline_dist = sssp_distances(GpuConfig::small());

    let mut clustered = GpuConfig::small();
    clustered.cta_sched = CtaSchedPolicy::Clustered { group: 2 };
    assert_eq!(
        sssp_distances(clustered),
        baseline_dist,
        "clustered CTA sched"
    );

    let mut semi = GpuConfig::small();
    semi.l2_topology = L2Topology::Clustered { clusters: 2 };
    assert_eq!(sssp_distances(semi), baseline_dist, "semi-global L2");

    let mut split = GpuConfig::small();
    split.warp_split_nd = Some(4);
    assert_eq!(sssp_distances(split), baseline_dist, "warp splitting");

    let mut gto = GpuConfig::small();
    gto.warp_sched = gcl::sim::WarpSchedPolicy::Gto;
    assert_eq!(sssp_distances(gto), baseline_dist, "GTO warp sched");
}

fn sssp_distances(cfg: GpuConfig) -> Vec<u32> {
    let w = Sssp::tiny();
    let mut gpu = Gpu::new(cfg).unwrap();
    w.run(&mut gpu).unwrap();
    // dist is the 4th allocation; recompute from graph sizes.
    let csr = gcl_workloads::graph::Csr::rmat(w.scale, w.edge_factor, 0x555A);
    let align = |v: u64| v.div_ceil(128) * 128;
    let mut addr = gcl::sim::HEAP_BASE;
    for words in [csr.row_ptr.len(), csr.col_idx.len(), csr.weight.len()] {
        addr = align(addr) + (words * 4) as u64;
    }
    gpu.mem_ref().read_u32_slice(align(addr), csr.n())
}

/// Warp splitting reduces the L1 burst pressure of non-deterministic loads
/// without changing how many requests exist in total.
#[test]
fn warp_split_preserves_request_counts() {
    let run = |split: Option<usize>| {
        let mut cfg = GpuConfig::small();
        cfg.warp_split_nd = split;
        let mut gpu = Gpu::new(cfg).unwrap();
        Sssp::tiny().run(&mut gpu).unwrap().stats
    };
    let base = run(None);
    let split = run(Some(2));
    let nd = gcl_core::LoadClass::NonDeterministic;
    assert_eq!(base.class(nd).requests, split.class(nd).requests);
    assert_eq!(base.class(nd).warp_loads, split.class(nd).warp_loads);
}

/// The GTO scheduler completes the same work in a comparable cycle count
/// (sanity: both schedulers are functional, neither deadlocks).
#[test]
fn gto_scheduler_completes_workloads() {
    let mut cfg = GpuConfig::small();
    cfg.warp_sched = gcl::sim::WarpSchedPolicy::Gto;
    let mut gpu = Gpu::new(cfg).unwrap();
    let run = Mm2::tiny().run(&mut gpu).unwrap();
    assert!(run.stats.cycles > 0);
    assert_eq!(run.stats.nondet_load_fraction(), 0.0);
}

/// Timeout protection: an infinite kernel reports `SimError::Timeout`
/// instead of hanging.
#[test]
fn runaway_kernel_times_out() {
    let mut b = KernelBuilder::new("spin");
    let head = b.new_label();
    b.place(head);
    let t = b.setp(CmpOp::Eq, Type::U32, 0i64, 0i64);
    b.bra_if(t, head);
    b.exit();
    let kernel = b.build().unwrap();
    let mut cfg = GpuConfig::small();
    cfg.max_cycles = 5_000;
    let mut gpu = Gpu::new(cfg).unwrap();
    let err = gpu
        .launch(&kernel, Dim3::x(1), Dim3::x(32), &[])
        .unwrap_err();
    assert!(matches!(err, gcl::sim::SimError::Timeout { .. }), "{err}");
}

/// Oversized CTAs are rejected up front.
#[test]
fn oversized_cta_is_rejected() {
    let mut b = KernelBuilder::new("big");
    b.exit();
    let kernel = b.build().unwrap();
    let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
    let err = gpu
        .launch(&kernel, Dim3::x(1), Dim3::x(512), &[])
        .unwrap_err();
    assert!(
        matches!(err, gcl::sim::SimError::CtaTooLarge { .. }),
        "{err}"
    );
}
