//! Exit-code contract of the long-running fleet commands: supervisors
//! restarting `gcl coordinate` / `gcl serve` need to tell "the address is
//! taken or unreachable" (exit 2 — retry elsewhere or wait) apart from
//! "the protocol broke" (exit 3 — investigate) and plain usage errors
//! (exit 1 — don't bother retrying).

use std::net::TcpListener;
use std::process::{Command, Output};

fn gcl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gcl"))
        .args(args)
        .output()
        .expect("run gcl binary")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn usage_errors_exit_one() {
    let out = gcl(&["coordinate", "--no-such-flag"]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));

    let out = gcl(&["coordinate", "--queue-cap", "0"]);
    assert_eq!(
        code(&out),
        1,
        "config errors are usage errors: {}",
        stderr(&out)
    );

    let out = gcl(&["serve", "--connect-retries", "3"]);
    assert_eq!(
        code(&out),
        1,
        "--connect-retries without --join is a usage error: {}",
        stderr(&out)
    );
}

#[test]
fn coordinator_bind_failure_exits_two() {
    // Occupy a port, then ask the coordinator to bind it.
    let holder = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = holder.local_addr().expect("addr").to_string();
    let out = gcl(&["coordinate", "--addr", &addr]);
    assert_eq!(code(&out), 2, "bind conflict is exit 2: {}", stderr(&out));
    assert!(
        stderr(&out).contains("bind"),
        "says what failed: {}",
        stderr(&out)
    );
}

#[test]
fn worker_unreachable_coordinator_exits_two() {
    // Nothing listens on the reserved-then-released port: connect refused.
    let addr = {
        let holder = TcpListener::bind("127.0.0.1:0").expect("reserve port");
        holder.local_addr().expect("addr").to_string()
    };
    let out = gcl(&["serve", "--join", &addr, "--connect-retries", "0"]);
    assert_eq!(
        code(&out),
        2,
        "unreachable coordinator is exit 2: {}",
        stderr(&out)
    );
}

#[test]
fn worker_protocol_failure_exits_three() {
    // A listener that accepts the connection and slams it shut: the
    // worker reaches the "coordinator", then the join handshake dies —
    // a protocol failure, not a connectivity one.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("addr").to_string();
    // The stub thread is deliberately not joined: it blocks in accept
    // until the test process exits.
    std::thread::spawn(move || {
        while let Ok((conn, _)) = listener.accept() {
            drop(conn)
        }
    });
    let out = gcl(&["serve", "--join", &addr, "--connect-retries", "0"]);
    assert_eq!(
        code(&out),
        3,
        "broken handshake is exit 3: {}",
        stderr(&out)
    );
}
