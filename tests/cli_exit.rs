//! Exit-code contract of the long-running fleet commands: supervisors
//! restarting `gcl coordinate` / `gcl serve` need to tell "the address is
//! taken or unreachable" (exit 2 — retry elsewhere or wait) apart from
//! "the protocol broke" (exit 3 — investigate) and plain usage errors
//! (exit 1 — don't bother retrying). `gcl replay` reuses the same two
//! slots: an unreadable trace container is exit 2 (fetch or recapture it),
//! a version- or fingerprint-mismatched one is exit 3 (wrong artifact for
//! this build — no amount of retrying helps).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn gcl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gcl"))
        .args(args)
        .output()
        .expect("run gcl binary")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn usage_errors_exit_one() {
    let out = gcl(&["coordinate", "--no-such-flag"]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));

    let out = gcl(&["coordinate", "--queue-cap", "0"]);
    assert_eq!(
        code(&out),
        1,
        "config errors are usage errors: {}",
        stderr(&out)
    );

    let out = gcl(&["serve", "--connect-retries", "3"]);
    assert_eq!(
        code(&out),
        1,
        "--connect-retries without --join is a usage error: {}",
        stderr(&out)
    );
}

#[test]
fn coordinator_bind_failure_exits_two() {
    // Occupy a port, then ask the coordinator to bind it.
    let holder = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = holder.local_addr().expect("addr").to_string();
    let out = gcl(&["coordinate", "--addr", &addr]);
    assert_eq!(code(&out), 2, "bind conflict is exit 2: {}", stderr(&out));
    assert!(
        stderr(&out).contains("bind"),
        "says what failed: {}",
        stderr(&out)
    );
}

#[test]
fn worker_unreachable_coordinator_exits_two() {
    // Nothing listens on the reserved-then-released port: connect refused.
    let addr = {
        let holder = TcpListener::bind("127.0.0.1:0").expect("reserve port");
        holder.local_addr().expect("addr").to_string()
    };
    let out = gcl(&["serve", "--join", &addr, "--connect-retries", "0"]);
    assert_eq!(
        code(&out),
        2,
        "unreachable coordinator is exit 2: {}",
        stderr(&out)
    );
}

#[test]
fn unrecoverable_journal_exits_one() {
    // A journal with a foreign magic is the operator pointing the
    // coordinator at the wrong file: a configuration error (exit 1),
    // not a network one — supervisors must not retry it.
    let mut path = std::env::temp_dir();
    path.push(format!("gcl-cli-badmagic-{}.journal", std::process::id()));
    std::fs::write(&path, b"this is not a journal at all").expect("write bad journal");
    let out = gcl(&[
        "coordinate",
        "--addr",
        "127.0.0.1:0",
        "--journal",
        path.to_str().expect("utf8 path"),
        "--recover",
    ]);
    assert_eq!(
        code(&out),
        1,
        "unrecoverable journal is a config error: {}",
        stderr(&out)
    );
    assert!(
        stderr(&out).contains("journal"),
        "says what failed: {}",
        stderr(&out)
    );
    std::fs::remove_file(&path).ok();

    let out = gcl(&["coordinate", "--recover"]);
    assert_eq!(
        code(&out),
        1,
        "--recover without --journal is a usage error: {}",
        stderr(&out)
    );
}

/// Spawn a coordinator child on a fresh port and wait until it accepts.
fn start_coordinator_child(extra: &[&str]) -> (Child, String) {
    let addr = {
        let holder = TcpListener::bind("127.0.0.1:0").expect("reserve port");
        holder.local_addr().expect("addr").to_string()
    };
    let child = Command::new(env!("CARGO_BIN_EXE_gcl"))
        .args(["coordinate", "--addr", &addr])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match TcpStream::connect(&addr) {
            Ok(_) => return (child, addr),
            Err(e) => {
                assert!(Instant::now() < deadline, "never listened: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// One NDJSON round trip on a fresh connection.
fn roundtrip(addr: &str, request: &str) -> String {
    let stream = TcpStream::connect(addr).expect("dial coordinator");
    let mut writer = stream.try_clone().expect("clone stream");
    writeln!(writer, "{request}").expect("send request");
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .expect("read response");
    line
}

#[test]
fn chaos_verbs_refused_unless_enabled() {
    // Default: `decommission` and `reset` answer a structured refusal.
    let (mut child, addr) = start_coordinator_child(&[]);
    for request in [
        r#"{"op":"decommission","worker":"w0"}"#,
        r#"{"op":"reset"}"#,
    ] {
        let response = roundtrip(&addr, request);
        assert!(
            response.contains(r#""ok":false"#),
            "gated verb must fail: {response}"
        );
        assert!(
            response.contains("chaos verbs disabled"),
            "refusal names the gate: {response}"
        );
    }
    let _ = roundtrip(&addr, r#"{"op":"shutdown"}"#);
    let code = child.wait().expect("coordinator exit");
    assert!(code.success(), "clean drain after refusals: {code}");

    // Opted in: the same verbs reach their handlers (the decommission
    // fails differently — there is no such worker — and reset succeeds).
    let (mut child, addr) = start_coordinator_child(&["--chaos-verbs"]);
    let response = roundtrip(&addr, r#"{"op":"decommission","worker":"w0"}"#);
    assert!(
        !response.contains("chaos verbs disabled"),
        "gate is open: {response}"
    );
    let response = roundtrip(&addr, r#"{"op":"reset"}"#);
    assert!(
        response.contains(r#""ok":true"#),
        "reset runs with the gate open: {response}"
    );
    let _ = roundtrip(&addr, r#"{"op":"shutdown"}"#);
    let code = child.wait().expect("coordinator exit");
    assert!(code.success(), "clean drain: {code}");
}

/// `gcl replay` exit codes, pinned end to end through the real binary:
/// absent or corrupt container → 2 (resource unusable), version-skewed
/// container with a *valid* checksum → 3 (protocol mismatch), intact
/// container → 0. Replay never silently falls back to execution, so these
/// codes are what a sweep supervisor scripts against.
#[test]
fn replay_trace_exit_codes() {
    use gcl::sim::{fnv_fold_bytes, FNV_OFFSET};

    let mut dir = std::env::temp_dir();
    dir.push(format!("gcl-cli-traces-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create trace dir");
    let dirs = dir.to_str().expect("utf8 path");

    // No container captured yet: exit 2, with the path in the message.
    let out = gcl(&["replay", "2mm", "--tiny", "--sanitize", "--in", dirs]);
    assert_eq!(
        code(&out),
        2,
        "absent container is exit 2: {}",
        stderr(&out)
    );
    assert!(
        stderr(&out).contains("cannot replay"),
        "says what failed: {}",
        stderr(&out)
    );

    // Capture, then the happy path.
    let out = gcl(&["trace", "2mm", "--tiny", "--sanitize", "--out", dirs]);
    assert_eq!(code(&out), 0, "capture failed: {}", stderr(&out));
    let container = std::fs::read_dir(&dir)
        .expect("list trace dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "gcltrace"))
        .expect("capture published a container");
    let out = gcl(&["replay", "2mm", "--tiny", "--sanitize", "--in", dirs]);
    assert_eq!(code(&out), 0, "valid replay: {}", stderr(&out));

    // One flipped byte mid-payload: the container checksum catches it and
    // the container is unusable — exit 2.
    let good = std::fs::read(&container).expect("read container");
    let mut bad = good.clone();
    bad[good.len() / 2] ^= 0x40;
    std::fs::write(&container, &bad).expect("write corrupt container");
    let out = gcl(&["replay", "2mm", "--tiny", "--sanitize", "--in", dirs]);
    assert_eq!(
        code(&out),
        2,
        "corrupt container is exit 2: {}",
        stderr(&out)
    );

    // Version skew with the trailing checksum *recomputed*: the file is
    // structurally perfect, this build just speaks another format — the
    // protocol slot, exit 3. (Version is the u32 at offset 8; the file
    // checksum is the trailing u64.)
    let mut skewed = good.clone();
    skewed[8] ^= 0xff;
    let n = skewed.len();
    let sum = fnv_fold_bytes(FNV_OFFSET, &skewed[..n - 8]);
    skewed[n - 8..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&container, &skewed).expect("write skewed container");
    let out = gcl(&["replay", "2mm", "--tiny", "--sanitize", "--in", dirs]);
    assert_eq!(code(&out), 3, "version skew is exit 3: {}", stderr(&out));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_protocol_failure_exits_three() {
    // A listener that accepts the connection and slams it shut: the
    // worker reaches the "coordinator", then the join handshake dies —
    // a protocol failure, not a connectivity one.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let addr = listener.local_addr().expect("addr").to_string();
    // The stub thread is deliberately not joined: it blocks in accept
    // until the test process exits.
    std::thread::spawn(move || {
        while let Ok((conn, _)) = listener.accept() {
            drop(conn)
        }
    });
    let out = gcl(&["serve", "--join", &addr, "--connect-retries", "0"]);
    assert_eq!(
        code(&out),
        3,
        "broken handshake is exit 3: {}",
        stderr(&out)
    );
}
