//! Every benchmark kernel round-trips through the disassembler and parser,
//! and classification is invariant under the round trip — a cross-crate
//! consistency check between `gcl-ptx`, `gcl-core` and `gcl-workloads`.

use gcl::prelude::*;
use gcl_workloads::{graph_apps, image, linear};

fn all_kernels() -> Vec<Kernel> {
    vec![
        linear::Mm2::kernel(),
        linear::Gaus::fan1(),
        linear::Gaus::fan2(),
        linear::Grm::norm_kernel(),
        linear::Grm::ortho_kernel(),
        linear::Lu::scale_kernel(),
        linear::Lu::update_kernel(),
        linear::Spmv::kernel(),
        image::Htw::kernel(),
        image::Mriq::kernel(),
        image::Dwt::row_kernel(),
        image::Dwt::col_kernel(),
        image::Bpr::forward_kernel(),
        image::Bpr::adjust_kernel(),
        image::Srad::coeff_kernel(),
        image::Srad::update_kernel(),
        graph_apps::Bfs::expand_kernel(),
        graph_apps::Bfs::commit_kernel(),
        graph_apps::Sssp::relax_kernel(),
        graph_apps::Ccl::propagate_kernel(),
        graph_apps::Mst::find_kernel(),
        graph_apps::Mst::merge_kernel(),
        graph_apps::Mst::jump_kernel(),
        graph_apps::Mis::select_kernel(),
        graph_apps::Mis::remove_kernel(),
    ]
}

#[test]
fn every_workload_kernel_round_trips() {
    for kernel in all_kernels() {
        let text = kernel.to_string();
        let parsed = parse_kernel(&text)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{text}", kernel.name()));
        assert_eq!(
            parsed,
            kernel,
            "{} changed across round trip",
            kernel.name()
        );
    }
}

#[test]
fn classification_is_invariant_under_round_trip() {
    for kernel in all_kernels() {
        let parsed = parse_kernel(&kernel.to_string()).unwrap();
        let before = classify(&kernel);
        let after = classify(&parsed);
        assert_eq!(before, after, "{}", kernel.name());
    }
}

#[test]
fn every_workload_kernel_has_a_valid_cfg() {
    for kernel in all_kernels() {
        let cfg = Cfg::build(&kernel);
        // Every block reachable from the entry in RPO.
        let rpo = cfg.reverse_post_order();
        assert!(!rpo.is_empty(), "{}", kernel.name());
        assert_eq!(rpo[0], 0, "{}", kernel.name());
        // Every conditional branch has a reconvergence pc (or the exit
        // sentinel).
        let reconv = cfg.reconvergence_pcs(&kernel);
        for (pc, inst) in kernel.insts().iter().enumerate() {
            if matches!(inst.op, gcl::ptx::Op::Bra { .. }) && inst.guard.is_some() {
                assert!(reconv.contains_key(&pc), "{} pc {pc}", kernel.name());
            }
        }
    }
}

#[test]
fn static_class_mix_by_category() {
    // Aggregate static classification per category — the Figure 1 static
    // view: graph kernels carry most of the non-deterministic loads.
    let count = |kernels: &[Kernel]| {
        kernels
            .iter()
            .map(|k| classify(k).global_load_counts())
            .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
    };
    let (_, linear_n) = count(&[
        linear::Mm2::kernel(),
        linear::Gaus::fan1(),
        linear::Gaus::fan2(),
        linear::Lu::scale_kernel(),
        linear::Lu::update_kernel(),
    ]);
    assert_eq!(
        linear_n, 0,
        "dense linear algebra must be fully deterministic"
    );
    let (graph_d, graph_n) = count(&[
        graph_apps::Bfs::expand_kernel(),
        graph_apps::Sssp::relax_kernel(),
        graph_apps::Ccl::propagate_kernel(),
        graph_apps::Mst::find_kernel(),
        graph_apps::Mis::select_kernel(),
    ]);
    assert!(
        graph_n >= 10,
        "graph kernels: {graph_n} non-deterministic loads"
    );
    assert!(graph_d > 0);
}
