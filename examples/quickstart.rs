//! Quickstart: write a kernel, classify its loads, run it on the simulated
//! GPU, and read per-class memory statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gcl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A gather kernel: out[tid] = table[idx[tid]].
    // `idx[tid]` is indexed by thread id  -> deterministic load.
    // `table[idx[tid]]` is data-dependent -> non-deterministic load.
    let mut b = KernelBuilder::new("gather");
    let p_idx = b.param("idx", Type::U64);
    let p_table = b.param("table", Type::U64);
    let p_out = b.param("out", Type::U64);
    let p_n = b.param("n", Type::U32);
    let idx = b.ld_param(Type::U64, p_idx);
    let table = b.ld_param(Type::U64, p_table);
    let out = b.ld_param(Type::U64, p_out);
    let n = b.ld_param(Type::U32, p_n);
    let tid = b.thread_linear_id();
    let in_range = b.setp(CmpOp::Lt, Type::U32, tid, n);
    let done = b.new_label();
    b.bra_unless(in_range, done);
    let ia = b.index64(idx, tid, 4);
    let i = b.ld_global(Type::U32, ia);
    let ta = b.index64(table, i, 4);
    let v = b.ld_global(Type::U32, ta);
    let oa = b.index64(out, tid, 4);
    b.st_global(Type::U32, oa, v);
    b.place(done);
    b.exit();
    let kernel = b.build()?;

    // --- The paper's analysis: classify each global load. -----------------
    let classes = classify(&kernel);
    println!("kernel `{}` loads:", kernel.name());
    for load in classes.global_loads() {
        println!(
            "  pc {:>2}: {:<17}  sources: {:?}",
            load.pc,
            load.class.to_string(),
            load.sources
        );
    }

    // --- Run it: a scattered index table makes the N load uncoalesced. ----
    let n_elems = 4096u32;
    let mut gpu = Gpu::new(GpuConfig::fermi())?;
    let idx_buf = gpu.mem().alloc_array(Type::U32, u64::from(n_elems))?;
    // A pseudo-random permutation: idx[t] = (t * 1103515245 + 12345) % n.
    let indices: Vec<u32> = (0..n_elems)
        .map(|t| t.wrapping_mul(1_103_515_245).wrapping_add(12_345) % n_elems)
        .collect();
    gpu.mem().write_u32_slice(idx_buf, &indices);
    let table_buf = gpu.mem().alloc_array(Type::U32, u64::from(n_elems))?;
    gpu.mem()
        .write_u32_slice(table_buf, &(0..n_elems).map(|v| v * 7).collect::<Vec<_>>());
    let out_buf = gpu.mem().alloc_array(Type::U32, u64::from(n_elems))?;

    let params = pack_params(&kernel, &[idx_buf, table_buf, out_buf, u64::from(n_elems)]);
    let stats = gpu.launch(&kernel, Dim3::x(n_elems / 256), Dim3::x(256), &params)?;

    // Verify the result functionally.
    let got = gpu.mem().read_u32_slice(out_buf, 8);
    let want: Vec<u32> = indices[..8].iter().map(|&i| i * 7).collect();
    assert_eq!(got, want);

    // And report the paper's headline numbers.
    println!("\ncycles: {}", stats.cycles);
    for class in [LoadClass::Deterministic, LoadClass::NonDeterministic] {
        let agg = stats.class(class);
        println!(
            "{class:<17}: {:>5} warp loads, {:>5.2} requests/warp, {:>7.1} cycles mean turnaround",
            agg.warp_loads,
            agg.requests_per_warp(),
            agg.turnaround.mean(),
        );
    }
    Ok(())
}
