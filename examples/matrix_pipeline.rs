//! Regular vs. irregular linear algebra: run dense `2mm` and sparse `spmv`
//! side by side and contrast their memory behavior — the paper's central
//! comparison in miniature.
//!
//! ```text
//! cargo run --release --example matrix_pipeline
//! ```

use gcl::prelude::*;
use gcl_workloads::linear::{Mm2, Spmv};

fn report(name: &str, stats: &LaunchStats) {
    println!("\n{name}:");
    println!(
        "  cycles {:>8}   IPC {:>5.2}",
        stats.cycles,
        stats.sm.warp_insts as f64 / stats.cycles as f64
    );
    println!(
        "  non-deterministic fraction of loads: {:>5.1}%",
        stats.nondet_load_fraction() * 100.0
    );
    for class in [LoadClass::Deterministic, LoadClass::NonDeterministic] {
        let a = stats.class(class);
        if a.warp_loads == 0 {
            continue;
        }
        println!(
            "  {class:<17}: {:>5.2} req/warp, mean turnaround {:>7.1} cycles",
            a.requests_per_warp(),
            a.turnaround.mean()
        );
    }
    let idle = stats.unit_idle_fractions();
    println!(
        "  unit idle: SP {:>4.1}%  SFU {:>4.1}%  LD/ST {:>4.1}%",
        idle[0] * 100.0,
        idle[1] * 100.0,
        idle[2] * 100.0
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GpuConfig::fermi();

    // Dense: two chained matrix multiplies. All loads deterministic, all
    // coalesced; the memory system behaves.
    let dense = Mm2 { n: 64, tile: 16 };
    let mut gpu = Gpu::new(cfg.clone())?;
    let dense_run = dense.run(&mut gpu)?;
    report("2mm (dense, regular)", &dense_run.stats);

    // Sparse: CSR SpMV. The column-index indirection makes most loads
    // non-deterministic, and the x-vector gather does not coalesce.
    let sparse = Spmv {
        n: 4096,
        nnz_per_row: 24,
        block: 192,
    };
    let mut gpu = Gpu::new(cfg)?;
    let sparse_run = sparse.run(&mut gpu)?;
    report("spmv (sparse, irregular)", &sparse_run.stats);

    // The paper's claim, on our runs:
    let dense_req = dense_run
        .stats
        .class(LoadClass::Deterministic)
        .requests_per_warp();
    let sparse_req = sparse_run
        .stats
        .class(LoadClass::NonDeterministic)
        .requests_per_warp();
    println!(
        "\nnon-deterministic spmv loads generate {:.1}x the requests per warp of 2mm's \
         deterministic loads",
        sparse_req / dense_req
    );
    Ok(())
}
