//! Section X-B in action: neighboring CTAs share data blocks (Figure 12),
//! so assigning consecutive CTAs to the same SM improves L1 locality. This
//! example measures a halo-exchange stencil under both CTA schedulers.
//!
//! ```text
//! cargo run --release --example cta_locality
//! ```

use gcl::mem::{AccessOutcome, ClassTag};
use gcl::prelude::*;
use gcl::sim::CtaSchedPolicy;

/// A 1-D windowed filter with 50%-overlapping CTA tiles: CTA `c` reads the
/// window `[c*HALF, c*HALF + 2*HALF)`, so half of every CTA's input is
/// shared with CTA `c+1` — strong CTA-distance-1 sharing, the Figure 12
/// pattern Section X-B wants to exploit.
fn windowed_kernel() -> Kernel {
    let mut b = KernelBuilder::new("windowed_filter");
    let pin = b.param("input", Type::U64);
    let pout = b.param("out", Type::U64);
    let phalf = b.param("half", Type::U32);
    let input = b.ld_param(Type::U64, pin);
    let out = b.ld_param(Type::U64, pout);
    let half = b.ld_param(Type::U32, phalf);
    let cta = b.sreg(Special::CtaIdX);
    let tid = b.sreg(Special::TidX);
    // Each thread reads its element from both halves of the window.
    let base = b.mul(Type::U32, cta, half);
    let i0 = b.add(Type::U32, base, tid);
    let a0 = b.index64(input, i0, 4);
    let lo = b.ld_global(Type::F32, a0);
    let i1 = b.add(Type::U32, i0, half);
    let a1 = b.index64(input, i1, 4);
    let hi = b.ld_global(Type::F32, a1);
    let s = b.add(Type::F32, lo, hi);
    let avg = b.mul(Type::F32, s, Operand::f32(0.5));
    let oi = b.mad(Type::U32, cta, half, tid);
    let oa = b.index64(out, oi, 4);
    b.st_global(Type::F32, oa, avg);
    b.exit();
    b.build().expect("windowed kernel is valid")
}

fn run(policy: CtaSchedPolicy, iters: u32) -> (LaunchStats, f64) {
    let mut cfg = GpuConfig::fermi();
    cfg.cta_sched = policy;
    let mut gpu = Gpu::new(cfg).expect("fermi config is valid");
    let half = 128u32;
    let n_ctas = 256u32;
    let n = half * (n_ctas + 1);
    let input = gpu
        .mem()
        .alloc_array(Type::F32, u64::from(n))
        .expect("device allocation");
    gpu.mem()
        .write_f32_slice(input, &(0..n).map(|v| v as f32).collect::<Vec<_>>());
    let out = gpu
        .mem()
        .alloc_array(Type::F32, u64::from(half * n_ctas))
        .expect("device allocation");
    let kernel = windowed_kernel();
    let mut merged = LaunchStats::default();
    for _ in 0..iters {
        let params = pack_params(&kernel, &[input, out, u64::from(half)]);
        let stats = gpu
            .launch(&kernel, Dim3::x(n_ctas), Dim3::x(half), &params)
            .expect("windowed launch");
        merged.merge(&stats);
    }
    // Reuse = accesses that found their line present or in flight.
    let reuse = merged
        .l1
        .outcome_class(AccessOutcome::Hit, ClassTag::Deterministic)
        + merged
            .l1
            .outcome_class(AccessOutcome::HitReserved, ClassTag::Deterministic);
    let total = merged.l1.accepted(ClassTag::Deterministic);
    (merged, reuse as f64 / total as f64)
}

fn main() {
    let iters = 2;
    let (rr, rr_hit) = run(CtaSchedPolicy::RoundRobin, iters);
    let (cl, cl_hit) = run(CtaSchedPolicy::Clustered { group: 4 }, iters);
    println!("50%-overlap windowed filter, 256 CTAs of 128 threads, {iters} iterations\n");
    println!(
        "round-robin CTA scheduling : L1 reuse {:>5.2}%  cycles {}",
        rr_hit * 100.0,
        rr.cycles
    );
    println!(
        "clustered   CTA scheduling : L1 reuse {:>5.2}%  cycles {}",
        cl_hit * 100.0,
        cl.cycles
    );
    println!(
        "\nclustered vs round-robin: {:.3}x cycles (Section X-B measured, not just suggested)",
        rr.cycles as f64 / cl.cycles as f64
    );
}
