//! Classify loads in a textual PTX-subset kernel — the paper's Code 1
//! (`bfs`) as it would come out of a compiler, fed to the offline analysis.
//!
//! ```text
//! cargo run --example classify_ptx
//! ```

use gcl::prelude::*;

/// The paper's Code 1, lowered the way NVCC would:
///
/// ```c
/// int tid = blockIdx.x * MAX_THREADS_PER_BLOCK + threadIdx.x;
/// if (tid < no_of_nodes && g_graph_mask[tid]) {
///     g_graph_mask[tid] = false;
///     for (int i = g_graph_nodes[tid].starting; ...) {
///         int id = g_graph_edges[i];
///         if (!g_graph_visited[id]) ...
///     }
/// }
/// ```
const BFS_PTX: &str = r#"
.entry bfs_code1 (
  .param .u64 g_graph_mask, .param .u64 g_graph_nodes,
  .param .u64 g_graph_edges, .param .u64 g_graph_visited,
  .param .u32 no_of_nodes
)
{
  ld.param.u64 %rd1, [g_graph_mask];
  ld.param.u64 %rd2, [g_graph_nodes];
  ld.param.u64 %rd3, [g_graph_edges];
  ld.param.u64 %rd4, [g_graph_visited];
  ld.param.u32 %r1, [no_of_nodes];
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %ntid.x;
  mov.u32 %r4, %tid.x;
  mad.lo.u32 %r5, %r2, %r3, %r4;          // tid
  setp.ge.u32 %p1, %r5, %r1;
@%p1 bra DONE;
  mul.wide.u32 %rd5, %r5, 4;
  add.u64 %rd6, %rd1, %rd5;
  ld.global.u32 %r6, [%rd6];              // g_graph_mask[tid]      (D)
  setp.eq.u32 %p2, %r6, 0;
@%p2 bra DONE;
  st.global.u32 [%rd6], 0;                // g_graph_mask[tid] = false
  mul.wide.u32 %rd7, %r5, 8;              // nodes[tid] = {start, degree}
  add.u64 %rd8, %rd2, %rd7;
  ld.global.u32 %r7, [%rd8];              // start                  (D)
  ld.global.u32 %r8, [%rd8+4];            // degree                 (D)
  add.u32 %r9, %r7, %r8;                  // end
  mov.u32 %r10, %r7;                      // i = start
LOOP:
  setp.ge.u32 %p3, %r10, %r9;
@%p3 bra DONE;
  mul.wide.u32 %rd9, %r10, 4;
  add.u64 %rd10, %rd3, %rd9;
  ld.global.u32 %r11, [%rd10];            // id = g_graph_edges[i]  (N)
  mul.wide.u32 %rd11, %r11, 4;
  add.u64 %rd12, %rd4, %rd11;
  ld.global.u32 %r12, [%rd12];            // g_graph_visited[id]    (N)
  add.u32 %r10, %r10, 1;
  bra LOOP;
DONE:
  exit;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = parse_kernel(BFS_PTX)?;
    println!(
        "parsed `{}`: {} instructions, {} params",
        kernel.name(),
        kernel.insts().len(),
        kernel.params().len()
    );

    let classes = classify(&kernel);
    let (d, n) = classes.global_load_counts();
    println!("\nglobal loads: {d} deterministic, {n} non-deterministic\n");

    for load in classes.global_loads() {
        let inst = &kernel.insts()[load.pc];
        println!(
            "pc {:>2}  {:<34} -> {}",
            load.pc,
            inst.to_string(),
            load.class
        );
        if !load.witness.is_empty() {
            let chain: Vec<String> = load
                .witness
                .iter()
                .map(|&pc| format!("{}", kernel.insts()[pc].op))
                .collect();
            println!("        taint chain: {}", chain.join("  <-  "));
        }
    }

    // The paper's claim, checked mechanically: the mask/nodes loads are
    // deterministic; the edge and visited gathers are not.
    assert_eq!((d, n), (3, 2));
    println!("\nmatches the paper's Code 1 discussion ✔");
    Ok(())
}
