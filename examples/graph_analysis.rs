//! Full per-load-class characterization of one graph application (`bfs`),
//! reproducing the paper's analysis pipeline on a single workload: load
//! distribution, requests per warp, L1 cycle breakdown, turnaround
//! components and inter-CTA locality.
//!
//! ```text
//! cargo run --release --example graph_analysis
//! ```

use gcl::mem::AccessOutcome;
use gcl::prelude::*;
use gcl_workloads::graph_apps::Bfs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Bfs {
        scale: 11,
        edge_factor: 8,
        block: 512,
        source: 0,
    };
    let cfg = GpuConfig::fermi();
    let mut gpu = Gpu::new(cfg.clone())?;
    let run = workload.run(&mut gpu)?;
    let stats = &run.stats;

    println!("bfs on a 2^{}-vertex R-MAT graph", workload.scale);
    println!(
        "  {} launches, {} cycles, {} warp instructions",
        stats.launches, stats.cycles, stats.sm.warp_insts
    );

    // Figure 1 view: load class distribution.
    println!("\nload distribution (dynamic warp loads):");
    for class in [LoadClass::Deterministic, LoadClass::NonDeterministic] {
        let agg = stats.class(class);
        println!(
            "  {class:<17}: {:>6} warp loads  {:>5.2} req/warp  {:>5.2} req/active thread",
            agg.warp_loads,
            agg.requests_per_warp(),
            agg.requests_per_active_thread()
        );
    }

    // Figure 3 view: where L1 cycles went.
    println!("\nL1 cache cycles:");
    let total: u64 = AccessOutcome::ALL
        .iter()
        .map(|o| stats.l1.outcome_total(*o))
        .sum();
    for (o, label) in [
        (AccessOutcome::Hit, "hit"),
        (AccessOutcome::HitReserved, "hit reserved"),
        (AccessOutcome::MissIssued, "miss"),
        (AccessOutcome::ReservationFailTags, "rsrv fail (tags)"),
        (AccessOutcome::ReservationFailMshr, "rsrv fail (MSHR)"),
        (AccessOutcome::ReservationFailIcnt, "rsrv fail (icnt)"),
    ] {
        println!(
            "  {label:<17}: {:>6.2}%",
            stats.l1.outcome_total(o) as f64 / total as f64 * 100.0
        );
    }

    // Figure 5 view: turnaround components.
    println!("\nturnaround components (mean cycles):");
    for class in [LoadClass::Deterministic, LoadClass::NonDeterministic] {
        let a = stats.class(class);
        println!(
            "  {class:<17}: total {:>7.1} = wait-prev {:>6.1} + wait-own {:>5.1} + memory {:>7.1}",
            a.turnaround.mean(),
            a.wait_prev_warps.mean(),
            a.wait_current_warp.mean(),
            a.memory_time.mean()
        );
    }

    // Tail latency: the paper's mean-based Figure 5, extended with the
    // distribution the histogram gives us for free.
    println!("\nturnaround tails (upper bounds):");
    for class in [LoadClass::Deterministic, LoadClass::NonDeterministic] {
        let h = &stats.class(class).turnaround_hist;
        println!(
            "  {class:<17}: p50 ≤ {:>5}  p95 ≤ {:>5}  p99 ≤ {:>5}",
            h.percentile(0.5),
            h.percentile(0.95),
            h.percentile(0.99)
        );
    }

    // Figures 10–12 view: the hidden locality.
    let blocks = gpu.block_summary();
    println!("\ninter-CTA locality:");
    println!(
        "  cold-miss ratio            : {:>6.2}%",
        blocks.cold_miss_ratio * 100.0
    );
    println!(
        "  mean accesses per block    : {:>6.1}",
        blocks.mean_accesses_per_block
    );
    println!(
        "  blocks shared by 2+ CTAs   : {:>6.2}%",
        blocks.shared_block_ratio * 100.0
    );
    println!(
        "  accesses to shared blocks  : {:>6.2}%",
        blocks.shared_access_ratio * 100.0
    );
    println!(
        "  mean CTAs per shared block : {:>6.1}",
        blocks.mean_ctas_per_shared_block
    );

    let hist = gpu.distance_histogram();
    let near: f64 = hist.iter().filter(|(d, _)| *d <= 4).map(|(_, f)| f).sum();
    println!(
        "  shared accesses at CTA distance ≤ 4: {:.2}%",
        near * 100.0
    );
    Ok(())
}
