//! # gcl — GPU critical-load classification and hidden-data-locality analysis
//!
//! A from-scratch Rust reproduction of *"Revealing Critical Loads and Hidden
//! Data Locality in GPGPU Applications"* (Koo, Jeon, Annavaram — IISWC
//! 2015). This facade crate re-exports the whole toolkit:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`ptx`] | `gcl-ptx` | PTX-subset ISA, kernel builder/parser, CFG analyses |
//! | [`load_class`] | `gcl-core` | **the paper's contribution**: backward-dataflow load classification |
//! | [`analyze`] | `gcl-analyze` | static verifier, divergence analysis, affine coalescing prediction |
//! | [`mem`] | `gcl-mem` | caches with reservation semantics, interconnect, L2, DRAM |
//! | [`sim`] | `gcl-sim` | cycle-level SIMT GPU simulator (GPGPU-Sim's role) |
//! | [`workloads`] | `gcl-workloads` | the 15 benchmarks of Table I, rebuilt |
//! | [`stats`] | `gcl-stats` | profiler counters, tables, figure series |
//! | [`exec`] | `gcl-exec` | parallel job pool, content-addressed result cache, `gcl serve` daemon, fleet coordinator |
//!
//! ## Thirty-second tour
//!
//! ```
//! use gcl::prelude::*;
//!
//! // 1. Write a kernel (or parse one from PTX-subset text).
//! let mut b = KernelBuilder::new("gather");
//! let idx = b.param("idx", Type::U64);
//! let data = b.param("data", Type::U64);
//! let ib = b.ld_param(Type::U64, idx);
//! let db = b.ld_param(Type::U64, data);
//! let tid = b.thread_linear_id();
//! let ia = b.index64(ib, tid, 4);
//! let i = b.ld_global(Type::U32, ia);      // idx[tid]       — deterministic
//! let da = b.index64(db, i, 4);
//! let v = b.ld_global(Type::U32, da);      // data[idx[tid]] — non-deterministic
//! b.st_global(Type::U32, ia, v);
//! b.exit();
//! let kernel = b.build()?;
//!
//! // 2. Classify its loads (the paper's Section V analysis).
//! let classes = classify(&kernel);
//! assert_eq!(classes.global_load_counts(), (1, 1));
//!
//! // 3. Run it on the simulated Fermi GPU and observe per-class behavior.
//! let mut gpu = Gpu::new(GpuConfig::small())?;
//! let idx_buf = gpu.mem().alloc_array(Type::U32, 64)?;
//! gpu.mem().write_u32_slice(idx_buf, &(0..64).rev().collect::<Vec<_>>());
//! let data_buf = gpu.mem().alloc_array(Type::U32, 64)?;
//! let params = pack_params(&kernel, &[idx_buf, data_buf]);
//! let stats = gpu.launch(&kernel, Dim3::x(2), Dim3::x(32), &params)?;
//! assert!(stats.class(LoadClass::NonDeterministic).warp_loads > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for larger programs and `crates/bench` for the harnesses
//! that regenerate every table and figure of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gcl_analyze as analyze;
pub use gcl_core as load_class;
pub use gcl_exec as exec;
pub use gcl_mem as mem;
pub use gcl_ptx as ptx;
pub use gcl_sim as sim;
pub use gcl_stats as stats;
pub use gcl_trace as trace;
pub use gcl_workloads as workloads;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use gcl_analyze::{
        affine_loads, analyze, analyze_with, critical_loads, footprints, AnalyzeOptions,
        CriticalLoad, KernelLocality, LaunchCtx, Prediction, Report, Severity, Sharing, CSV_SCHEMA,
    };
    pub use gcl_core::{classify, AddressSource, Classification, LoadClass};
    pub use gcl_exec::{
        run_job, run_job_from, run_loadgen, run_pool, run_soak, run_worker, ClientOptions,
        Coordinator, CoordinatorOptions, ExecError, FleetInject, JobEvent, JobOutput, JobResult,
        JobSpec, LoadgenOptions, LoadgenReport, PoolConfig, ResultCache, ServeClient, ServeError,
        ServeOptions, Server, SessionClient, SessionSubmit, SoakOptions, SoakReport, TraceStore,
        WorkerOptions,
    };
    pub use gcl_ptx::{
        parse_kernel, Cfg, CmpOp, Kernel, KernelBuilder, Operand, Reg, Space, Special, Type,
    };
    pub use gcl_sim::{
        pack_params, CheckpointError, Dim3, Gpu, GpuConfig, LaunchStats, ReplayError, SimError,
        Snapshot,
    };
    pub use gcl_stats::{FigureSeries, Series, Table};
    pub use gcl_trace::{parse_trace, read_trace, TraceError, TraceFile, TraceWriter};
    pub use gcl_workloads::{Category, RunResult, Workload};
}
