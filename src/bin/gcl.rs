//! `gcl` — command-line front end for the toolkit.
//!
//! ```text
//! gcl classify <kernel.ptx> [--json]       classify loads, print witnesses
//! gcl analyze  <kernel.ptx|workload|all> [--csv] [--locality] [--critical]
//!              [--grid X[,Y[,Z]]] [--block X[,Y[,Z]]]
//!                                          static lints, divergence, coalescing,
//!                                          inter-CTA locality, critical loads
//! gcl disasm   <kernel.ptx>                parse and re-print (normalize)
//! gcl run      <kernel.ptx> --grid G --block B [--alloc BYTES | --param V]...
//!              [--memcheck] [--sanitize] [--max-cycles N] [--trace]
//!              [--trace-cap N]
//!              [--checkpoint-every N --checkpoint-file P] [--resume P]
//!                                          simulate one launch, print stats
//! gcl trace    <workload|all> [--tiny] [--sanitize] [--out DIR]
//!                                          capture execution traces
//! gcl replay   <workload|all> [--tiny] [--sanitize] [--in DIR] [--verify]
//!                                          replay captured traces
//! gcl suite    [--tiny] [--sanitize] [--analyze] [--force-fail NAME]
//!              [--resume] [--retries N] [--jobs N] [--no-cache]
//!              [--replay] [--traces DIR]
//!              [--fleet HOST:PORT]         run the 15-benchmark suite
//! gcl serve    [--addr HOST:PORT] [--jobs N] [--queue-cap N] [--no-cache]
//!              [--join HOST:PORT --name NAME --inject SPEC]
//!                                          simulation daemon (NDJSON over TCP)
//!                                          or fleet worker (--join)
//! gcl coordinate [--addr HOST:PORT] [--queue-cap N] [--lease-ms N]
//!              [--heartbeat-ms N] [--heartbeat-timeout-ms N]
//!              [--replicas N] [--session-inflight-cap N]
//!              [--journal PATH] [--recover] [--rebalance-ms N]
//!              [--chaos-verbs]              fleet coordinator
//! gcl loadgen  [--addr HOST:PORT] [--submitters N] [--duration-ms N]
//!              [--think-ms N] [--distinct N] [--out PATH]
//!                                          closed-loop load generator
//! gcl soak     [--duration-ms N] [--chaos] [--workers N] [--seed N]
//!                                          fleet soak + chaos harness
//! ```

use gcl::prelude::*;
use gcl_core::{Classification, LoadClass};
use gcl_stats::Json;
use std::path::Path;
use std::process::ExitCode;

/// Exit code for an address that cannot be bound (or dialed): the
/// operator should fix the address or free the port.
const EXIT_BIND: u8 = 2;
/// Exit code for a protocol or transport failure after startup.
const EXIT_NET: u8 = 3;
/// Exit code for a trace container that cannot be read at all: absent,
/// truncated, corrupt, or not a trace file. The file itself is the problem
/// — recapture it. Shares the numeric slot with [`EXIT_BIND`]: both mean
/// "the named resource is unusable".
const EXIT_TRACE_UNREADABLE: u8 = 2;
/// Exit code for a structurally sound trace that this build cannot replay:
/// format version skew, configuration fingerprint drift, or a captured
/// kernel the workload no longer has. The *pairing* of file and build is
/// the problem. Shares the slot with [`EXIT_NET`]: both mean "the protocol
/// between two healthy parties broke".
const EXIT_TRACE_MISMATCH: u8 = 3;

/// A CLI failure: exit code plus message. Code 1 is the generic failure
/// every legacy path maps to; `serve`/`coordinate` distinguish bind
/// failures ([`EXIT_BIND`]) from protocol errors ([`EXIT_NET`]).
type CliError = (u8, String);

fn fail(e: String) -> CliError {
    (1, e)
}

fn serve_exit(e: ServeError) -> CliError {
    match e {
        ServeError::Config(m) => (1, m),
        ServeError::Bind(m) => (EXIT_BIND, m),
        ServeError::Net(m) => (EXIT_NET, m),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), CliError> = match args.first().map(String::as_str) {
        Some("classify") => cmd_classify(&args[1..]).map_err(fail),
        Some("analyze") => cmd_analyze(&args[1..]).map_err(fail),
        Some("disasm") => cmd_disasm(&args[1..]).map_err(fail),
        Some("run") => cmd_run(&args[1..]).map_err(fail),
        Some("suite") => cmd_suite(&args[1..]).map_err(fail),
        Some("trace") => cmd_trace(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("coordinate") => cmd_coordinate(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]).map_err(fail),
        Some("soak") => cmd_soak(&args[1..]).map_err(fail),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(fail(format!("unknown command `{other}`\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, e)) => {
            eprintln!("error: {e}");
            ExitCode::from(code)
        }
    }
}

const USAGE: &str = "\
gcl — GPU critical-load classification and simulation

USAGE:
  gcl classify <kernel.ptx> [--json]
  gcl analyze  <kernel.ptx|workload|all> [--csv] [--locality] [--critical]
               [--grid X[,Y[,Z]]] [--block X[,Y[,Z]]]
  gcl disasm   <kernel.ptx>
  gcl run      <kernel.ptx> --grid G --block B [--alloc BYTES | --param VALUE]...
               [--memcheck] [--sanitize] [--max-cycles N]
               [--trace] [--trace-cap N]
               [--checkpoint-every N --checkpoint-file PATH] [--resume PATH]
  gcl trace    <workload|all> [--tiny] [--sanitize] [--out DIR]
  gcl replay   <workload|all> [--tiny] [--sanitize] [--in DIR] [--verify]
  gcl suite    [--tiny] [--sanitize] [--analyze] [--force-fail NAME]
               [--resume] [--retries N] [--jobs N] [--no-cache]
               [--replay] [--traces DIR]
               [--fleet HOST:PORT]
  gcl serve    [--addr HOST:PORT] [--jobs N] [--queue-cap N] [--no-cache]
               [--join HOST:PORT] [--name NAME] [--inject SPEC]
               [--connect-retries N] [--rejoin]
  gcl coordinate [--addr HOST:PORT] [--queue-cap N] [--lease-ms N]
               [--heartbeat-ms N] [--heartbeat-timeout-ms N]
               [--replicas N] [--probe-timeout-ms N]
               [--session-inflight-cap N]
               [--journal PATH] [--recover] [--rebalance-ms N]
               [--journal-compact-bytes N] [--chaos-verbs]
  gcl loadgen  [--addr HOST:PORT] [--submitters N] [--duration-ms N]
               [--think-ms N] [--distinct N] [--sample-ms N] [--seed N]
               [--workloads A,B,...] [--full] [--out PATH]
  gcl soak     [--addr HOST:PORT] [--workers N] [--slots N]
               [--duration-ms N] [--chaos] [--kill-coordinator-ms N]
               [--kill-worker-ms N] [--submitters N] [--think-ms N]
               [--distinct N] [--workloads A,B,...] [--seed N]
               [--replicas N] [--rebalance-ms N] [--journal PATH]
               [--out PATH]

`classify` runs the paper's backward-dataflow analysis and prints each
global load's class and (for non-deterministic loads) the def-chain back to
the tainting load. `analyze` runs the static-analysis suite — verifier
lints, divergence analysis (flagging `bar.sync` under divergent control
flow), and per-load coalescing/bank-conflict prediction from the tid-affine
address form — over a PTX file, one named workload's kernels, or `all`;
--csv emits one row per load behind a `#schema` version line, and the exit
code is nonzero if any kernel has diagnostics. --locality adds the
loop-aware footprint analysis: per load, the set of 128-byte blocks each
CTA touches (using recovered loop trip counts) and the inter-CTA sharing
class — broadcast / shared / private / unbounded — plus a CTA-pair sharing
matrix and its cluster map under the launch geometry given by --grid and
--block (default 4x1x1 CTAs of 64x1x1 threads). --critical ranks each
kernel's loads by static criticality (dependent-load chain depth, slice
height, consumer count, divergence, predicted requests) so the top of the
list is where optimization and validation effort should go. `run` simulates one launch on the Fermi configuration;
each --alloc allocates a zeroed device buffer and passes its address as the
next kernel parameter, each --param passes a raw integer. With --memcheck,
out-of-bounds device accesses abort the launch with a fault report naming
the load's class and address def-chain. With --sanitize, the simsan runtime
sanitizer checks request conservation through the memory hierarchy and
shared-memory races between warps, and prints the launch's event digest.
With --checkpoint-every N, the complete simulator state is written to
--checkpoint-file every N cycles (and on a hang, the watchdog's mid-flight
snapshot is dumped there); --resume PATH restores such a checkpoint and
continues the interrupted launch — same kernel, same flags — finishing with
the identical event digest as an uninterrupted run. With --trace, a bounded
debug trace of issued warp instructions is armed (capacity --trace-cap,
default 65536 events); when the launch issues more events than the buffer
holds, a one-line warning reports how many were dropped.
`trace` executes workloads with a capture sink attached and writes each
one's complete instruction streams — per warp, delta-compressed, section-
checksummed — to a GCLTRACE1 container under results/traces (or --out DIR),
content-addressed by the same configuration + kernel + parameter
fingerprint that keys the result cache. `replay` feeds those containers
back through the timing model instead of functionally executing the
workload: same per-launch event digests, cycle counts and statistics, at a
fraction of the capture wall-clock; --verify re-runs each workload
execution-driven and fails if replay and execution disagree anywhere.
`replay` exits 2 when a container is missing or unreadable (truncated,
corrupt, bad magic — recapture it) and 3 when a readable container does not
match this build or spec (format version skew, configuration fingerprint
drift, kernel mismatch — re-pair trace and binary).
`suite` keeps going when a benchmark fails, prints a per-benchmark outcome
table, and exits nonzero only if something failed; --analyze runs the
static pre-flight over every benchmark's kernels first (fail-soft: findings
are printed but never stop the run); --force-fail caps the
named benchmark's cycle budget to exercise that path; --sanitize runs each
benchmark twice and fails it if the two event digests diverge. Progress is
persisted to results/run.json after every benchmark: `suite --resume` skips
the benchmarks already recorded as ok, and --retries N re-runs each failure
up to N extra times with capped, seeded-jitter exponential backoff.
--jobs N fans the benchmarks out over N worker threads; results (and event
digests) are identical to a serial run, in the same order. Completed
results are stored in a content-addressed cache under results/cache keyed
by configuration, kernels, and workload parameters — a warm rerun replays
the whole suite without simulating anything; --no-cache bypasses it.
`suite --replay` sources every result by replaying the captured trace
containers under results/traces (or --traces DIR) instead of functionally
executing the workloads; a benchmark whose container is absent or
mismatched fails structurally — replay never silently falls back to
execution.
`serve` runs the same job engine as a daemon: clients connect over TCP and
speak newline-delimited JSON — {\"op\":\"submit\",\"workload\":\"bfs\",
\"tiny\":true} to enqueue (rejected with an error when the bounded queue is
full), {\"op\":\"status\"}, {\"op\":\"result\",\"id\":N}, and
{\"op\":\"shutdown\"} to drain gracefully and exit. Every connection
carries read/write deadlines and a frame-size cap, so a stalled or
misbehaving client cannot wedge the daemon.
`coordinate` runs a fleet coordinator: `gcl serve --join COORD:PORT` on any
number of machines registers workers (named with --name, --jobs slots
each), and clients speak the same submit/status/result/shutdown verbs to
the coordinator, which shards jobs across workers by content-addressed
cache key, supervises them with heartbeats and per-job leases, and
reassigns work from dead, partitioned or stalled workers — results are
deduplicated by cache key, so a fleet sweep is digest-identical to a
serial run. Finished results are fanned out to an R-member replica set of
workers (--replicas, default 2) chosen by rendezvous hashing; a resubmit
of a warm key probes the primary, reads through from a surviving replica,
and write-repairs back to full strength — so losing a node costs only the
keys whose entire replica set died. `suite --fleet COORD:PORT` runs the
whole suite through a coordinator instead of local threads (incompatible
with --jobs, --retries, --force-fail and --no-cache: parallelism, retry
policy and caching belong to the fleet); it opens a streaming session and
follows the coordinator's NDJSON event feed (queued / leased / reassigned
/ done, plus queue-depth heartbeats) instead of polling, and `suite
--fleet --resume` re-attaches to the manifest's recorded session, replaying
any events missed while disconnected. `serve --inject SPEC` arms the
worker-side chaos layer (drop-heartbeat, stall=MS, kill-after=N,
corrupt=N, partition-after=MS) used by the fault-tolerance tests and CI
game days.
`loadgen` drives a serve daemon or coordinator with N concurrent
closed-loop submitters (seeded think-time jitter) and writes a periodic
JSON time series — p50/p99 submit latency, queue depth, cache-hit rate,
shed and error counts — under results/load/. Sheds are data, not
failures: an overloaded coordinator answers structured
{\"ok\":false,\"shed\":true} responses (per-session inflight cap, queue
cap) instead of stalling.
`coordinate --journal PATH` appends every job-table transition, session
attach/detach and replica-directory change to a checksummed write-ahead
journal (fsync-batched, compacted into a snapshot record once it outgrows
--journal-compact-bytes); `--recover` replays the journal on startup —
tolerating a torn tail by truncating to the last valid record — then
reconciles with re-joining workers, which re-announce held leases and
replica inventories so in-flight work resumes instead of re-running.
`serve --join --rejoin` makes a worker redial and re-join after losing
its coordinator instead of exiting. `--rebalance-ms N` arms a background
rebalancer that proactively re-fans under-replicated keys back to R
replicas on any membership change, instead of waiting for a read miss.
The destructive chaos verbs (decommission, reset) are refused unless the
coordinator runs with --chaos-verbs.
`soak` is the long-haul proof: it spawns a journaled coordinator and N
rejoin-capable workers as child processes, drives them with submitter
threads, and with --chaos runs a seeded schedule that kill -9s workers
and the coordinator itself (respawned with --recover) mid-sweep; it then
audits that every acknowledged job reached `done`, that every result is
byte-identical to a serial run, and that the replica directory converged
back to full strength, writing a JSON report under results/soak/.
`serve` and `coordinate` exit 2 when the address cannot be bound (or the
worker cannot reach its coordinator) and 3 on a protocol failure after
startup, so supervisors can tell configuration from runtime faults; an
unrecoverable journal (bad magic or a format version from a different
build) is a configuration error, exit 1.
";

fn load_kernel(path: &str) -> Result<Kernel, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse_kernel(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_module(path: &str) -> Result<Vec<Kernel>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    gcl::ptx::parse_module(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("classify: missing <kernel.ptx>")?;
    let json = args.iter().any(|a| a == "--json");
    let kernels = load_module(path)?;
    for (i, kernel) in kernels.iter().enumerate() {
        let classes = classify(kernel);
        if json {
            println!("{}", classification_to_json(&classes).render_pretty());
            continue;
        }
        if i > 0 {
            println!();
        }
        let (d, n) = classes.global_load_counts();
        println!(
            "kernel `{}`: {} global loads ({d} deterministic, {n} non-deterministic)\n",
            kernel.name(),
            d + n
        );
        for load in classes.global_loads() {
            let inst = &kernel.insts()[load.pc];
            println!("pc {:>3}  {:<40} {}", load.pc, inst.to_string(), load.class);
            if !load.witness.is_empty() {
                for (j, &pc) in load.witness.iter().enumerate().skip(1) {
                    println!(
                        "        {:indent$}<- {}",
                        "",
                        kernel.insts()[pc].op,
                        indent = j * 2
                    );
                }
            }
        }
    }
    Ok(())
}

/// Encode a [`Classification`] for `gcl classify --json`: one object per
/// kernel with every load's pc, space, class letter, terminal sources and
/// (for N loads) the def-chain witness.
fn classification_to_json(classes: &Classification) -> Json {
    let loads = classes
        .loads()
        .map(|l| {
            Json::obj(vec![
                ("pc", Json::UInt(l.pc as u64)),
                ("space", Json::Str(l.space.to_string())),
                ("class", Json::Str(l.class.letter().to_string())),
                (
                    "sources",
                    Json::Arr(l.sources.iter().map(|s| Json::Str(s.to_string())).collect()),
                ),
                (
                    "witness",
                    Json::Arr(l.witness.iter().map(|&pc| Json::UInt(pc as u64)).collect()),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("kernel", Json::Str(classes.kernel_name().to_string())),
        ("loads", Json::Arr(loads)),
    ])
}

/// Resolve the `gcl analyze` target: a PTX file path, a workload name, or
/// `all` for every benchmark's kernels.
fn analyze_targets(target: &str) -> Result<Vec<Kernel>, String> {
    if target == "all" {
        return Ok(gcl::workloads::all_workloads()
            .iter()
            .flat_map(|w| w.kernels())
            .collect());
    }
    if target.ends_with(".ptx") || Path::new(target).is_file() {
        return load_module(target);
    }
    let workloads = gcl::workloads::all_workloads();
    match workloads.iter().find(|w| w.name() == target) {
        Some(w) => Ok(w.kernels()),
        None => {
            let names: Vec<&str> = workloads.iter().map(|w| w.name()).collect();
            Err(format!(
                "analyze: `{target}` is neither a PTX file nor a workload \
                 (expected a .ptx path, `all`, or one of: {})",
                names.join(", ")
            ))
        }
    }
}

/// Parse a `--grid`/`--block` dimension spec: `X`, `X,Y` or `X,Y,Z`.
fn parse_dim3(s: &str) -> Result<[u32; 3], String> {
    let mut out = [1u32; 3];
    let parts: Vec<&str> = s.split(',').collect();
    if parts.is_empty() || parts.len() > 3 {
        return Err(format!("bad dimension `{s}` (expected X[,Y[,Z]])"));
    }
    for (i, p) in parts.iter().enumerate() {
        out[i] = parse_u64(p)? as u32;
        if out[i] == 0 {
            return Err(format!("bad dimension `{s}` (components must be >= 1)"));
        }
    }
    Ok(out)
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let target = args
        .first()
        .ok_or("analyze: missing <kernel.ptx|workload|all>")?;
    let mut csv = false;
    let mut locality = false;
    let mut critical = false;
    // The locality analysis needs a launch geometry; default to a small
    // multi-CTA launch so inter-CTA sharing is observable.
    let mut block = [64u32, 1, 1];
    let mut grid = [4u32, 1, 1];
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => csv = true,
            "--locality" => locality = true,
            "--critical" => critical = true,
            "--block" => {
                i += 1;
                block = parse_dim3(args.get(i).ok_or("--block needs X[,Y[,Z]]")?)?;
            }
            "--grid" => {
                i += 1;
                grid = parse_dim3(args.get(i).ok_or("--grid needs X[,Y[,Z]]")?)?;
            }
            other => return Err(format!("analyze: unknown option `{other}`")),
        }
        i += 1;
    }
    let opts = AnalyzeOptions {
        locality: locality.then(|| LaunchCtx::new(block, grid)),
        critical,
    };
    let kernels = analyze_targets(target)?;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    if csv {
        println!("{CSV_SCHEMA}");
        println!("{}", Report::csv_header());
    }
    for (i, kernel) in kernels.iter().enumerate() {
        let report = analyze_with(kernel, &opts);
        errors += report.error_count();
        warnings += report.warning_count();
        if csv {
            for row in report.csv_rows() {
                println!("{row}");
            }
            // CSV carries only the loads; keep findings visible on stderr.
            for d in &report.diagnostics {
                eprintln!("{}: {d}", report.kernel);
            }
        } else {
            if i > 0 {
                println!();
            }
            print!("{report}");
        }
    }
    if errors + warnings > 0 {
        Err(format!(
            "analyze: {errors} error(s), {warnings} warning(s) across {} kernel(s)",
            kernels.len()
        ))
    } else {
        Ok(())
    }
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("disasm: missing <kernel.ptx>")?;
    for kernel in load_module(path)? {
        print!("{kernel}");
    }
    Ok(())
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let v = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    v.map_err(|e| format!("bad integer `{s}`: {e}"))
}

enum ParamSpec {
    Alloc(u64),
    Value(u64),
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run: missing <kernel.ptx>")?;
    let kernel = load_kernel(path)?;
    let mut grid = 1u32;
    let mut block = 32u32;
    let mut cfg = GpuConfig::fermi();
    let mut specs: Vec<ParamSpec> = Vec::new();
    let mut launch_flags = false;
    let mut ckpt_every = 0u64;
    let mut ckpt_file: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut trace = false;
    let mut trace_cap = 65_536usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--grid" => {
                i += 1;
                grid = parse_u64(args.get(i).ok_or("--grid needs a value")?)? as u32;
                launch_flags = true;
            }
            "--block" => {
                i += 1;
                block = parse_u64(args.get(i).ok_or("--block needs a value")?)? as u32;
                launch_flags = true;
            }
            "--alloc" => {
                i += 1;
                let bytes = parse_u64(args.get(i).ok_or("--alloc needs a value")?)?;
                specs.push(ParamSpec::Alloc(bytes));
                launch_flags = true;
            }
            "--param" => {
                i += 1;
                specs.push(ParamSpec::Value(parse_u64(
                    args.get(i).ok_or("--param needs a value")?,
                )?));
                launch_flags = true;
            }
            "--memcheck" => cfg.memcheck = true,
            "--sanitize" => cfg.sanitize = true,
            "--trace" => trace = true,
            "--trace-cap" => {
                i += 1;
                trace_cap = parse_u64(args.get(i).ok_or("--trace-cap needs a value")?)? as usize;
                if trace_cap == 0 {
                    return Err("--trace-cap must be at least 1".to_string());
                }
                trace = true;
            }
            "--max-cycles" => {
                i += 1;
                cfg.max_cycles = parse_u64(args.get(i).ok_or("--max-cycles needs a value")?)?;
            }
            "--checkpoint-every" => {
                i += 1;
                ckpt_every = parse_u64(args.get(i).ok_or("--checkpoint-every needs a value")?)?;
                if ckpt_every == 0 {
                    return Err("--checkpoint-every must be at least 1".to_string());
                }
            }
            "--checkpoint-file" => {
                i += 1;
                ckpt_file = Some(
                    args.get(i)
                        .ok_or("--checkpoint-file needs a path")?
                        .to_string(),
                );
            }
            "--resume" => {
                i += 1;
                resume = Some(args.get(i).ok_or("--resume needs a path")?.to_string());
            }
            other => return Err(format!("run: unknown option `{other}`")),
        }
        i += 1;
    }
    if ckpt_every > 0 && ckpt_file.is_none() {
        return Err("--checkpoint-every requires --checkpoint-file".to_string());
    }
    if resume.is_some() && launch_flags {
        return Err(
            "--resume restores the checkpoint's own grid, block, memory and parameters; \
             it cannot be combined with --grid/--block/--alloc/--param"
                .to_string(),
        );
    }
    let mut gpu = Gpu::new(cfg).map_err(|e| e.to_string())?;
    if trace {
        gpu.arm_trace(trace_cap);
    }
    match resume.as_deref() {
        Some(ckpt) => {
            let snap = Snapshot::read_file(ckpt).map_err(|e| e.to_string())?;
            gpu.restore(&snap).map_err(|e| e.to_string())?;
            if !gpu.launch_active() {
                return Err(format!(
                    "`{ckpt}` is an idle snapshot: there is no interrupted launch to resume"
                ));
            }
            eprintln!(
                "(resuming `{}` at cycle {} from {ckpt})",
                gpu.launch_kernel_name().unwrap_or("?"),
                gpu.launch_cycle().unwrap_or(0),
            );
        }
        None => {
            let mut params: Vec<u64> = Vec::new();
            for spec in specs {
                match spec {
                    ParamSpec::Alloc(bytes) => {
                        params.push(gpu.mem().alloc(bytes, 128).map_err(|e| e.to_string())?);
                    }
                    ParamSpec::Value(v) => params.push(v),
                }
            }
            if params.len() != kernel.params().len() {
                return Err(format!(
                    "kernel `{}` takes {} parameters; {} provided (use --alloc/--param)",
                    kernel.name(),
                    kernel.params().len(),
                    params.len()
                ));
            }
            let packed = pack_params(&kernel, &params);
            gpu.launch_begin(&kernel, Dim3::x(grid), Dim3::x(block), &packed)
                .map_err(|e| e.to_string())?;
        }
    }
    let resumed = resume.is_some();
    let stats = drive_launch(&mut gpu, &kernel, ckpt_every, ckpt_file.as_deref())?;
    if resumed {
        println!("kernel `{}` (resumed)", kernel.name());
    } else {
        println!(
            "kernel `{}`: {} CTAs x {} threads",
            kernel.name(),
            grid,
            block
        );
    }
    println!("cycles             {}", stats.cycles);
    println!("warp instructions  {}", stats.sm.warp_insts);
    println!(
        "IPC                {:.3}",
        stats.sm.warp_insts as f64 / stats.cycles as f64
    );
    let p = stats.profiler();
    println!(
        "global load warps  {} (N fraction {:.1}%)",
        p.gld_request,
        stats.nondet_load_fraction() * 100.0
    );
    println!("L1 miss ratio      {:.1}%", p.l1_miss_ratio() * 100.0);
    for class in [LoadClass::Deterministic, LoadClass::NonDeterministic] {
        let a = stats.class(class);
        if a.warp_loads == 0 {
            continue;
        }
        println!(
            "{class:<18} {:.2} req/warp, turnaround {:.1} cycles",
            a.requests_per_warp(),
            a.turnaround.mean()
        );
    }
    if let Some(d) = stats.digest {
        println!("event digest       0x{d:016x}");
    }
    if trace {
        let events = gpu.take_debug_trace().map_or(0, |t| t.events().len());
        println!("trace events       {events}");
        if stats.trace_dropped > 0 {
            eprintln!(
                "warning: debug trace dropped {} event(s) past the {trace_cap}-event buffer \
                 (raise --trace-cap)",
                stats.trace_dropped
            );
        }
    }
    Ok(())
}

/// Step the active launch to completion, writing a checkpoint to `file`
/// every `every` cycles (when `every > 0`), and dumping the hang watchdog's
/// mid-flight snapshot to `file` if the launch wedges.
fn drive_launch(
    gpu: &mut Gpu,
    kernel: &Kernel,
    every: u64,
    file: Option<&str>,
) -> Result<LaunchStats, String> {
    let mut written = 0u64;
    loop {
        match gpu.launch_step(kernel) {
            Ok(Some(stats)) => {
                if written > 0 {
                    let f = file.unwrap_or("?");
                    eprintln!("(wrote {written} checkpoints to {f})");
                }
                return Ok(stats);
            }
            Ok(None) => {
                if every > 0 {
                    if let (Some(f), Some(c)) = (file, gpu.launch_cycle()) {
                        if c > 0 && c % every == 0 {
                            gpu.snapshot().write_file(f).map_err(|e| e.to_string())?;
                            written += 1;
                        }
                    }
                }
            }
            Err(e) => {
                if matches!(e, SimError::Hang(_)) {
                    if let (Some(f), Some(snap)) = (file, gpu.take_hang_snapshot()) {
                        match snap.write_file(f) {
                            Ok(()) => eprintln!("(hang: dumped mid-flight snapshot to {f})"),
                            Err(w) => eprintln!("(hang: snapshot dump failed: {w})"),
                        }
                    }
                }
                return Err(e.to_string());
            }
        }
    }
}

/// Where `gcl suite` persists its run manifest.
const MANIFEST_PATH: &str = "results/run.json";
const MANIFEST_VERSION: u64 = 1;

/// Per-workload progress record in the suite manifest.
struct ManifestEntry {
    name: String,
    /// `pending` | `running` | `retried` | `ok` | `failed`.
    status: String,
    attempts: u64,
    wall_ms: f64,
    /// Wall time the executing fleet worker held the lease (stall
    /// included); 0 for local runs, where `wall_ms` is the same clock.
    worker_wall_ms: f64,
    /// Which fleet worker produced the result (local runs: none).
    worker: Option<String>,
    digest: Option<u64>,
    error: Option<String>,
}

/// The persisted state of one suite run: rewritten after every status
/// change, atomically, so a killed suite leaves a manifest `--resume` can
/// pick up.
struct Manifest {
    scale: String,
    sanitize: bool,
    /// Worker threads of the run that wrote this manifest. Informational:
    /// `--resume` deliberately ignores it — parallelism never changes
    /// results, so resuming `-j1` progress with `-j4` is fine.
    jobs: u64,
    /// Streaming session id of a `--fleet` run; `--fleet --resume`
    /// re-attaches to it and replays missed events.
    session: Option<String>,
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    fn to_json(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("name", Json::Str(e.name.clone())),
                    ("status", Json::Str(e.status.clone())),
                    ("attempts", Json::UInt(e.attempts)),
                    ("wall_ms", Json::Float(e.wall_ms)),
                    ("worker_wall_ms", Json::Float(e.worker_wall_ms)),
                    (
                        "worker",
                        match &e.worker {
                            Some(w) => Json::Str(w.clone()),
                            None => Json::Null,
                        },
                    ),
                    (
                        "digest",
                        match e.digest {
                            Some(d) => Json::Str(format!("0x{d:016x}")),
                            None => Json::Null,
                        },
                    ),
                    (
                        "error",
                        match &e.error {
                            Some(m) => Json::Str(m.clone()),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("version", Json::UInt(MANIFEST_VERSION)),
            ("scale", Json::Str(self.scale.clone())),
            ("sanitize", Json::Bool(self.sanitize)),
            ("jobs", Json::UInt(self.jobs)),
            (
                "session",
                match &self.session {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                },
            ),
            ("workloads", Json::Arr(entries)),
        ])
    }

    fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        // Write-then-rename: a suite killed mid-save never leaves a torn
        // manifest under the final name.
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json().render_pretty())
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {}: {e}", tmp.display()))
    }

    fn load(path: &Path) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            format!(
                "cannot read {}: {e} (run without --resume first)",
                path.display()
            )
        })?;
        let j = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let bad = || format!("{}: not a suite manifest", path.display());
        if j.get("version").and_then(Json::as_u64) != Some(MANIFEST_VERSION) {
            return Err(format!(
                "{}: unsupported manifest version (this build reads {MANIFEST_VERSION})",
                path.display()
            ));
        }
        let scale = j
            .get("scale")
            .and_then(Json::as_str)
            .ok_or_else(bad)?
            .to_string();
        let sanitize = match j.get("sanitize") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(bad()),
        };
        let jobs = j.get("jobs").and_then(Json::as_u64).unwrap_or(1);
        let mut entries = Vec::new();
        for w in j.get("workloads").and_then(Json::as_arr).ok_or_else(bad)? {
            let digest = match w.get("digest").and_then(Json::as_str) {
                Some(s) => Some(
                    u64::from_str_radix(s.trim_start_matches("0x"), 16)
                        .map_err(|_| format!("{}: bad digest `{s}`", path.display()))?,
                ),
                None => None,
            };
            entries.push(ManifestEntry {
                name: w
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(bad)?
                    .to_string(),
                status: w
                    .get("status")
                    .and_then(Json::as_str)
                    .ok_or_else(bad)?
                    .to_string(),
                attempts: w.get("attempts").and_then(Json::as_u64).unwrap_or(0),
                wall_ms: w.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
                worker_wall_ms: w
                    .get("worker_wall_ms")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                worker: w.get("worker").and_then(Json::as_str).map(str::to_string),
                digest,
                error: w.get("error").and_then(Json::as_str).map(str::to_string),
            });
        }
        Ok(Manifest {
            scale,
            sanitize,
            jobs,
            session: j.get("session").and_then(Json::as_str).map(str::to_string),
            entries,
        })
    }
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let mut tiny = false;
    let mut sanitize = false;
    let mut analyze_first = false;
    let mut force_fail: Option<String> = None;
    let mut resume = false;
    let mut retries = 0u64;
    let mut retries_given = false;
    let mut jobs = 1usize;
    let mut jobs_given = false;
    let mut no_cache = false;
    let mut fleet: Option<String> = None;
    let mut replay = false;
    let mut traces_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tiny" => tiny = true,
            "--sanitize" => sanitize = true,
            "--analyze" => analyze_first = true,
            "--resume" => resume = true,
            "--no-cache" => no_cache = true,
            "--replay" => replay = true,
            "--traces" => {
                i += 1;
                traces_dir = Some(args.get(i).ok_or("--traces needs a directory")?.to_string());
            }
            "--force-fail" => {
                i += 1;
                force_fail = Some(
                    args.get(i)
                        .ok_or("--force-fail needs a benchmark name")?
                        .to_string(),
                );
            }
            "--retries" => {
                i += 1;
                retries = parse_u64(args.get(i).ok_or("--retries needs a value")?)?;
                retries_given = true;
            }
            "--jobs" => {
                i += 1;
                jobs = parse_u64(args.get(i).ok_or("--jobs needs a value")?)? as usize;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                jobs_given = true;
            }
            "--fleet" => {
                i += 1;
                fleet = Some(args.get(i).ok_or("--fleet needs HOST:PORT")?.to_string());
            }
            other => return Err(format!("suite: unknown option `{other}`")),
        }
        i += 1;
    }
    if fleet.is_some() && (jobs_given || retries_given || force_fail.is_some() || no_cache) {
        return Err(
            "--fleet sends the suite to a coordinator; --jobs, --retries, --force-fail and \
             --no-cache configure local execution and cannot be combined with it"
                .to_string(),
        );
    }
    if traces_dir.is_some() && !replay {
        return Err("--traces only applies with --replay".to_string());
    }
    if replay && fleet.is_some() {
        return Err(
            "--replay sources results from local trace containers; a fleet worker's trace \
             store is its own configuration (cannot be combined with --fleet)"
                .to_string(),
        );
    }
    if replay && force_fail.is_some() {
        return Err(
            "--force-fail starves a benchmark's cycle budget, which changes its configuration \
             fingerprint — no captured trace can match it (cannot be combined with --replay)"
                .to_string(),
        );
    }
    let workloads = if tiny {
        gcl::workloads::tiny_workloads()
    } else {
        gcl::workloads::all_workloads()
    };
    if let Some(name) = force_fail.as_deref() {
        if !workloads.iter().any(|w| w.name() == name) {
            return Err(format!("--force-fail: no benchmark named `{name}`"));
        }
    }
    if analyze_first {
        // Fail-soft static pre-flight: surface lint/divergence findings for
        // every kernel the suite is about to launch, then run regardless.
        println!("static pre-flight (gcl-analyze):");
        let mut findings = 0usize;
        for w in &workloads {
            for kernel in w.kernels() {
                let report = analyze(&kernel);
                if report.is_clean() {
                    println!("  {:6} `{}`: clean", w.name(), kernel.name());
                } else {
                    findings += report.diagnostics.len();
                    println!(
                        "  {:6} `{}`: {} error(s), {} warning(s)",
                        w.name(),
                        kernel.name(),
                        report.error_count(),
                        report.warning_count()
                    );
                    for d in &report.diagnostics {
                        println!("    {d}");
                    }
                }
            }
        }
        if findings > 0 {
            println!("  ({findings} finding(s) — continuing, pre-flight is advisory)");
        }
        println!();
    }
    let scale = if tiny { "tiny" } else { "full" };
    let manifest_path = Path::new(MANIFEST_PATH);

    // Start from the persisted manifest when resuming; everything not
    // recorded `ok` there (pending, running, retried, failed — and any
    // workload the old manifest never saw) runs again.
    let (prior, prior_session) = if resume {
        let m = Manifest::load(manifest_path)?;
        if m.scale != scale || m.sanitize != sanitize {
            return Err(format!(
                "{}: manifest was written by `suite{}{}` — resume with the same flags \
                 or start over without --resume",
                manifest_path.display(),
                if m.scale == "tiny" { " --tiny" } else { "" },
                if m.sanitize { " --sanitize" } else { "" },
            ));
        }
        (m.entries, m.session)
    } else {
        (Vec::new(), None)
    };
    let mut manifest = Manifest {
        scale: scale.to_string(),
        sanitize,
        jobs: jobs as u64,
        session: None,
        entries: workloads
            .iter()
            .map(|w| {
                prior
                    .iter()
                    .find(|e| e.name == w.name() && e.status == "ok")
                    .map(|e| ManifestEntry {
                        name: e.name.clone(),
                        status: "ok".to_string(),
                        attempts: e.attempts,
                        wall_ms: e.wall_ms,
                        worker_wall_ms: e.worker_wall_ms,
                        worker: e.worker.clone(),
                        digest: e.digest,
                        error: None,
                    })
                    .unwrap_or_else(|| ManifestEntry {
                        name: w.name().to_string(),
                        status: "pending".to_string(),
                        attempts: 0,
                        wall_ms: 0.0,
                        worker_wall_ms: 0.0,
                        worker: None,
                        digest: None,
                        error: None,
                    })
            })
            .collect(),
    };
    manifest.save(manifest_path)?;

    // Build one JobSpec per workload still to run; `spec_wi[i]` maps spec
    // index back to workload index (ascending, so the result walk below can
    // merge skipped and executed rows in workload order).
    let mut spec_wi: Vec<usize> = Vec::new();
    let mut specs: Vec<JobSpec> = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        if manifest.entries[wi].status == "ok" {
            continue;
        }
        let mut cfg = if tiny {
            GpuConfig::small()
        } else {
            GpuConfig::fermi()
        };
        if force_fail.as_deref() == Some(w.name()) {
            // Starve the cycle budget so this benchmark times out: exercises
            // the fail-soft path without corrupting any input.
            cfg.max_cycles = 50;
        }
        cfg.sanitize = sanitize;
        spec_wi.push(wi);
        specs.push(JobSpec::new(w.name(), tiny, cfg));
    }

    let results = if let Some(addr) = fleet.as_deref() {
        run_fleet_suite(
            addr,
            &specs,
            &spec_wi,
            &mut manifest,
            manifest_path,
            prior_session.as_deref(),
        )?
    } else {
        let pool_cfg = PoolConfig {
            jobs,
            retries,
            cache: if no_cache {
                None
            } else {
                Some(ResultCache::default_dir())
            },
            traces: replay.then(|| match traces_dir.as_deref() {
                Some(dir) => TraceStore::new(dir),
                None => TraceStore::default_dir(),
            }),
            ..PoolConfig::default()
        };
        // The pool delivers every event on this thread, so this closure is
        // the manifest's single writer — workers never touch
        // results/run.json.
        let mut save_err: Option<String> = None;
        let results = run_pool(&specs, &pool_cfg, |event| {
            match event {
                JobEvent::Started { index } => {
                    manifest.entries[spec_wi[*index]].status = "running".to_string();
                }
                JobEvent::Retried {
                    index,
                    attempt,
                    error,
                    ..
                } => {
                    let e = &mut manifest.entries[spec_wi[*index]];
                    e.status = "retried".to_string();
                    e.attempts = *attempt;
                    e.error = Some(error.clone());
                }
                JobEvent::Finished { index, result } => {
                    let e = &mut manifest.entries[spec_wi[*index]];
                    e.attempts = result.attempts;
                    match &result.outcome {
                        Ok(out) => {
                            e.status = "ok".to_string();
                            e.wall_ms = out.wall_ms;
                            e.digest = out.stats.digest;
                            e.error = None;
                        }
                        Err(err) => {
                            e.status = "failed".to_string();
                            e.error = Some(err.to_string());
                        }
                    }
                }
            }
            if let Err(e) = manifest.save(manifest_path) {
                save_err.get_or_insert(e);
            }
        });
        if let Some(e) = save_err {
            return Err(e);
        }
        results
    };

    // Results come back ordered by submission index regardless of which
    // worker finished first, so this table is identical for any --jobs.
    let total = workloads.len();
    let mut failures: Vec<(&'static str, String)> = Vec::new();
    let mut skipped = 0usize;
    let mut cached = 0usize;
    println!(
        "{:6} {:7} {:>9} {:>11} {:>9} {:>6} {:>9}  outcome",
        "name", "cat", "cycles", "warp insts", "gld", "N%", "L1 miss%"
    );
    let mut ri = 0usize;
    for (wi, w) in workloads.iter().enumerate() {
        if spec_wi.get(ri) != Some(&wi) {
            let digest = match manifest.entries[wi].digest {
                Some(d) => format!("  0x{d:016x}"),
                None => String::new(),
            };
            println!(
                "{:6} {:7} {:>9} {:>11} {:>9} {:>6} {:>9}  skipped (ok in manifest){digest}",
                w.name(),
                w.category().to_string(),
                "-",
                "-",
                "-",
                "-",
                "-",
            );
            skipped += 1;
            continue;
        }
        let result = &results[ri];
        ri += 1;
        match &result.outcome {
            Ok(out) => {
                let p = out.stats.profiler();
                let digest = match out.stats.digest {
                    Some(d) => format!("  0x{d:016x}"),
                    None => String::new(),
                };
                let retried = if result.attempts > 1 {
                    format!(" (attempt {})", result.attempts)
                } else {
                    String::new()
                };
                let from_cache = if out.cached {
                    cached += 1;
                    " (cached)"
                } else {
                    ""
                };
                println!(
                    "{:6} {:7} {:>9} {:>11} {:>9} {:>5.1} {:>9.1}  ok{digest}{retried}{from_cache}",
                    w.name(),
                    w.category().to_string(),
                    out.stats.cycles,
                    out.stats.sm.warp_insts,
                    p.gld_request,
                    out.stats.nondet_load_fraction() * 100.0,
                    p.l1_miss_ratio() * 100.0,
                );
            }
            Err(e) => {
                let msg = e.to_string();
                let first = msg.lines().next().unwrap_or("failed").to_string();
                println!(
                    "{:6} {:7} {:>9} {:>11} {:>9} {:>6} {:>9}  FAILED: {first}",
                    w.name(),
                    w.category().to_string(),
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                );
                failures.push((w.name(), msg));
            }
        }
    }
    if failures.is_empty() {
        let mut notes: Vec<String> = Vec::new();
        if skipped > 0 {
            notes.push(format!("{skipped} from manifest"));
        }
        if cached > 0 {
            notes.push(format!("{cached} from cache"));
        }
        if notes.is_empty() {
            println!("\n{total} of {total} benchmarks completed");
        } else {
            println!(
                "\n{total} of {total} benchmarks completed ({})",
                notes.join(", ")
            );
        }
        Ok(())
    } else {
        for (name, msg) in &failures {
            eprintln!("\n`{name}` failed:\n{msg}");
        }
        Err(format!(
            "{} of {total} benchmarks failed (re-run with `gcl suite{}{} --resume --retries N` \
             to retry just the failures)",
            failures.len(),
            if tiny { " --tiny" } else { "" },
            if sanitize { " --sanitize" } else { "" },
        ))
    }
}

/// Run the suite's remaining specs through a fleet coordinator over a
/// streaming session: submit everything tagged with the session id, then
/// follow the coordinator's event feed (queued / leased / reassigned /
/// done / failed, plus depth heartbeats) instead of polling `result`. On a
/// terminal event the full checksummed payload is fetched once. The
/// session id is persisted in the manifest, so `--fleet --resume`
/// re-attaches and replays whatever the client missed while away. The
/// manifest is updated exactly as the local pool path does.
fn run_fleet_suite(
    addr: &str,
    specs: &[JobSpec],
    spec_wi: &[usize],
    manifest: &mut Manifest,
    manifest_path: &Path,
    prior_session: Option<&str>,
) -> Result<Vec<JobResult>, String> {
    let mut session = SessionClient::open(
        ClientOptions {
            addr: addr.to_string(),
            // Result frames carry the full hex-encoded LaunchStats.
            max_frame: 1024 * 1024,
            ..ClientOptions::default()
        },
        prior_session,
    )?;
    if prior_session.is_some() {
        eprintln!(
            "gcl suite: re-attached to session {}{}",
            session.id(),
            if session.truncated() {
                " (some events were already evicted from the log)"
            } else {
                ""
            }
        );
    }
    manifest.session = Some(session.id().to_string());
    // Submit everything up front; lifecycle events flow back on the
    // session stream. `id_spec` routes a terminal event back to the spec
    // that owns the job.
    let mut id_spec: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, spec) in specs.iter().enumerate() {
        let submit = session.submit(&spec.workload, spec.tiny, spec.cfg.sanitize)?;
        id_spec.insert(submit.id, i);
        manifest.entries[spec_wi[i]].status = "running".to_string();
    }
    manifest.save(manifest_path)?;
    let mut results: Vec<Option<JobResult>> = (0..specs.len()).map(|_| None).collect();
    let mut pending = results.iter().filter(|r| r.is_none()).count();
    // The stream replaces polling, but not deadlines: a fleet that goes
    // quiet for this long (no events, no heartbeats) has lost its
    // coordinator.
    let quiet_limit = std::time::Duration::from_secs(600);
    let mut last_event = std::time::Instant::now();
    while pending > 0 {
        let Some(event) = session.next_event(std::time::Duration::from_millis(500))? else {
            if last_event.elapsed() >= quiet_limit {
                return Err(format!(
                    "no events from {addr} for {}s — coordinator lost?",
                    quiet_limit.as_secs()
                ));
            }
            continue;
        };
        last_event = std::time::Instant::now();
        let kind = event.get("event").and_then(Json::as_str).unwrap_or("");
        let job = event.get("job").and_then(Json::as_u64);
        match kind {
            "leased" => {
                if let (Some(id), Some(worker)) = (job, event.get("worker").and_then(Json::as_str))
                {
                    if let Some(&i) = id_spec.get(&id) {
                        eprintln!("gcl suite: `{}` leased to {worker}", specs[i].workload);
                    }
                }
            }
            "reassigned" => {
                if let Some(&i) = job.as_ref().and_then(|id| id_spec.get(id)) {
                    eprintln!(
                        "gcl suite: `{}` reassigned ({})",
                        specs[i].workload,
                        event.get("reason").and_then(Json::as_str).unwrap_or("?"),
                    );
                }
            }
            "done" | "failed" => {
                let Some(id) = job else { continue };
                let Some(&i) = id_spec.get(&id) else { continue };
                if results[i].is_some() {
                    continue; // replayed event after a resume
                }
                let spec = &specs[i];
                // Events are notifications; the payload (full stats +
                // checksum) comes from one `result` call per job.
                let response = session.result(id)?;
                let attempts = response.get("assigns").and_then(Json::as_u64).unwrap_or(1);
                let outcome = match response.get("state").and_then(Json::as_str) {
                    Some("done") => {
                        let hex = response
                            .get("stats")
                            .and_then(Json::as_str)
                            .ok_or("fleet result missing stats payload")?;
                        let sum = response
                            .get("sum")
                            .and_then(Json::as_str)
                            .ok_or("fleet result missing checksum")?;
                        let stats =
                            gcl::exec::fleet::decode_stats_payload(hex, sum).map_err(|e| {
                                format!("fleet result for `{}` corrupt: {e}", spec.workload)
                            })?;
                        Ok(JobOutput {
                            stats,
                            wall_ms: response
                                .get("wall_ms")
                                .and_then(Json::as_f64)
                                .unwrap_or(0.0),
                            cached: response.get("cached").and_then(Json::as_bool) == Some(true),
                        })
                    }
                    _ => Err(ExecError::Remote(
                        response
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown fleet failure")
                            .to_string(),
                    )),
                };
                let e = &mut manifest.entries[spec_wi[i]];
                e.attempts = attempts;
                e.worker_wall_ms = response
                    .get("worker_wall_ms")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                e.worker = response
                    .get("worker")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                match &outcome {
                    Ok(out) => {
                        e.status = "ok".to_string();
                        e.wall_ms = out.wall_ms;
                        e.digest = out.stats.digest;
                        e.error = None;
                    }
                    Err(err) => {
                        e.status = "failed".to_string();
                        e.error = Some(err.to_string());
                    }
                }
                manifest.save(manifest_path)?;
                results[i] = Some(JobResult {
                    spec: spec.clone(),
                    outcome,
                    attempts,
                });
                pending -= 1;
            }
            _ => {} // queued acks, depth heartbeats
        }
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("all settled"))
        .collect())
}

/// Shared flag parse for `gcl trace` / `gcl replay`: target workload(s),
/// scale, sanitize, the store directory, and command-specific extras.
struct TraceCli {
    specs: Vec<JobSpec>,
    store: TraceStore,
    verify: bool,
}

fn parse_trace_args(
    cmd: &str,
    args: &[String],
    dir_flag: &str,
    default_dir: &str,
    allow_verify: bool,
) -> Result<TraceCli, String> {
    let target = args
        .first()
        .ok_or_else(|| format!("{cmd}: missing <workload|all>"))?;
    let mut tiny = false;
    let mut sanitize = false;
    let mut dir: Option<String> = None;
    let mut verify = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--tiny" => tiny = true,
            "--sanitize" => sanitize = true,
            "--verify" if allow_verify => verify = true,
            flag if flag == dir_flag => {
                i += 1;
                dir = Some(
                    args.get(i)
                        .ok_or_else(|| format!("{dir_flag} needs a directory"))?
                        .to_string(),
                );
            }
            other => return Err(format!("{cmd}: unknown option `{other}`")),
        }
        i += 1;
    }
    let workloads = if tiny {
        gcl::workloads::tiny_workloads()
    } else {
        gcl::workloads::all_workloads()
    };
    let selected: Vec<String> = if target == "all" {
        workloads.iter().map(|w| w.name().to_string()).collect()
    } else if workloads.iter().any(|w| w.name() == target.as_str()) {
        vec![target.to_string()]
    } else {
        let names: Vec<&str> = workloads.iter().map(|w| w.name()).collect();
        return Err(format!(
            "{cmd}: no workload named `{target}` (expected `all` or one of: {})",
            names.join(", ")
        ));
    };
    let specs = selected
        .into_iter()
        .map(|name| {
            let mut cfg = if tiny {
                GpuConfig::small()
            } else {
                GpuConfig::fermi()
            };
            cfg.sanitize = sanitize;
            JobSpec::new(name, tiny, cfg)
        })
        .collect();
    Ok(TraceCli {
        specs,
        store: TraceStore::new(dir.as_deref().unwrap_or(default_dir)),
        verify,
    })
}

/// Map a trace-layer job failure onto the exit-code contract: unreadable
/// container → 2, version/fingerprint mismatch → 3 (including a replay the
/// simulator itself rejects), anything else → 1.
fn trace_exit(e: ExecError) -> CliError {
    let msg = e.to_string();
    match e {
        ExecError::TraceUnreadable { .. } => (EXIT_TRACE_UNREADABLE, msg),
        ExecError::TraceMismatch { .. } | ExecError::Sim(SimError::Replay(_)) => {
            (EXIT_TRACE_MISMATCH, msg)
        }
        _ => (1, msg),
    }
}

fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    let cli = parse_trace_args("trace", args, "--out", "results/traces", false).map_err(fail)?;
    println!(
        "{:6} {:>9} {:>9} {:>11} {:>9}  container",
        "name", "launches", "records", "bytes", "wall ms"
    );
    for spec in &cli.specs {
        let t0 = std::time::Instant::now();
        let (stats, summary) = cli.store.capture(spec).map_err(trace_exit)?;
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let digest = match stats.digest {
            Some(d) => format!("  digest 0x{d:016x}"),
            None => String::new(),
        };
        println!(
            "{:6} {:>9} {:>9} {:>11} {:>9.1}  {}{digest}",
            spec.workload,
            summary.launches,
            summary.records,
            summary.bytes,
            wall_ms,
            summary.path.display(),
        );
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), CliError> {
    let cli = parse_trace_args("replay", args, "--in", "results/traces", true).map_err(fail)?;
    println!(
        "{:6} {:>9} {:>11} {:>9}  outcome",
        "name", "cycles", "warp insts", "wall ms"
    );
    let mut mismatches: Vec<String> = Vec::new();
    for spec in &cli.specs {
        let t0 = std::time::Instant::now();
        let stats = cli.store.replay(spec).map_err(trace_exit)?;
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let digest = match stats.digest {
            Some(d) => format!("  digest 0x{d:016x}"),
            None => String::new(),
        };
        let verified = if cli.verify {
            // Execution-driven reference: the workload simulated afresh
            // under the identical configuration must agree with the replay
            // in full — digest, cycles, every counter.
            let w = spec.find_workload().map_err(trace_exit)?;
            let run = Gpu::new(spec.cfg.clone())
                .and_then(|mut gpu| w.run(&mut gpu))
                .map_err(|e| fail(e.to_string()))?;
            if run.stats == stats {
                "  verified"
            } else {
                mismatches.push(format!(
                    "`{}`: replay disagrees with execution (replay {} cycles, digest {:?}; \
                     execution {} cycles, digest {:?})",
                    spec.workload, stats.cycles, stats.digest, run.stats.cycles, run.stats.digest
                ));
                "  MISMATCH"
            }
        } else {
            ""
        };
        println!(
            "{:6} {:>9} {:>11} {:>9.1}  replayed{digest}{verified}",
            spec.workload, stats.cycles, stats.sm.warp_insts, wall_ms,
        );
    }
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(fail(mismatches.join("\n")))
    }
}

/// Parsed `gcl serve` flags, before deciding daemon vs. fleet worker.
struct ServeCli {
    opts: ServeOptions,
    no_cache: bool,
    join: Option<String>,
    name: Option<String>,
    inject: FleetInject,
    connect_retries: Option<u64>,
    rejoin: bool,
    addr_given: bool,
    queue_cap_given: bool,
}

fn parse_serve_args(args: &[String]) -> Result<ServeCli, String> {
    let mut cli = ServeCli {
        opts: ServeOptions::default(),
        no_cache: false,
        join: None,
        name: None,
        inject: FleetInject::none(),
        connect_retries: None,
        rejoin: false,
        addr_given: false,
        queue_cap_given: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                cli.opts.addr = args.get(i).ok_or("--addr needs HOST:PORT")?.to_string();
                cli.addr_given = true;
            }
            "--jobs" => {
                i += 1;
                cli.opts.jobs = parse_u64(args.get(i).ok_or("--jobs needs a value")?)? as usize;
            }
            "--queue-cap" => {
                i += 1;
                cli.opts.queue_cap =
                    parse_u64(args.get(i).ok_or("--queue-cap needs a value")?)? as usize;
                cli.queue_cap_given = true;
            }
            "--no-cache" => cli.no_cache = true,
            "--join" => {
                i += 1;
                cli.join = Some(args.get(i).ok_or("--join needs HOST:PORT")?.to_string());
            }
            "--name" => {
                i += 1;
                cli.name = Some(args.get(i).ok_or("--name needs a value")?.to_string());
            }
            "--inject" => {
                i += 1;
                cli.inject = FleetInject::parse(args.get(i).ok_or("--inject needs a chaos spec")?)?;
            }
            "--connect-retries" => {
                i += 1;
                cli.connect_retries = Some(parse_u64(
                    args.get(i).ok_or("--connect-retries needs a value")?,
                )?);
            }
            "--rejoin" => cli.rejoin = true,
            other => return Err(format!("serve: unknown option `{other}`")),
        }
        i += 1;
    }
    Ok(cli)
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let cli = parse_serve_args(args).map_err(fail)?;
    if let Some(coord) = cli.join {
        // Fleet worker: dial the coordinator instead of binding a port.
        if cli.addr_given || cli.queue_cap_given {
            return Err(fail(
                "--join makes this a fleet worker; --addr and --queue-cap belong to the \
                 coordinator"
                    .to_string(),
            ));
        }
        let mut worker_opts = WorkerOptions {
            coord,
            name: cli
                .name
                .unwrap_or_else(|| format!("worker-{}", std::process::id())),
            slots: cli.opts.jobs.max(1),
            cache: if cli.no_cache {
                None
            } else {
                Some(ResultCache::default_dir())
            },
            inject: cli.inject,
            rejoin: cli.rejoin,
            ..WorkerOptions::default()
        };
        if let Some(retries) = cli.connect_retries {
            worker_opts.connect_retries = retries;
        }
        let label = worker_opts.name.clone();
        eprintln!(
            "gcl serve: joining fleet at {} as `{label}` ({} slot(s))",
            worker_opts.coord, worker_opts.slots
        );
        // A worker that cannot reach its coordinator is the dial-side
        // analogue of a bind failure; everything after the handshake is a
        // protocol error.
        let report = run_worker(worker_opts).map_err(|e| {
            if e.contains("cannot reach coordinator") {
                (EXIT_BIND, e)
            } else {
                (EXIT_NET, e)
            }
        })?;
        eprintln!(
            "gcl serve: `{label}` done ({} job(s) run{}{}{})",
            report.jobs_run,
            if report.killed { ", killed" } else { "" },
            if report.partitioned {
                ", partitioned"
            } else {
                ""
            },
            if report.rejoins > 0 {
                format!(", {} rejoin(s)", report.rejoins)
            } else {
                String::new()
            },
        );
        return Ok(());
    }
    if cli.name.is_some() || !cli.inject.is_clean() {
        return Err(fail(
            "--name and --inject only apply to fleet workers (--join)".to_string(),
        ));
    }
    if cli.connect_retries.is_some() {
        return Err(fail(
            "--connect-retries only applies to fleet workers (--join)".to_string(),
        ));
    }
    if cli.rejoin {
        return Err(fail(
            "--rejoin only applies to fleet workers (--join)".to_string(),
        ));
    }
    let mut opts = cli.opts;
    if !cli.no_cache {
        opts.cache = Some(ResultCache::default_dir());
    }
    let (jobs, queue_cap) = (opts.jobs, opts.queue_cap);
    let server = Server::bind(opts).map_err(serve_exit)?;
    eprintln!(
        "gcl serve: listening on {} ({jobs} worker(s), queue cap {queue_cap})",
        server.addr().map_err(serve_exit)?
    );
    server.run().map_err(serve_exit)
}

fn cmd_coordinate(args: &[String]) -> Result<(), CliError> {
    let opts = parse_coordinate_args(args).map_err(fail)?;
    let summary = format!(
        "queue cap {}, lease {} ms, heartbeat {} ms (timeout {} ms), replicas {}, \
         session inflight cap {}{}{}",
        opts.queue_cap,
        opts.lease_ms,
        opts.heartbeat_ms,
        opts.heartbeat_timeout_ms,
        opts.replicas,
        opts.session_inflight_cap,
        match &opts.journal {
            Some(p) => format!(
                ", journal {}{}",
                p.display(),
                if opts.recover { " (recover)" } else { "" }
            ),
            None => String::new(),
        },
        if opts.rebalance_ms > 0 {
            format!(", rebalance every {} ms", opts.rebalance_ms)
        } else {
            String::new()
        },
    );
    let coordinator = Coordinator::bind(opts).map_err(serve_exit)?;
    eprintln!(
        "gcl coordinate: listening on {} ({summary})",
        coordinator.addr().map_err(serve_exit)?
    );
    coordinator.run().map_err(serve_exit)
}

fn parse_coordinate_args(args: &[String]) -> Result<CoordinatorOptions, String> {
    let mut opts = CoordinatorOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                opts.addr = args.get(i).ok_or("--addr needs HOST:PORT")?.to_string();
            }
            "--queue-cap" => {
                i += 1;
                opts.queue_cap =
                    parse_u64(args.get(i).ok_or("--queue-cap needs a value")?)? as usize;
            }
            "--lease-ms" => {
                i += 1;
                opts.lease_ms = parse_u64(args.get(i).ok_or("--lease-ms needs a value")?)?;
            }
            "--heartbeat-ms" => {
                i += 1;
                opts.heartbeat_ms = parse_u64(args.get(i).ok_or("--heartbeat-ms needs a value")?)?;
            }
            "--heartbeat-timeout-ms" => {
                i += 1;
                opts.heartbeat_timeout_ms =
                    parse_u64(args.get(i).ok_or("--heartbeat-timeout-ms needs a value")?)?;
            }
            "--replicas" => {
                i += 1;
                opts.replicas = parse_u64(args.get(i).ok_or("--replicas needs a value")?)? as usize;
            }
            "--probe-timeout-ms" => {
                i += 1;
                opts.probe_timeout_ms =
                    parse_u64(args.get(i).ok_or("--probe-timeout-ms needs a value")?)?;
            }
            "--session-inflight-cap" => {
                i += 1;
                opts.session_inflight_cap =
                    parse_u64(args.get(i).ok_or("--session-inflight-cap needs a value")?)?;
            }
            "--journal" => {
                i += 1;
                opts.journal = Some(std::path::PathBuf::from(
                    args.get(i).ok_or("--journal needs a path")?,
                ));
            }
            "--recover" => opts.recover = true,
            "--rebalance-ms" => {
                i += 1;
                opts.rebalance_ms = parse_u64(args.get(i).ok_or("--rebalance-ms needs a value")?)?;
            }
            "--journal-compact-bytes" => {
                i += 1;
                opts.journal_compact_bytes =
                    parse_u64(args.get(i).ok_or("--journal-compact-bytes needs a value")?)?;
            }
            "--chaos-verbs" => opts.chaos_verbs = true,
            other => return Err(format!("coordinate: unknown option `{other}`")),
        }
        i += 1;
    }
    Ok(opts)
}

fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    let mut opts = LoadgenOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                opts.addr = args.get(i).ok_or("--addr needs HOST:PORT")?.to_string();
            }
            "--submitters" => {
                i += 1;
                opts.submitters =
                    parse_u64(args.get(i).ok_or("--submitters needs a value")?)? as usize;
            }
            "--duration-ms" => {
                i += 1;
                opts.duration_ms = parse_u64(args.get(i).ok_or("--duration-ms needs a value")?)?;
            }
            "--think-ms" => {
                i += 1;
                opts.think_ms = parse_u64(args.get(i).ok_or("--think-ms needs a value")?)?;
            }
            "--distinct" => {
                i += 1;
                opts.distinct = parse_u64(args.get(i).ok_or("--distinct needs a value")?)? as usize;
            }
            "--sample-ms" => {
                i += 1;
                opts.sample_ms = parse_u64(args.get(i).ok_or("--sample-ms needs a value")?)?;
            }
            "--seed" => {
                i += 1;
                opts.seed = parse_u64(args.get(i).ok_or("--seed needs a value")?)?;
            }
            "--workloads" => {
                i += 1;
                opts.workloads = args
                    .get(i)
                    .ok_or("--workloads needs a comma-separated list")?
                    .split(',')
                    .filter(|w| !w.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--full" => opts.tiny = false,
            "--out" => {
                i += 1;
                opts.out = std::path::PathBuf::from(args.get(i).ok_or("--out needs a path")?);
            }
            other => return Err(format!("loadgen: unknown option `{other}`")),
        }
        i += 1;
    }
    eprintln!(
        "gcl loadgen: {} submitter(s) against {} for {} ms (think {} ms, {} key variant(s))",
        opts.submitters, opts.addr, opts.duration_ms, opts.think_ms, opts.distinct
    );
    let report = run_loadgen(&opts)?;
    println!(
        "loadgen: {} submits ({} accepted, {} shed, {} errors), {} finished",
        report.submits, report.accepted, report.sheds, report.errors, report.finished
    );
    println!(
        "loadgen: submit latency p50 <= {} us, p99 <= {} us over {} sample(s)",
        report.p50_us, report.p99_us, report.samples
    );
    println!("loadgen: time series written to {}", opts.out.display());
    Ok(())
}

fn cmd_soak(args: &[String]) -> Result<(), String> {
    let mut opts = SoakOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                opts.addr = args.get(i).ok_or("--addr needs HOST:PORT")?.to_string();
            }
            "--workers" => {
                i += 1;
                opts.workers = parse_u64(args.get(i).ok_or("--workers needs a value")?)? as usize;
            }
            "--slots" => {
                i += 1;
                opts.slots = parse_u64(args.get(i).ok_or("--slots needs a value")?)? as usize;
            }
            "--duration-ms" => {
                i += 1;
                opts.duration_ms = parse_u64(args.get(i).ok_or("--duration-ms needs a value")?)?;
            }
            "--chaos" => opts.chaos = true,
            "--kill-coordinator-ms" => {
                i += 1;
                opts.kill_coordinator_ms =
                    parse_u64(args.get(i).ok_or("--kill-coordinator-ms needs a value")?)?;
            }
            "--kill-worker-ms" => {
                i += 1;
                opts.kill_worker_ms =
                    parse_u64(args.get(i).ok_or("--kill-worker-ms needs a value")?)?;
            }
            "--submitters" => {
                i += 1;
                opts.submitters =
                    parse_u64(args.get(i).ok_or("--submitters needs a value")?)? as usize;
            }
            "--think-ms" => {
                i += 1;
                opts.think_ms = parse_u64(args.get(i).ok_or("--think-ms needs a value")?)?;
            }
            "--distinct" => {
                i += 1;
                opts.distinct = parse_u64(args.get(i).ok_or("--distinct needs a value")?)? as usize;
            }
            "--workloads" => {
                i += 1;
                opts.workloads = args
                    .get(i)
                    .ok_or("--workloads needs a comma-separated list")?
                    .split(',')
                    .filter(|w| !w.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--seed" => {
                i += 1;
                opts.seed = parse_u64(args.get(i).ok_or("--seed needs a value")?)?;
            }
            "--replicas" => {
                i += 1;
                opts.replicas = parse_u64(args.get(i).ok_or("--replicas needs a value")?)? as usize;
            }
            "--rebalance-ms" => {
                i += 1;
                opts.rebalance_ms = parse_u64(args.get(i).ok_or("--rebalance-ms needs a value")?)?;
            }
            "--journal" => {
                i += 1;
                opts.journal =
                    std::path::PathBuf::from(args.get(i).ok_or("--journal needs a path")?);
            }
            "--out" => {
                i += 1;
                opts.out = std::path::PathBuf::from(args.get(i).ok_or("--out needs a path")?);
            }
            other => return Err(format!("soak: unknown option `{other}`")),
        }
        i += 1;
    }
    eprintln!(
        "gcl soak: {} worker(s) x {} slot(s) for {} ms{}",
        opts.workers,
        opts.slots.max(1),
        opts.duration_ms,
        if opts.chaos {
            format!(
                " under chaos (kill coordinator every {} ms, a worker every {} ms)",
                opts.kill_coordinator_ms, opts.kill_worker_ms
            )
        } else {
            String::new()
        },
    );
    let report = run_soak(&opts)?;
    println!(
        "soak: {} submit(s), {} acked, {} audited done, {} spec(s) serial-identical",
        report.submits, report.acked, report.audited, report.digest_matches
    );
    println!(
        "soak: {} coordinator kill(s), {} worker kill(s) survived; \
         {} lease(s) resumed, {} rebalance(s)",
        report.coordinator_kills, report.worker_kills, report.resumed, report.rebalances
    );
    println!(
        "soak: replica directory converged at {}/{} keys full; report written to {}",
        report.replica_full,
        report.replica_keys,
        opts.out.display()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::parse_u64;

    #[test]
    fn integers_parse_in_both_bases() {
        assert_eq!(parse_u64("42").unwrap(), 42);
        assert_eq!(parse_u64("0x2a").unwrap(), 42);
        assert!(parse_u64("nope").is_err());
    }
}
