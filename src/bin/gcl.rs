//! `gcl` — command-line front end for the toolkit.
//!
//! ```text
//! gcl classify <kernel.ptx> [--json]       classify loads, print witnesses
//! gcl disasm   <kernel.ptx>                parse and re-print (normalize)
//! gcl run      <kernel.ptx> --grid G --block B [--alloc BYTES | --param V]...
//!              [--memcheck] [--sanitize] [--max-cycles N]
//!                                          simulate one launch, print stats
//! gcl suite    [--tiny] [--sanitize] [--force-fail NAME]
//!                                          run the 15-benchmark suite
//! ```

use gcl::prelude::*;
use gcl_core::{AddressSource, Classification, LoadClass};
use gcl_stats::Json;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("classify") => cmd_classify(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("suite") => cmd_suite(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
gcl — GPU critical-load classification and simulation

USAGE:
  gcl classify <kernel.ptx> [--json]
  gcl disasm   <kernel.ptx>
  gcl run      <kernel.ptx> --grid G --block B [--alloc BYTES | --param VALUE]...
               [--memcheck] [--sanitize] [--max-cycles N]
  gcl suite    [--tiny] [--sanitize] [--force-fail NAME]

`classify` runs the paper's backward-dataflow analysis and prints each
global load's class and (for non-deterministic loads) the def-chain back to
the tainting load. `run` simulates one launch on the Fermi configuration;
each --alloc allocates a zeroed device buffer and passes its address as the
next kernel parameter, each --param passes a raw integer. With --memcheck,
out-of-bounds device accesses abort the launch with a fault report naming
the load's class and address def-chain. With --sanitize, the simsan runtime
sanitizer checks request conservation through the memory hierarchy and
shared-memory races between warps, and prints the launch's event digest.
`suite` keeps going when a benchmark fails, prints a per-benchmark outcome
table, and exits nonzero only if something failed; --force-fail caps the
named benchmark's cycle budget to exercise that path; --sanitize runs each
benchmark twice and fails it if the two event digests diverge.
";

fn load_kernel(path: &str) -> Result<Kernel, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse_kernel(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_module(path: &str) -> Result<Vec<Kernel>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    gcl::ptx::parse_module(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("classify: missing <kernel.ptx>")?;
    let json = args.iter().any(|a| a == "--json");
    let kernels = load_module(path)?;
    for (i, kernel) in kernels.iter().enumerate() {
        let classes = classify(kernel);
        if json {
            println!("{}", classification_to_json(&classes).render_pretty());
            continue;
        }
        if i > 0 {
            println!();
        }
        let (d, n) = classes.global_load_counts();
        println!(
            "kernel `{}`: {} global loads ({d} deterministic, {n} non-deterministic)\n",
            kernel.name(),
            d + n
        );
        for load in classes.global_loads() {
            let inst = &kernel.insts()[load.pc];
            println!("pc {:>3}  {:<40} {}", load.pc, inst.to_string(), load.class);
            if !load.witness.is_empty() {
                for (j, &pc) in load.witness.iter().enumerate().skip(1) {
                    println!(
                        "        {:indent$}<- {}",
                        "",
                        kernel.insts()[pc].op,
                        indent = j * 2
                    );
                }
            }
        }
    }
    Ok(())
}

/// Encode a [`Classification`] for `gcl classify --json`: one object per
/// kernel with every load's pc, space, class letter, terminal sources and
/// (for N loads) the def-chain witness.
fn classification_to_json(classes: &Classification) -> Json {
    let loads = classes
        .loads()
        .map(|l| {
            Json::obj(vec![
                ("pc", Json::UInt(l.pc as u64)),
                ("space", Json::Str(l.space.to_string())),
                ("class", Json::Str(l.class.letter().to_string())),
                (
                    "sources",
                    Json::Arr(
                        l.sources
                            .iter()
                            .map(|s| Json::Str(source_label(s)))
                            .collect(),
                    ),
                ),
                (
                    "witness",
                    Json::Arr(l.witness.iter().map(|&pc| Json::UInt(pc as u64)).collect()),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("kernel", Json::Str(classes.kernel_name().to_string())),
        ("loads", Json::Arr(loads)),
    ])
}

fn source_label(s: &AddressSource) -> String {
    match s {
        AddressSource::Param { pc } => format!("param@{pc}"),
        AddressSource::Const { pc } => format!("const@{pc}"),
        AddressSource::Special(sp) => sp.to_string(),
        AddressSource::Immediate => "imm".to_string(),
        AddressSource::MemoryLoad { pc, space } => format!("load.{space}@{pc}"),
        AddressSource::AtomicResult { pc } => format!("atom@{pc}"),
        AddressSource::Uninitialized { reg } => format!("uninit:{reg}"),
    }
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("disasm: missing <kernel.ptx>")?;
    for kernel in load_module(path)? {
        print!("{kernel}");
    }
    Ok(())
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let v = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    v.map_err(|e| format!("bad integer `{s}`: {e}"))
}

enum ParamSpec {
    Alloc(u64),
    Value(u64),
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run: missing <kernel.ptx>")?;
    let kernel = load_kernel(path)?;
    let mut grid = 1u32;
    let mut block = 32u32;
    let mut cfg = GpuConfig::fermi();
    let mut specs: Vec<ParamSpec> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--grid" => {
                i += 1;
                grid = parse_u64(args.get(i).ok_or("--grid needs a value")?)? as u32;
            }
            "--block" => {
                i += 1;
                block = parse_u64(args.get(i).ok_or("--block needs a value")?)? as u32;
            }
            "--alloc" => {
                i += 1;
                let bytes = parse_u64(args.get(i).ok_or("--alloc needs a value")?)?;
                specs.push(ParamSpec::Alloc(bytes));
            }
            "--param" => {
                i += 1;
                specs.push(ParamSpec::Value(parse_u64(
                    args.get(i).ok_or("--param needs a value")?,
                )?));
            }
            "--memcheck" => cfg.memcheck = true,
            "--sanitize" => cfg.sanitize = true,
            "--max-cycles" => {
                i += 1;
                cfg.max_cycles = parse_u64(args.get(i).ok_or("--max-cycles needs a value")?)?;
            }
            other => return Err(format!("run: unknown option `{other}`")),
        }
        i += 1;
    }
    let mut gpu = Gpu::new(cfg).map_err(|e| e.to_string())?;
    let mut params: Vec<u64> = Vec::new();
    for spec in specs {
        match spec {
            ParamSpec::Alloc(bytes) => {
                params.push(gpu.mem().alloc(bytes, 128).map_err(|e| e.to_string())?);
            }
            ParamSpec::Value(v) => params.push(v),
        }
    }
    if params.len() != kernel.params().len() {
        return Err(format!(
            "kernel `{}` takes {} parameters; {} provided (use --alloc/--param)",
            kernel.name(),
            kernel.params().len(),
            params.len()
        ));
    }
    let packed = pack_params(&kernel, &params);
    let stats = gpu
        .launch(&kernel, Dim3::x(grid), Dim3::x(block), &packed)
        .map_err(|e| e.to_string())?;
    println!(
        "kernel `{}`: {} CTAs x {} threads",
        kernel.name(),
        grid,
        block
    );
    println!("cycles             {}", stats.cycles);
    println!("warp instructions  {}", stats.sm.warp_insts);
    println!(
        "IPC                {:.3}",
        stats.sm.warp_insts as f64 / stats.cycles as f64
    );
    let p = stats.profiler();
    println!(
        "global load warps  {} (N fraction {:.1}%)",
        p.gld_request,
        stats.nondet_load_fraction() * 100.0
    );
    println!("L1 miss ratio      {:.1}%", p.l1_miss_ratio() * 100.0);
    for class in [LoadClass::Deterministic, LoadClass::NonDeterministic] {
        let a = stats.class(class);
        if a.warp_loads == 0 {
            continue;
        }
        println!(
            "{class:<18} {:.2} req/warp, turnaround {:.1} cycles",
            a.requests_per_warp(),
            a.turnaround.mean()
        );
    }
    if let Some(d) = stats.digest {
        println!("event digest       0x{d:016x}");
    }
    Ok(())
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let tiny = args.iter().any(|a| a == "--tiny");
    let sanitize = args.iter().any(|a| a == "--sanitize");
    let force_fail = args
        .iter()
        .position(|a| a == "--force-fail")
        .map(|i| {
            args.get(i + 1)
                .cloned()
                .ok_or("--force-fail needs a benchmark name")
        })
        .transpose()?;
    let workloads = if tiny {
        gcl::workloads::tiny_workloads()
    } else {
        gcl::workloads::all_workloads()
    };
    if let Some(name) = force_fail.as_deref() {
        if !workloads.iter().any(|w| w.name() == name) {
            return Err(format!("--force-fail: no benchmark named `{name}`"));
        }
    }
    let total = workloads.len();
    let mut failures: Vec<(&'static str, String)> = Vec::new();
    println!(
        "{:6} {:7} {:>9} {:>11} {:>9} {:>6} {:>9}  outcome",
        "name", "cat", "cycles", "warp insts", "gld", "N%", "L1 miss%"
    );
    for w in workloads {
        let mut cfg = if tiny {
            GpuConfig::small()
        } else {
            GpuConfig::fermi()
        };
        if force_fail.as_deref() == Some(w.name()) {
            // Starve the cycle budget so this benchmark times out: exercises
            // the fail-soft path without corrupting any input.
            cfg.max_cycles = 50;
        }
        cfg.sanitize = sanitize;
        let mut outcome = Gpu::new(cfg.clone()).and_then(|mut gpu| w.run(&mut gpu));
        if sanitize {
            if let Ok(run) = outcome {
                // Determinism audit: a second run from an identical initial
                // state must produce an identical event digest.
                outcome = Gpu::new(cfg)
                    .and_then(|mut gpu| w.run(&mut gpu))
                    .and_then(|second| {
                        gcl_sim::check_digests(w.name(), run.stats.digest, second.stats.digest)
                            .map_err(gcl_sim::SimError::Sanitizer)?;
                        Ok(run)
                    });
            }
        }
        match outcome {
            Ok(run) => {
                let p = run.stats.profiler();
                let digest = match run.stats.digest {
                    Some(d) => format!("  0x{d:016x}"),
                    None => String::new(),
                };
                println!(
                    "{:6} {:7} {:>9} {:>11} {:>9} {:>5.1} {:>9.1}  ok{digest}",
                    w.name(),
                    w.category().to_string(),
                    run.stats.cycles,
                    run.stats.sm.warp_insts,
                    p.gld_request,
                    run.stats.nondet_load_fraction() * 100.0,
                    p.l1_miss_ratio() * 100.0,
                );
            }
            Err(e) => {
                let msg = e.to_string();
                let first = msg.lines().next().unwrap_or("failed").to_string();
                println!(
                    "{:6} {:7} {:>9} {:>11} {:>9} {:>6} {:>9}  FAILED: {first}",
                    w.name(),
                    w.category().to_string(),
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                );
                failures.push((w.name(), msg));
            }
        }
    }
    if failures.is_empty() {
        println!("\n{total} of {total} benchmarks completed");
        Ok(())
    } else {
        for (name, msg) in &failures {
            eprintln!("\n`{name}` failed:\n{msg}");
        }
        Err(format!("{} of {total} benchmarks failed", failures.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::parse_u64;

    #[test]
    fn integers_parse_in_both_bases() {
        assert_eq!(parse_u64("42").unwrap(), 42);
        assert_eq!(parse_u64("0x2a").unwrap(), 42);
        assert!(parse_u64("nope").is_err());
    }
}
