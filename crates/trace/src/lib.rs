//! # gcl-trace — the `GCLTRACE1` capture/replay container
//!
//! A versioned, checksummed, columnar on-disk format for
//! [`gcl_sim`] issue traces, making trace-driven replay a first-class
//! simulation backend: capture once with a [`TraceWriter`] attached as the
//! GPU's [`TraceSink`](gcl_sim::TraceSink), then feed the recorded
//! [`LaunchReplay`](gcl_sim::LaunchReplay)s back through
//! [`Gpu::launch_replay`](gcl_sim::Gpu::launch_replay) — reproducing the
//! execution-driven event digests, cycle counts, and locality observations
//! exactly, without functional execution.
//!
//! ## File layout
//!
//! ```text
//! [0..8)    magic "GCLTRACE"
//! [8..12)   format version, u32 LE (currently 1)
//! [12..20)  config fingerprint of the capturing GPU, u64 LE
//! [20..28)  launch count, u64 LE
//! then per launch (a *section*):
//!   [8]     payload length, u64 LE
//!   [..]    payload (wire-encoded, see below)
//!   [8]     FNV-1a checksum of the payload, u64 LE
//! trailing:
//!   [8]     FNV-1a checksum of every preceding byte, u64 LE
//! ```
//!
//! Every length is validated against the remaining input before use, both
//! checksum layers must verify, and the format version is checked by exact
//! equality — a truncated, bit-flipped, or version-skewed file fails with a
//! structured [`TraceError`], never silently.
//!
//! ## Launch payload
//!
//! Wire-encoded ([`gcl_mem::Enc`]) as a header — kernel fingerprint, kernel
//! name, grid/block geometry, stream count — followed by one record block
//! per warp stream (stream `linear_cta * warps_per_cta + warp_in_cta`).
//! Each stream is stored *columnar*: a record count, then four
//! length-prefixed columns holding, for all records of the stream, the
//! delta-encoded pcs (zigzag varints against the previous pc), the active
//! masks (varints), the kind tags (one byte each), and the kind payloads.
//! Memory payloads delta-encode lane ids (ascending) and per-lane byte
//! addresses (zigzag varints against a per-stream running predictor), which
//! is where the bulk of the compression comes from: sequential access
//! streams collapse to one or two bytes per lane.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod codec;
mod reader;
mod writer;

pub use reader::{parse_trace, read_trace, TraceFile, TraceLaunch};
pub use writer::{TraceSummary, TraceWriter};

use gcl_mem::WireError;
use std::fmt;

/// Leading magic of every trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"GCLTRACE";

/// Current trace format version. Bumped whenever the layout changes;
/// reading rejects any other version by name.
pub const TRACE_VERSION: u32 = 1;

/// Why a trace container could not be written, read, or validated.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The file ended before a declared structure was complete.
    Truncated,
    /// The file was written by a different format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build reads ([`TRACE_VERSION`]).
        expected: u32,
    },
    /// A checksum did not verify; `what` names the failing layer
    /// (`"file"` or `"launch section"`).
    ChecksumMismatch {
        /// Which checksum layer failed.
        what: &'static str,
    },
    /// A structural invariant of the payload did not hold.
    Malformed(&'static str),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::Truncated => write!(f, "trace file truncated"),
            TraceError::VersionMismatch { found, expected } => {
                write!(f, "trace format version {found}, expected {expected}")
            }
            TraceError::ChecksumMismatch { what } => {
                write!(f, "trace {what} checksum mismatch (corrupt file)")
            }
            TraceError::Malformed(what) => write!(f, "malformed trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

impl From<WireError> for TraceError {
    fn from(e: WireError) -> TraceError {
        match e {
            WireError::Truncated => TraceError::Truncated,
            WireError::Malformed(what) => TraceError::Malformed(what),
        }
    }
}
