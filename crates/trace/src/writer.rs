//! Capacity-bounded trace capture: a [`TraceSink`] that encodes issued
//! instructions straight into per-stream columns, spills column chunks to a
//! scratch file when the in-memory budget is exceeded, seals each completed
//! launch into a checksummed section on disk, and atomically publishes the
//! final container on [`TraceWriter::finish`].

use crate::codec::{encode_record, ColBufs, ColState};
use crate::{TraceError, TRACE_MAGIC, TRACE_VERSION};
use gcl_mem::Enc;
use gcl_sim::{fnv_fold_bytes, LaunchInfo, ReplayKind, TraceEvent, TraceSink, FNV_OFFSET};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// What a completed capture produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Final container path.
    pub path: PathBuf,
    /// Launches captured (aborted launches are discarded, not counted).
    pub launches: u64,
    /// Warp instructions recorded across all launches.
    pub records: u64,
    /// Container size in bytes.
    pub bytes: u64,
    /// The container's trailing whole-file checksum — a content address
    /// for the trace (two captures of the same deterministic run produce
    /// the same fingerprint).
    pub file_fp: u64,
}

/// One launch being captured.
#[derive(Debug)]
struct CurLaunch {
    info: LaunchInfo,
    bufs: Vec<ColBufs>,
    states: Vec<ColState>,
    /// Records per stream, across spills.
    totals: Vec<u64>,
    buffered: usize,
    spill: Option<BufWriter<File>>,
}

/// A [`TraceSink`] writing the `GCLTRACE1` container.
///
/// Memory is bounded during capture: when the per-launch column buffers
/// exceed the configured capacity, they are spilled as chunks to a scratch
/// file (`<out>.spill`); the per-stream delta predictors persist across
/// spills, so sealing a launch only concatenates chunk columns. Completed
/// launch sections stream to a second scratch file (`<out>.sections`), and
/// [`finish`](TraceWriter::finish) assembles the final container next to it
/// and renames it into place — a crash mid-capture never leaves a
/// half-written container at the destination.
///
/// The [`TraceSink`] methods cannot return errors, so I/O failures are
/// latched and surfaced by `finish` (subsequent events are dropped).
#[derive(Debug)]
pub struct TraceWriter {
    out_path: PathBuf,
    sections_path: PathBuf,
    spill_path: PathBuf,
    sections: Option<BufWriter<File>>,
    config_fp: u64,
    cap_bytes: usize,
    launches: u64,
    records: u64,
    cur: Option<CurLaunch>,
    err: Option<std::io::Error>,
}

impl TraceWriter {
    /// Create a writer that will publish to `path` on `finish`.
    ///
    /// `config_fp` is the capturing GPU's configuration fingerprint
    /// ([`gcl_sim::config_fingerprint`]); replay validates against it.
    /// `cap_bytes` bounds the in-memory column buffers per launch (the
    /// spill threshold); 0 spills after every event.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the scratch file cannot be created.
    pub fn create(
        path: impl Into<PathBuf>,
        config_fp: u64,
        cap_bytes: usize,
    ) -> Result<TraceWriter, TraceError> {
        let out_path = path.into();
        let sections_path = scratch_path(&out_path, "sections");
        let spill_path = scratch_path(&out_path, "spill");
        let sections = Some(BufWriter::new(rw_create(&sections_path)?));
        Ok(TraceWriter {
            out_path,
            sections_path,
            spill_path,
            sections,
            config_fp,
            cap_bytes,
            launches: 0,
            records: 0,
            cur: None,
            err: None,
        })
    }

    /// Spill every non-empty stream's columns as one chunk each, keeping
    /// predictor state.
    fn spill(&mut self) -> std::io::Result<()> {
        let cur = self.cur.as_mut().expect("spill without open launch");
        let spill = match cur.spill.as_mut() {
            Some(s) => s,
            None => {
                cur.spill = Some(BufWriter::new(rw_create(&self.spill_path)?));
                cur.spill.as_mut().expect("just created")
            }
        };
        for (stream, bufs) in cur.bufs.iter_mut().enumerate() {
            if bufs.n == 0 {
                continue;
            }
            let taken = std::mem::take(bufs);
            spill.write_all(&(stream as u64).to_le_bytes())?;
            spill.write_all(&taken.n.to_le_bytes())?;
            for col in [
                taken.pc.into_bytes(),
                taken.mask.into_bytes(),
                taken.tag.into_bytes(),
                taken.payload.into_bytes(),
            ] {
                spill.write_all(&(col.len() as u64).to_le_bytes())?;
                spill.write_all(&col)?;
            }
        }
        cur.buffered = 0;
        Ok(())
    }

    /// Seal the open launch into one checksummed section on the sections
    /// scratch file.
    fn seal_launch(&mut self) -> std::io::Result<()> {
        let spilled = self
            .cur
            .as_ref()
            .expect("seal without open launch")
            .spill
            .is_some();
        if spilled {
            // Flush the tail, then regroup chunk columns per stream.
            self.spill()?;
        }
        let cur = self.cur.take().expect("seal without open launch");
        let mut e = Enc::new();
        e.u64(cur.info.kernel_fp);
        e.str(&cur.info.kernel_name);
        for v in [
            cur.info.grid.x,
            cur.info.grid.y,
            cur.info.grid.z,
            cur.info.block.x,
            cur.info.block.y,
            cur.info.block.z,
        ] {
            e.u32(v);
        }
        e.u64(cur.info.n_streams);
        if let Some(spill) = cur.spill {
            let mut file = spill.into_inner().map_err(|e| e.into_error())?;
            file.flush()?;
            // Index the chunk file: per stream, the (offset, len) of each
            // chunk's four columns, in chunk order.
            let n_streams = cur.bufs.len();
            let mut index: Vec<Vec<[(u64, u64); 4]>> = vec![Vec::new(); n_streams];
            let end = file.seek(SeekFrom::End(0))?;
            let mut pos = file.seek(SeekFrom::Start(0))?;
            let mut head = [0u8; 16];
            while pos < end {
                file.read_exact(&mut head)?;
                let stream = u64::from_le_bytes(head[..8].try_into().expect("slice"));
                pos += 16;
                let mut cols = [(0u64, 0u64); 4];
                for c in &mut cols {
                    let mut lenb = [0u8; 8];
                    file.read_exact(&mut lenb)?;
                    let len = u64::from_le_bytes(lenb);
                    pos += 8;
                    *c = (pos, len);
                    pos = file.seek(SeekFrom::Start(pos + len))?;
                }
                index[usize::try_from(stream).expect("stream index")].push(cols);
            }
            // Emit each stream: record count, then the four columns as the
            // in-order concatenation of its chunks — one column blob in
            // memory at a time.
            for (stream, chunks) in index.iter().enumerate() {
                e.varint(cur.totals[stream]);
                for col in 0..4 {
                    let total: u64 = chunks.iter().map(|c| c[col].1).sum();
                    e.usize(usize::try_from(total).expect("column size"));
                    for c in chunks {
                        let (off, len) = c[col];
                        file.seek(SeekFrom::Start(off))?;
                        let mut blob = vec![0u8; usize::try_from(len).expect("chunk size")];
                        file.read_exact(&mut blob)?;
                        e.raw(&blob);
                    }
                }
            }
            drop(file);
            std::fs::remove_file(&self.spill_path)?;
        } else {
            for (stream, bufs) in cur.bufs.into_iter().enumerate() {
                e.varint(cur.totals[stream]);
                debug_assert_eq!(bufs.n, cur.totals[stream]);
                for col in [
                    bufs.pc.into_bytes(),
                    bufs.mask.into_bytes(),
                    bufs.tag.into_bytes(),
                    bufs.payload.into_bytes(),
                ] {
                    e.bytes(&col);
                }
            }
        }
        let payload = e.into_bytes();
        let fp = fnv_fold_bytes(FNV_OFFSET, &payload);
        let sections = self.sections.as_mut().expect("sections live until finish");
        sections.write_all(&(payload.len() as u64).to_le_bytes())?;
        sections.write_all(&payload)?;
        sections.write_all(&fp.to_le_bytes())?;
        self.launches += 1;
        self.records += cur.totals.iter().sum::<u64>();
        Ok(())
    }

    fn guard(&mut self, f: impl FnOnce(&mut Self) -> std::io::Result<()>) {
        if self.err.is_some() {
            return;
        }
        if let Err(e) = f(self) {
            self.err = Some(e);
        }
    }

    /// Assemble and atomically publish the container, consuming the
    /// writer. A launch still open (its run errored without reaching the
    /// sink's `abort_launch`) is discarded.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] — including any I/O failure latched during
    /// capture; the destination is left untouched on error.
    pub fn finish(mut self) -> Result<TraceSummary, TraceError> {
        self.abort_launch();
        if let Some(e) = self.err.take() {
            return Err(TraceError::Io(e));
        }
        let tmp_path = scratch_path(&self.out_path, "tmp");
        let mut out = BufWriter::new(File::create(&tmp_path)?);
        let mut fp = FNV_OFFSET;
        let mut bytes: u64 = 0;
        let mut put = |out: &mut BufWriter<File>, b: &[u8]| -> std::io::Result<()> {
            fp = fnv_fold_bytes(fp, b);
            bytes += b.len() as u64;
            out.write_all(b)
        };
        put(&mut out, &TRACE_MAGIC)?;
        put(&mut out, &TRACE_VERSION.to_le_bytes())?;
        put(&mut out, &self.config_fp.to_le_bytes())?;
        put(&mut out, &self.launches.to_le_bytes())?;
        let mut sections = self
            .sections
            .take()
            .expect("sections live until finish")
            .into_inner()
            .map_err(|e| TraceError::Io(e.into_error()))?;
        sections.flush()?;
        sections.seek(SeekFrom::Start(0))?;
        let mut chunk = vec![0u8; 1 << 16];
        loop {
            let n = sections.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            put(&mut out, &chunk[..n])?;
        }
        drop(sections);
        let file_fp = fp;
        out.write_all(&file_fp.to_le_bytes())?;
        bytes += 8;
        out.into_inner()
            .map_err(|e| TraceError::Io(e.into_error()))?
            .sync_all()?;
        std::fs::rename(&tmp_path, &self.out_path)?;
        let _ = std::fs::remove_file(&self.sections_path);
        Ok(TraceSummary {
            path: self.out_path.clone(),
            launches: self.launches,
            records: self.records,
            bytes,
            file_fp,
        })
    }
}

impl TraceSink for TraceWriter {
    fn begin_launch(&mut self, info: &LaunchInfo) {
        assert!(self.cur.is_none(), "begin_launch with a launch open");
        let n = usize::try_from(info.n_streams).expect("stream count");
        self.cur = Some(CurLaunch {
            info: info.clone(),
            bufs: (0..n).map(|_| ColBufs::default()).collect(),
            states: vec![ColState::default(); n],
            totals: vec![0; n],
            buffered: 0,
            spill: None,
        });
    }

    fn issue(&mut self, stream: u64, ev: &TraceEvent, kind: &ReplayKind) {
        if self.err.is_some() {
            return;
        }
        let cap = self.cap_bytes;
        let over = {
            let cur = self.cur.as_mut().expect("issue without a launch");
            let s = usize::try_from(stream).expect("stream index");
            let before = cur.bufs[s].bytes();
            encode_record(&mut cur.bufs[s], &mut cur.states[s], ev.pc, ev.active, kind);
            cur.totals[s] += 1;
            cur.buffered += cur.bufs[s].bytes() - before;
            cur.buffered > cap
        };
        if over {
            self.guard(TraceWriter::spill);
        }
    }

    fn end_launch(&mut self) {
        self.guard(TraceWriter::seal_launch);
    }

    fn abort_launch(&mut self) {
        if self.cur.take().is_some() {
            let _ = std::fs::remove_file(&self.spill_path);
        }
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        // `finish` renames the scratch files away; if the writer is
        // dropped without finishing, don't leave them behind.
        let _ = std::fs::remove_file(&self.sections_path);
        let _ = std::fs::remove_file(&self.spill_path);
    }
}

/// Scratch files are written during capture and read back at seal/finish,
/// so they need read+write.
fn rw_create(path: &Path) -> std::io::Result<File> {
    std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)
}

fn scratch_path(out: &Path, suffix: &str) -> PathBuf {
    let mut name = out.file_name().unwrap_or_default().to_os_string();
    name.push(".");
    name.push(suffix);
    out.with_file_name(name)
}
