//! Columnar record codec: one warp stream's records split into four
//! delta-compressed columns (pcs, masks, kind tags, kind payloads), with
//! per-stream predictor state that survives chunked spills — concatenating
//! a stream's chunk columns in order yields exactly the encoding of the
//! whole stream.

use gcl_mem::{Dec, Enc, WireError};
use gcl_ptx::Reg;
use gcl_sim::{space_code, space_from_code, ReplayKind, ReplayRecord};

/// Kind tags of the tag column. Never reorder: recorded traces depend on
/// them (they also match `ReplayKind`'s fingerprint tags).
const TAG_ALU: u8 = 0;
const TAG_MEM: u8 = 1;
const TAG_BRANCH: u8 = 2;
const TAG_BARRIER: u8 = 3;
const TAG_EXIT: u8 = 4;
const TAG_PREDICATED: u8 = 5;

/// Per-stream delta predictors. Persist across chunk spills so chunk
/// columns concatenate seamlessly.
#[derive(Debug, Clone, Default)]
pub(crate) struct ColState {
    prev_pc: i64,
    prev_addr: i64,
}

/// One stream's (possibly partial) column buffers.
#[derive(Debug, Default)]
pub(crate) struct ColBufs {
    /// Records encoded into these buffers.
    pub n: u64,
    /// Delta-encoded pcs.
    pub pc: Enc,
    /// Active masks.
    pub mask: Enc,
    /// Kind tags.
    pub tag: Enc,
    /// Kind payloads.
    pub payload: Enc,
}

impl ColBufs {
    /// Total bytes currently buffered across the four columns.
    pub fn bytes(&self) -> usize {
        self.pc.len() + self.mask.len() + self.tag.len() + self.payload.len()
    }
}

fn enc_reg(e: &mut Enc, dst: Option<Reg>) {
    e.varint(dst.map_or(0, |r| u64::from(r.0) + 1));
}

fn dec_reg(d: &mut Dec<'_>) -> Result<Option<Reg>, WireError> {
    let v = d.varint()?;
    if v == 0 {
        return Ok(None);
    }
    let idx = u32::try_from(v - 1).map_err(|_| WireError::Malformed("register index overflow"))?;
    Ok(Some(Reg(idx)))
}

/// Append one record to a stream's columns, advancing its predictors.
pub(crate) fn encode_record(
    bufs: &mut ColBufs,
    st: &mut ColState,
    pc: u32,
    mask: u32,
    kind: &ReplayKind,
) {
    bufs.n += 1;
    bufs.pc.svarint(i64::from(pc) - st.prev_pc);
    st.prev_pc = i64::from(pc);
    bufs.mask.varint(u64::from(mask));
    match kind {
        ReplayKind::Alu { dst } => {
            bufs.tag.u8(TAG_ALU);
            enc_reg(&mut bufs.payload, *dst);
        }
        ReplayKind::Mem {
            space,
            is_store,
            dst,
            bytes,
            lane_addrs,
        } => {
            bufs.tag.u8(TAG_MEM);
            let p = &mut bufs.payload;
            p.u8(space_code(*space));
            p.bool(*is_store);
            enc_reg(p, *dst);
            p.varint(u64::from(*bytes));
            p.varint(lane_addrs.len() as u64);
            let mut prev_lane: i64 = -1;
            for &(lane, addr) in lane_addrs {
                // Lanes are strictly ascending, so `delta - 1` keeps
                // consecutive lanes at zero.
                p.varint((i64::from(lane) - prev_lane - 1) as u64);
                prev_lane = i64::from(lane);
                p.svarint((addr as i64).wrapping_sub(st.prev_addr));
                st.prev_addr = addr as i64;
            }
        }
        ReplayKind::Branch { diverged } => {
            bufs.tag.u8(TAG_BRANCH);
            bufs.payload.bool(*diverged);
        }
        ReplayKind::Barrier { id } => {
            bufs.tag.u8(TAG_BARRIER);
            bufs.payload.varint(u64::from(*id));
        }
        ReplayKind::Exit => bufs.tag.u8(TAG_EXIT),
        ReplayKind::Predicated => bufs.tag.u8(TAG_PREDICATED),
    }
}

/// Decode one stream: `n` records from its four concatenated columns.
/// Rejects columns with leftover bytes — every record must account for
/// exactly the bytes present.
pub(crate) fn decode_stream(
    n: u64,
    pc_col: &[u8],
    mask_col: &[u8],
    tag_col: &[u8],
    payload_col: &[u8],
) -> Result<Vec<ReplayRecord>, WireError> {
    let n = usize::try_from(n).map_err(|_| WireError::Malformed("stream record count"))?;
    if tag_col.len() != n {
        return Err(WireError::Malformed("tag column length"));
    }
    let mut pcs = Dec::new(pc_col);
    let mut masks = Dec::new(mask_col);
    let mut payloads = Dec::new(payload_col);
    let mut st = ColState::default();
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for &tag in tag_col {
        let pc_v = st.prev_pc + pcs.svarint()?;
        let pc = u32::try_from(pc_v).map_err(|_| WireError::Malformed("pc delta out of range"))?;
        st.prev_pc = pc_v;
        let mask_v = masks.varint()?;
        let mask = u32::try_from(mask_v).map_err(|_| WireError::Malformed("mask out of range"))?;
        let kind = match tag {
            TAG_ALU => ReplayKind::Alu {
                dst: dec_reg(&mut payloads)?,
            },
            TAG_MEM => {
                let space = space_from_code(payloads.u8()?)
                    .ok_or(WireError::Malformed("memory space code"))?;
                let is_store = payloads.bool()?;
                let dst = dec_reg(&mut payloads)?;
                let bytes = u32::try_from(payloads.varint()?)
                    .map_err(|_| WireError::Malformed("access width"))?;
                let n_lanes = payloads.varint()?;
                if n_lanes > 64 {
                    return Err(WireError::Malformed("lane count"));
                }
                let mut lane_addrs = Vec::with_capacity(n_lanes as usize);
                let mut prev_lane: i64 = -1;
                for _ in 0..n_lanes {
                    let lane_v = prev_lane + 1 + payloads.varint()? as i64;
                    let lane = u32::try_from(lane_v)
                        .map_err(|_| WireError::Malformed("lane id out of range"))?;
                    prev_lane = lane_v;
                    let addr = st.prev_addr.wrapping_add(payloads.svarint()?);
                    st.prev_addr = addr;
                    lane_addrs.push((lane, addr as u64));
                }
                ReplayKind::Mem {
                    space,
                    is_store,
                    dst,
                    bytes,
                    lane_addrs,
                }
            }
            TAG_BRANCH => ReplayKind::Branch {
                diverged: payloads.bool()?,
            },
            TAG_BARRIER => ReplayKind::Barrier {
                id: u32::try_from(payloads.varint()?)
                    .map_err(|_| WireError::Malformed("barrier id"))?,
            },
            TAG_EXIT => ReplayKind::Exit,
            TAG_PREDICATED => ReplayKind::Predicated,
            _ => return Err(WireError::Malformed("record kind tag")),
        };
        out.push(ReplayRecord { pc, mask, kind });
    }
    if !pcs.is_done() || !masks.is_done() || !payloads.is_done() {
        return Err(WireError::Malformed("trailing bytes in stream column"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_ptx::Space;

    fn roundtrip(recs: &[ReplayRecord]) -> Vec<ReplayRecord> {
        let mut bufs = ColBufs::default();
        let mut st = ColState::default();
        for r in recs {
            encode_record(&mut bufs, &mut st, r.pc, r.mask, &r.kind);
        }
        decode_stream(
            bufs.n,
            &bufs.pc.into_bytes(),
            &bufs.mask.into_bytes(),
            &bufs.tag.into_bytes(),
            &bufs.payload.into_bytes(),
        )
        .unwrap()
    }

    #[test]
    fn roundtrips_every_kind() {
        let recs = vec![
            ReplayRecord {
                pc: 0,
                mask: 0xFFFF_FFFF,
                kind: ReplayKind::Alu { dst: Some(Reg(7)) },
            },
            ReplayRecord {
                pc: 1,
                mask: 0xFFFF_FFFF,
                kind: ReplayKind::Mem {
                    space: Space::Global,
                    is_store: false,
                    dst: Some(Reg(2)),
                    bytes: 4,
                    lane_addrs: vec![(0, 0x1000), (1, 0x1004), (5, 0x0800)],
                },
            },
            ReplayRecord {
                pc: 2,
                mask: 0x3,
                kind: ReplayKind::Branch { diverged: true },
            },
            ReplayRecord {
                pc: 0,
                mask: 0x3,
                kind: ReplayKind::Barrier { id: 9 },
            },
            ReplayRecord {
                pc: 3,
                mask: 0x1,
                kind: ReplayKind::Predicated,
            },
            ReplayRecord {
                pc: 4,
                mask: 0x1,
                kind: ReplayKind::Mem {
                    space: Space::Shared,
                    is_store: true,
                    dst: None,
                    bytes: 8,
                    lane_addrs: vec![(31, 0)],
                },
            },
            ReplayRecord {
                pc: 5,
                mask: 0x1,
                kind: ReplayKind::Exit,
            },
        ];
        assert_eq!(roundtrip(&recs), recs);
    }

    #[test]
    fn sequential_addresses_compress_to_bytes() {
        let recs: Vec<ReplayRecord> = (0..64u32)
            .map(|i| ReplayRecord {
                pc: 10,
                mask: 0xFFFF_FFFF,
                kind: ReplayKind::Mem {
                    space: Space::Global,
                    is_store: false,
                    dst: Some(Reg(1)),
                    bytes: 4,
                    lane_addrs: (0..32)
                        .map(|l| (l, u64::from(i) * 128 + u64::from(l) * 4))
                        .collect(),
                },
            })
            .collect();
        let mut bufs = ColBufs::default();
        let mut st = ColState::default();
        for r in &recs {
            encode_record(&mut bufs, &mut st, r.pc, r.mask, &r.kind);
        }
        // 64 records × 32 lanes of raw (u32, u64) would be 24 KiB; the
        // delta columns land far below that.
        assert!(
            bufs.bytes() < 6 * 1024,
            "columns too large: {} bytes",
            bufs.bytes()
        );
        let decoded = decode_stream(
            bufs.n,
            &bufs.pc.into_bytes(),
            &bufs.mask.into_bytes(),
            &bufs.tag.into_bytes(),
            &bufs.payload.into_bytes(),
        )
        .unwrap();
        assert_eq!(decoded, recs);
    }

    #[test]
    fn chunked_encoding_concatenates_seamlessly() {
        let recs: Vec<ReplayRecord> = (0..10u32)
            .map(|i| ReplayRecord {
                pc: i * 3,
                mask: 0xF,
                kind: ReplayKind::Mem {
                    space: Space::Global,
                    is_store: i % 2 == 0,
                    dst: None,
                    bytes: 4,
                    lane_addrs: vec![(0, u64::from(i) * 64)],
                },
            })
            .collect();
        // Encode in two chunks sharing one predictor state, concatenate.
        let mut st = ColState::default();
        let mut a = ColBufs::default();
        for r in &recs[..4] {
            encode_record(&mut a, &mut st, r.pc, r.mask, &r.kind);
        }
        let mut b = ColBufs::default();
        for r in &recs[4..] {
            encode_record(&mut b, &mut st, r.pc, r.mask, &r.kind);
        }
        let cat = |x: Enc, y: Enc| {
            let mut v = x.into_bytes();
            v.extend_from_slice(&y.into_bytes());
            v
        };
        let decoded = decode_stream(
            a.n + b.n,
            &cat(a.pc, b.pc),
            &cat(a.mask, b.mask),
            &cat(a.tag, b.tag),
            &cat(a.payload, b.payload),
        )
        .unwrap();
        assert_eq!(decoded, recs);
    }

    #[test]
    fn corrupt_columns_rejected() {
        let recs = vec![ReplayRecord {
            pc: 1,
            mask: 2,
            kind: ReplayKind::Alu { dst: None },
        }];
        let mut bufs = ColBufs::default();
        let mut st = ColState::default();
        for r in &recs {
            encode_record(&mut bufs, &mut st, r.pc, r.mask, &r.kind);
        }
        let (pc, mask, tag, payload) = (
            bufs.pc.into_bytes(),
            bufs.mask.into_bytes(),
            bufs.tag.into_bytes(),
            bufs.payload.into_bytes(),
        );
        // Wrong tag count.
        assert!(decode_stream(2, &pc, &mask, &tag, &payload).is_err());
        // Unknown tag.
        assert!(decode_stream(1, &pc, &mask, &[9], &payload).is_err());
        // Trailing payload bytes.
        let mut fat = payload.clone();
        fat.push(0);
        assert!(decode_stream(1, &pc, &mask, &tag, &fat).is_err());
        // Truncated pc column.
        assert!(decode_stream(1, &[], &mask, &tag, &payload).is_err());
    }
}
