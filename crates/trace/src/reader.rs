//! Trace container reading: full structural validation — magic, version,
//! whole-file checksum, per-section checksums, and every column decoded and
//! bounds-checked — before any launch is handed to replay.

use crate::codec::decode_stream;
use crate::{TraceError, TRACE_MAGIC, TRACE_VERSION};
use gcl_mem::Dec;
use gcl_sim::{fnv_fold_bytes, Dim3, LaunchReplay, FNV_OFFSET};
use std::path::Path;
use std::sync::Arc;

/// A fully validated trace container.
#[derive(Debug, Clone)]
pub struct TraceFile {
    /// Configuration fingerprint of the capturing GPU
    /// ([`gcl_sim::config_fingerprint`]); replay must run under a
    /// configuration with the same fingerprint to reproduce timing.
    pub config_fp: u64,
    /// The container's trailing whole-file checksum — its content address.
    pub file_fp: u64,
    /// Captured launches, in capture order.
    pub launches: Vec<TraceLaunch>,
}

impl TraceFile {
    /// Warp instructions recorded across all launches.
    pub fn n_records(&self) -> u64 {
        self.launches.iter().map(|l| l.replay.n_records()).sum()
    }
}

/// One captured launch.
#[derive(Debug, Clone)]
pub struct TraceLaunch {
    /// Kernel name at capture (diagnostic; the fingerprint inside
    /// [`LaunchReplay`] is authoritative).
    pub kernel_name: String,
    /// The replayable launch.
    pub replay: LaunchReplay,
}

/// Read and validate a trace container from disk.
///
/// # Errors
///
/// [`TraceError::Io`] when the file cannot be read; otherwise as
/// [`parse_trace`].
pub fn read_trace(path: impl AsRef<Path>) -> Result<TraceFile, TraceError> {
    parse_trace(&std::fs::read(path)?)
}

/// Validate and decode a trace container from bytes.
///
/// # Errors
///
/// * [`TraceError::BadMagic`] — not a trace file.
/// * [`TraceError::VersionMismatch`] — written by another format version.
/// * [`TraceError::Truncated`] — bytes end before a declared structure.
/// * [`TraceError::ChecksumMismatch`] — file or section checksum failed.
/// * [`TraceError::Malformed`] — a structural invariant did not hold.
pub fn parse_trace(bytes: &[u8]) -> Result<TraceFile, TraceError> {
    if bytes.len() < 8 {
        return Err(TraceError::Truncated);
    }
    if bytes[..8] != TRACE_MAGIC {
        return Err(TraceError::BadMagic);
    }
    // Header + trailing checksum. Version is checked before the checksum so
    // a future-format file reports the version skew, not a checksum error.
    const HEADER: usize = 8 + 4 + 8 + 8;
    if bytes.len() < HEADER + 8 {
        return Err(TraceError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("header slice"));
    if version != TRACE_VERSION {
        return Err(TraceError::VersionMismatch {
            found: version,
            expected: TRACE_VERSION,
        });
    }
    let body = &bytes[..bytes.len() - 8];
    let declared = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("tail slice"));
    let file_fp = fnv_fold_bytes(FNV_OFFSET, body);
    if declared != file_fp {
        return Err(TraceError::ChecksumMismatch { what: "file" });
    }
    let config_fp = u64::from_le_bytes(bytes[12..20].try_into().expect("header slice"));
    let n_launches = u64::from_le_bytes(bytes[20..28].try_into().expect("header slice"));
    let mut rest = &body[HEADER..];
    let mut launches = Vec::new();
    for _ in 0..n_launches {
        if rest.len() < 8 {
            return Err(TraceError::Truncated);
        }
        let len = u64::from_le_bytes(rest[..8].try_into().expect("section slice"));
        let len = usize::try_from(len).map_err(|_| TraceError::Malformed("section length"))?;
        rest = &rest[8..];
        if rest.len() < len + 8 {
            return Err(TraceError::Truncated);
        }
        let payload = &rest[..len];
        let declared = u64::from_le_bytes(rest[len..len + 8].try_into().expect("section slice"));
        if fnv_fold_bytes(FNV_OFFSET, payload) != declared {
            return Err(TraceError::ChecksumMismatch {
                what: "launch section",
            });
        }
        rest = &rest[len + 8..];
        launches.push(decode_launch(payload)?);
    }
    if !rest.is_empty() {
        return Err(TraceError::Malformed("trailing bytes after last section"));
    }
    Ok(TraceFile {
        config_fp,
        file_fp,
        launches,
    })
}

fn decode_launch(payload: &[u8]) -> Result<TraceLaunch, TraceError> {
    let mut d = Dec::new(payload);
    let kernel_fp = d.u64()?;
    let kernel_name = d.str()?;
    let grid = Dim3 {
        x: d.u32()?,
        y: d.u32()?,
        z: d.u32()?,
    };
    let block = Dim3 {
        x: d.u32()?,
        y: d.u32()?,
        z: d.u32()?,
    };
    let n_streams = d.u64()?;
    let n_streams =
        usize::try_from(n_streams).map_err(|_| TraceError::Malformed("stream count"))?;
    // Each stream takes at least 5 bytes (count varint + four length
    // prefixes... the prefixes alone are 32), so bound before allocating.
    if n_streams > payload.len() {
        return Err(TraceError::Malformed("stream count exceeds payload"));
    }
    let mut out = Vec::with_capacity(n_streams);
    for _ in 0..n_streams {
        let n = d.varint()?;
        let pc_col = d.bytes()?;
        let mask_col = d.bytes()?;
        let tag_col = d.bytes()?;
        let payload_col = d.bytes()?;
        out.push(Arc::from(decode_stream(
            n,
            pc_col,
            mask_col,
            tag_col,
            payload_col,
        )?));
    }
    if !d.is_done() {
        return Err(TraceError::Malformed("trailing bytes in launch payload"));
    }
    Ok(TraceLaunch {
        kernel_name,
        replay: LaunchReplay {
            kernel_fp,
            grid,
            block,
            streams: out,
        },
    })
}
