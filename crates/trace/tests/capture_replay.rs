//! Capstone gate: for every tiny workload, capture → container round trip →
//! replay reproduces the execution-driven per-launch event digests, cycle
//! counts, merged statistics, and `pc_sharing()` exactly; and the
//! corruption matrix (truncated / bit-flipped / version-skewed /
//! geometry-mismatched containers) fails structured, never silently.

use std::sync::{Arc, Mutex};

use gcl_sim::{
    config_fingerprint, kernel_fingerprint, Gpu, GpuConfig, LaunchStats, PcSharing, ReplayError,
    SimError,
};
use gcl_trace::{parse_trace, read_trace, TraceError, TraceWriter, TRACE_VERSION};
use gcl_workloads::{tiny_workloads, Workload};

fn san_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::small();
    cfg.sanitize = true;
    cfg
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "gcl-trace-test-{}-{name}.gcltrace",
        std::process::id()
    ));
    p
}

/// Capture one workload into a container file; returns its execution-driven
/// reference (merged stats + locality observations).
fn capture(
    w: &dyn Workload,
    path: &std::path::Path,
    cap_bytes: usize,
) -> (LaunchStats, Vec<PcSharing>) {
    let cfg = san_cfg();
    let mut gpu = Gpu::new(cfg.clone()).unwrap();
    let writer = TraceWriter::create(path, config_fingerprint(&cfg), cap_bytes).unwrap();
    let sink = Arc::new(Mutex::new(writer));
    gpu.set_trace_sink(Some(Box::new(sink.clone())));
    let result = w.run(&mut gpu).unwrap();
    gpu.set_trace_sink(None);
    let sharing = gpu.pc_sharing();
    let writer = Arc::try_unwrap(sink)
        .expect("sink detached")
        .into_inner()
        .unwrap();
    let summary = writer.finish().unwrap();
    assert_eq!(
        summary.launches,
        result.stats.launches,
        "{}: every launch captured",
        w.name()
    );
    assert!(summary.records > 0, "{}: non-empty capture", w.name());
    (result.stats, sharing)
}

/// Replay a container against a workload's kernels on a fresh GPU,
/// returning (merged stats, locality observations).
fn replay(w: &dyn Workload, path: &std::path::Path) -> (LaunchStats, Vec<PcSharing>) {
    let cfg = san_cfg();
    let trace = read_trace(path).unwrap();
    assert_eq!(
        trace.config_fp,
        config_fingerprint(&cfg),
        "{}: config fingerprint recorded",
        w.name()
    );
    let kernels = w.kernels();
    let mut gpu = Gpu::new(cfg).unwrap();
    let mut merged = LaunchStats::default();
    for launch in &trace.launches {
        let kernel = kernels
            .iter()
            .find(|k| kernel_fingerprint(k) == launch.replay.kernel_fp)
            .unwrap_or_else(|| panic!("{}: no kernel for {}", w.name(), launch.kernel_name));
        let stats = gpu.launch_replay(kernel, &launch.replay).unwrap();
        merged.merge(&stats);
    }
    (merged, gpu.pc_sharing())
}

/// The gate itself, over all 15 tiny workloads.
#[test]
fn replay_reproduces_all_tiny_workloads() {
    for w in tiny_workloads() {
        let path = tmp_path(w.name());
        let (exec_stats, exec_sharing) = capture(w.as_ref(), &path, 1 << 20);
        let (mut rep_stats, rep_sharing) = replay(w.as_ref(), &path);
        assert_eq!(
            rep_stats.digest,
            exec_stats.digest,
            "{}: merged event digest",
            w.name()
        );
        assert_eq!(rep_stats.cycles, exec_stats.cycles, "{}: cycles", w.name());
        assert_eq!(rep_sharing, exec_sharing, "{}: pc_sharing", w.name());
        // The merged statistics match in full, not just the digest.
        rep_stats.name = exec_stats.name.clone();
        assert_eq!(rep_stats, exec_stats, "{}: full merged stats", w.name());
        std::fs::remove_file(&path).unwrap();
    }
}

/// A capacity of zero forces a spill after every issued instruction; the
/// container must come out byte-identical to the unspilled one.
#[test]
fn spilled_capture_is_byte_identical() {
    let workloads = tiny_workloads();
    let w = workloads
        .iter()
        .find(|w| w.name() == "bfs")
        .expect("bfs in tiny set");
    let big = tmp_path("bfs-unspilled");
    let small = tmp_path("bfs-spilled");
    capture(w.as_ref(), &big, usize::MAX);
    capture(w.as_ref(), &small, 0);
    let a = std::fs::read(&big).unwrap();
    let b = std::fs::read(&small).unwrap();
    assert_eq!(a, b, "spill path must not change the container");
    assert!(!a.is_empty());
    std::fs::remove_file(&big).unwrap();
    std::fs::remove_file(&small).unwrap();
}

/// Corruption matrix: truncations at every stride, bit flips at every
/// stride, a version-skewed header, and a geometry-mismatched replay all
/// fail with structured errors.
#[test]
fn corruption_matrix_fails_structured() {
    let workloads = tiny_workloads();
    let w = workloads
        .iter()
        .find(|w| w.name() == "spmv")
        .expect("spmv in tiny set");
    let path = tmp_path("spmv-corrupt");
    capture(w.as_ref(), &path, 1 << 20);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    parse_trace(&bytes).expect("pristine container parses");

    // Truncation at every stride (including the empty file and one byte
    // short) is Truncated/Malformed, never a panic or silent success.
    for n in (0..bytes.len()).step_by(131).chain([bytes.len() - 1]) {
        match parse_trace(&bytes[..n]) {
            Err(
                TraceError::Truncated
                | TraceError::Malformed(_)
                | TraceError::ChecksumMismatch { .. },
            ) => {}
            other => panic!("truncation to {n} gave {other:?}"),
        }
    }

    // Any single bit flip is caught (checksum layers cover every byte).
    for i in (0..bytes.len()).step_by(127).chain([0, bytes.len() - 1]) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        assert!(
            parse_trace(&bad).is_err(),
            "bit flip at byte {i} of {} accepted",
            bytes.len()
        );
    }

    // Version skew reports the versions by name, even with a checksum
    // recomputed to match (a genuinely future-format file).
    let mut skewed = bytes.clone();
    skewed[8..12].copy_from_slice(&(TRACE_VERSION + 1).to_le_bytes());
    let body_end = skewed.len() - 8;
    let fp = gcl_sim::fnv_fold_bytes(gcl_sim::FNV_OFFSET, &skewed[..body_end]);
    skewed[body_end..].copy_from_slice(&fp.to_le_bytes());
    match parse_trace(&skewed) {
        Err(TraceError::VersionMismatch { found, expected }) => {
            assert_eq!(found, TRACE_VERSION + 1);
            assert_eq!(expected, TRACE_VERSION);
        }
        other => panic!("version skew gave {other:?}"),
    }

    // Geometry mismatch: replaying against the wrong kernel set (a kernel
    // whose fingerprint matches nothing) or dropping a stream is rejected
    // by the replay driver, not silently absorbed.
    let trace = parse_trace(&bytes).unwrap();
    let mut gpu = Gpu::new(san_cfg()).unwrap();
    let kernels = w.kernels();
    let launch = &trace.launches[0];
    let kernel = kernels
        .iter()
        .find(|k| kernel_fingerprint(k) == launch.replay.kernel_fp)
        .unwrap();
    let mut short = launch.replay.clone();
    short.streams.pop();
    match gpu.launch_replay(kernel, &short) {
        Err(SimError::Replay(ReplayError::StreamCount { .. })) => {}
        other => panic!("geometry mismatch gave {other:?}"),
    }
    let other_kernel = kernels
        .iter()
        .find(|k| kernel_fingerprint(k) != launch.replay.kernel_fp);
    if let Some(other_k) = other_kernel {
        match gpu.launch_replay(other_k, &launch.replay) {
            Err(SimError::Replay(ReplayError::KernelMismatch { .. })) => {}
            other => panic!("kernel mismatch gave {other:?}"),
        }
    }
}

/// An aborted launch (fault mid-run) is discarded from the container and
/// the writer stays usable for subsequent launches.
#[test]
fn aborted_launch_discarded_from_container() {
    use gcl_ptx::{KernelBuilder, Type};
    use gcl_sim::{pack_params, Dim3};

    // A kernel that faults: stores through an unallocated address.
    let mut bad = KernelBuilder::new("oob_store");
    let tid = bad.thread_linear_id();
    let addr = bad.imm64(0xdead_0000);
    let a2 = bad.index64(addr, tid, 4);
    bad.st_global(Type::U32, a2, tid);
    bad.exit();
    let bad = bad.build().unwrap();

    let mut ok = KernelBuilder::new("fine");
    ok.exit();
    let ok = ok.build().unwrap();

    let mut cfg = san_cfg();
    cfg.memcheck = true;
    let path = tmp_path("abort");
    let writer = TraceWriter::create(&path, config_fingerprint(&cfg), 1 << 20).unwrap();
    let sink = Arc::new(Mutex::new(writer));
    let mut gpu = Gpu::new(cfg).unwrap();
    gpu.set_trace_sink(Some(Box::new(sink.clone())));
    let params = pack_params(&bad, &[]);
    gpu.launch(&bad, Dim3::x(1), Dim3::x(32), &params)
        .expect_err("out-of-bounds store must fault");
    let params = pack_params(&ok, &[]);
    gpu.launch(&ok, Dim3::x(1), Dim3::x(32), &params).unwrap();
    gpu.set_trace_sink(None);
    let writer = Arc::try_unwrap(sink)
        .expect("sink detached")
        .into_inner()
        .unwrap();
    let summary = writer.finish().unwrap();
    assert_eq!(summary.launches, 1, "faulted launch discarded");

    let trace = read_trace(&path).unwrap();
    assert_eq!(trace.launches.len(), 1);
    assert_eq!(trace.launches[0].kernel_name, "fine");
    std::fs::remove_file(&path).unwrap();
}
