//! Plain-text tables with CSV and JSON export.

use crate::json::{Json, JsonError};
use std::fmt;

/// One cell of a [`Table`].
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Text cell.
    Text(String),
    /// Integer cell.
    Int(i64),
    /// Unsigned integer cell.
    UInt(u64),
    /// Floating-point cell, printed with 3 decimal places.
    Float(f64),
    /// Percentage cell: `0.5` prints as `50.00%`.
    Percent(f64),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::UInt(v) => v.to_string(),
            Cell::Float(v) => format!("{v:.3}"),
            Cell::Percent(v) => format!("{:.2}%", v * 100.0),
        }
    }

    fn csv(&self) -> String {
        match self {
            Cell::Text(s) => {
                if s.contains([',', '"', '\n']) {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s.clone()
                }
            }
            other => other.render(),
        }
    }

    /// Encode as an externally-tagged JSON object, e.g. `{"UInt": 5}`.
    pub fn to_json_value(&self) -> Json {
        match self {
            Cell::Text(s) => Json::obj(vec![("Text", Json::Str(s.clone()))]),
            Cell::Int(v) => Json::obj(vec![("Int", Json::Int(*v))]),
            Cell::UInt(v) => Json::obj(vec![("UInt", Json::UInt(*v))]),
            Cell::Float(v) => Json::obj(vec![("Float", Json::Float(*v))]),
            Cell::Percent(v) => Json::obj(vec![("Percent", Json::Float(*v))]),
        }
    }

    /// Decode the externally-tagged form produced by [`Cell::to_json_value`].
    pub fn from_json_value(v: &Json) -> Result<Cell, JsonError> {
        let bad = |msg: &str| JsonError {
            message: msg.to_string(),
            offset: 0,
        };
        let Json::Obj(pairs) = v else {
            return Err(bad("cell must be a single-key object"));
        };
        let [(tag, inner)] = pairs.as_slice() else {
            return Err(bad("cell must have exactly one tag"));
        };
        match tag.as_str() {
            "Text" => inner
                .as_str()
                .map(|s| Cell::Text(s.to_string()))
                .ok_or_else(|| bad("Text cell needs a string")),
            "Int" => inner
                .as_i64()
                .map(Cell::Int)
                .ok_or_else(|| bad("Int cell needs an integer")),
            "UInt" => inner
                .as_u64()
                .map(Cell::UInt)
                .ok_or_else(|| bad("UInt cell needs an integer")),
            "Float" => inner
                .as_f64()
                .map(Cell::Float)
                .ok_or_else(|| bad("Float cell needs a number")),
            "Percent" => inner
                .as_f64()
                .map(Cell::Percent)
                .ok_or_else(|| bad("Percent cell needs a number")),
            other => Err(bad(&format!("unknown cell tag `{other}`"))),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Text(s)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Cell {
        Cell::UInt(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Cell {
        Cell::UInt(v as u64)
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Cell {
        Cell::Int(v)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Cell {
        Cell::Float(v)
    }
}

/// A titled table: the unit of reporting for the paper's Table I and for the
/// per-figure data dumps.
///
/// # Examples
///
/// ```
/// use gcl_stats::Table;
///
/// let mut t = Table::new("demo", vec!["name", "count"]);
/// t.row(vec!["bfs".into(), 42u64.into()]);
/// let text = t.to_string();
/// assert!(text.contains("bfs"));
/// assert!(t.to_csv().starts_with("name,count\n"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title, printed above the header.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows. Each row should have `headers.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Create an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<impl Into<String>>) -> Table {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Render as CSV (headers first, no title line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(Cell::csv).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            (
                "headers",
                Json::Arr(self.headers.iter().map(|h| Json::Str(h.clone())).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(Cell::to_json_value).collect()))
                        .collect(),
                ),
            ),
        ])
        .render_pretty()
    }

    /// Parse the format produced by [`Table::to_json`].
    pub fn from_json(text: &str) -> Result<Table, JsonError> {
        let v = Json::parse(text)?;
        let bad = |msg: &str| JsonError {
            message: msg.to_string(),
            offset: 0,
        };
        let title = v
            .get("title")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing `title`"))?
            .to_string();
        let headers = v
            .get("headers")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `headers`"))?
            .iter()
            .map(|h| {
                h.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad("header must be a string"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let rows = v
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `rows`"))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or_else(|| bad("row must be an array"))?
                    .iter()
                    .map(Cell::from_json_value)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Table {
            title,
            headers,
            rows,
        })
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        writeln!(f, "## {}", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", rule.join("  "))?;
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("t", vec!["app", "loads"]);
        t.row(vec!["bfs".into(), 12345u64.into()]);
        t.row(vec!["mst".into(), 7u64.into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "## t");
        // Data rows align on column boundaries.
        assert!(lines[3].contains("12345"));
        assert!(lines[4].ends_with("    7"));
    }

    #[test]
    fn csv_escapes_special_chars() {
        let mut t = Table::new("t", vec!["name"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["q\"x".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"x\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("t", vec!["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn cell_formats() {
        assert_eq!(Cell::Percent(0.5).render(), "50.00%");
        assert_eq!(Cell::Float(1.0 / 3.0).render(), "0.333");
        assert_eq!(Cell::Int(-3).render(), "-3");
    }

    #[test]
    fn json_round_trip() {
        let mut t = Table::new("t", vec!["a", "b", "c", "d", "e"]);
        t.row(vec![
            1u64.into(),
            (-3i64).into(),
            2.5.into(),
            Cell::Percent(0.5),
            "x,\"y\"".into(),
        ]);
        let j = t.to_json();
        let back = Table::from_json(&j).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_rejects_malformed_tables() {
        assert!(Table::from_json("{}").is_err());
        assert!(Table::from_json("{\"title\": \"t\", \"headers\": [1]}").is_err());
        assert!(Table::from_json(
            "{\"title\": \"t\", \"headers\": [], \"rows\": [[{\"Oops\": 1}]]}"
        )
        .is_err());
    }
}
