//! Log2-bucketed histograms for latency distributions: cheap to update in a
//! simulator hot loop, good enough for percentile reporting.

/// A histogram with one bucket per power of two (bucket `i` holds values
/// `v` with `floor(log2(v)) == i`; zero goes to bucket 0).
///
/// # Examples
///
/// ```
/// use gcl_stats::Histogram;
/// let mut h = Histogram::new();
/// for v in [1, 2, 3, 100, 1000] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.5) <= 8);
/// assert!(h.percentile(1.0) >= 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn add(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// An upper bound on the `p`-quantile (`0.0 ..= 1.0`): the inclusive
    /// upper edge of the bucket containing that quantile. Returns 0 when
    /// empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// The raw per-bucket counts (64 log2 buckets), for serialization.
    pub fn raw_buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuild a histogram from raw bucket counts written by
    /// [`raw_buckets`](Self::raw_buckets). Returns `None` unless exactly 64
    /// buckets are given; the sample count is recomputed from them.
    pub fn from_raw_buckets(buckets: Vec<u64>) -> Option<Histogram> {
        if buckets.len() != 64 {
            return None;
        }
        let count = buckets.iter().sum();
        Some(Histogram { buckets, count })
    }

    /// The non-empty buckets as `(bucket_upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                (
                    if i >= 63 {
                        u64::MAX
                    } else {
                        (1u64 << (i + 1)) - 1
                    },
                    c,
                )
            })
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = Histogram::new();
        h.add(0);
        h.add(1);
        h.add(2);
        h.add(3);
        h.add(4);
        // 0,1 -> bucket 0; 2,3 -> bucket 1; 4 -> bucket 2.
        assert_eq!(h.nonzero_buckets(), vec![(1, 2), (3, 2), (7, 1)]);
    }

    #[test]
    fn percentiles_are_monotone_upper_bounds() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.add(v);
        }
        let p50 = h.percentile(0.5);
        let p95 = h.percentile(0.95);
        let p100 = h.percentile(1.0);
        assert!(p50 <= p95 && p95 <= p100);
        assert!(p50 >= 500, "{p50}");
        assert!(p100 >= 1000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Histogram::new();
        a.add(5);
        let mut b = Histogram::new();
        b.add(5);
        b.add(500);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.nonzero_buckets().len(), 2);
    }

    #[test]
    fn huge_values_saturate_gracefully() {
        let mut h = Histogram::new();
        h.add(u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }
}
