//! A minimal JSON value type with a pretty printer and a recursive-descent
//! parser — just enough for the toolkit's table/figure export format, with
//! no external dependencies. Encoding of [`crate::Cell`] mirrors the
//! externally-tagged form (`{"UInt": 5}`) so existing dump consumers keep
//! working.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (rendered without decimal point).
    UInt(u64),
    /// Signed integer (rendered without decimal point).
    Int(i64),
    /// Floating point. `NaN`/infinite values render as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object: ordered key/value pairs (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for building an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Read as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Convert to `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Convert to `u64` if an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Convert to `i64` if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline-free body,
    /// matching conventional pretty-printed JSON.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Render on a single line with no whitespace — the newline-delimited
    /// JSON form the `gcl serve` protocol speaks.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            // Scalars render identically in both forms.
            other => other.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep integral floats distinguishable from ints on re-parse.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{v:.1}"));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Accepts exactly one top-level value.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after top-level value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_pretty())
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Json::parse`]: a message plus the byte offset it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our exports;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            message: format!("bad number `{text}`"),
            offset: start,
        })
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::UInt(18_446_744_073_709_551_615),
            Json::Int(-42),
            Json::Float(0.125),
            Json::Str("hi \"there\"\nline".to_string()),
        ] {
            let text = v.render_pretty();
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn compact_render_is_single_line_and_reparses() {
        let v = Json::obj(vec![
            ("op", Json::Str("submit".into())),
            ("n", Json::UInt(3)),
            ("list", Json::Arr(vec![Json::Bool(false), Json::Null])),
            ("empty", Json::Obj(vec![])),
        ]);
        let line = v.render_compact();
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(
            line,
            r#"{"op":"submit","n":3,"list":[false,null],"empty":{}}"#
        );
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn round_trips_nested() {
        let v = Json::obj(vec![
            ("title", Json::Str("t".into())),
            (
                "rows",
                Json::Arr(vec![Json::Arr(vec![
                    Json::obj(vec![("UInt", Json::UInt(5))]),
                    Json::obj(vec![("Float", Json::Float(2.5))]),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("none", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , 2.5 , \"héllo\" ] } ").unwrap();
        assert_eq!(
            v,
            Json::obj(vec![(
                "k",
                Json::Arr(vec![
                    Json::UInt(1),
                    Json::Float(2.5),
                    Json::Str("héllo".into())
                ])
            )])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let e = Json::parse("nul").unwrap_err();
        assert!(e.to_string().contains("null"));
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render_pretty(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render_pretty(), "null");
    }
}
