//! # gcl-stats — reporting primitives for the gcl toolkit
//!
//! Small, dependency-light building blocks used by the simulator and the
//! benchmark harnesses to report the paper's tables and figures:
//!
//! * [`Table`] — aligned plain-text tables with CSV/JSON export (Table I).
//! * [`FigureSeries`] — per-benchmark grouped/stacked series (Figures 1–12).
//! * [`ProfilerCounters`] — the CUDA-profiler counters of Table III, exposed
//!   by the simulator so the hardware-side measurements can be reproduced.
//! * [`Accumulator`] — min/max/mean accumulation for latency samples.
//!
//! ```
//! use gcl_stats::{FigureSeries, Series};
//!
//! let mut fig = FigureSeries::new("fig8", "L1 miss ratio", vec!["bfs"]);
//! fig.push(Series::new("N", vec![0.81]));
//! fig.push(Series::new("D", vec![0.64]));
//! println!("{fig}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod counters;
mod histogram;
mod json;
mod series;
mod table;

pub use counters::{Accumulator, ProfilerCounters};
pub use histogram::Histogram;
pub use json::{Json, JsonError};
pub use series::{FigureSeries, Series};
pub use table::{Cell, Table};
