//! Figure series: grouped / stacked per-benchmark data, as the paper's
//! figures present it.

use crate::Table;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One named series of values, aligned with a [`FigureSeries`]' x labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend name (e.g. `"L1 hit"` or `"Requests per warp"`).
    pub name: String,
    /// One value per x label. `NaN` renders as `-` (missing).
    pub values: Vec<f64>,
}

impl Series {
    /// Create a series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Series {
        Series { name: name.into(), values }
    }
}

/// Data behind one paper figure: x labels (benchmarks, or benchmark×class)
/// and one or more series (bars / stack components / lines).
///
/// # Examples
///
/// ```
/// use gcl_stats::{FigureSeries, Series};
///
/// let mut f = FigureSeries::new("fig1", "Load distribution", vec!["bfs", "mst"]);
/// f.push(Series::new("Deterministic", vec![0.6, 0.8]));
/// f.push(Series::new("Non-deterministic", vec![0.4, 0.2]));
/// assert!(f.to_string().contains("bfs"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Short id (`"fig3"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis labels.
    pub labels: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureSeries {
    /// Create an empty figure with the given x labels.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        labels: Vec<impl Into<String>>,
    ) -> FigureSeries {
        FigureSeries {
            id: id.into(),
            title: title.into(),
            labels: labels.into_iter().map(Into::into).collect(),
            series: Vec::new(),
        }
    }

    /// Append a series.
    ///
    /// # Panics
    ///
    /// Panics if the series length does not match the label count.
    pub fn push(&mut self, s: Series) {
        assert_eq!(
            s.values.len(),
            self.labels.len(),
            "series `{}` has {} values for {} labels",
            s.name,
            s.values.len(),
            self.labels.len()
        );
        self.series.push(s);
    }

    /// View as a [`Table`]: one row per x label, one column per series.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["label".to_string()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        let mut t = Table::new(format!("{} — {}", self.id, self.title), headers);
        for (i, label) in self.labels.iter().enumerate() {
            let mut row: Vec<crate::Cell> = vec![label.as_str().into()];
            for s in &self.series {
                let v = s.values[i];
                row.push(if v.is_nan() {
                    crate::Cell::Text("-".to_string())
                } else {
                    crate::Cell::Float(v)
                });
            }
            t.row(row);
        }
        t
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// Render as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figure serialization cannot fail")
    }
}

impl fmt::Display for FigureSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_view_has_label_column() {
        let mut fig = FigureSeries::new("f", "t", vec!["a", "b"]);
        fig.push(Series::new("s1", vec![1.0, 2.0]));
        let t = fig.to_table();
        assert_eq!(t.headers, vec!["label", "s1"]);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn nan_renders_as_dash() {
        let mut fig = FigureSeries::new("f", "t", vec!["a"]);
        fig.push(Series::new("s", vec![f64::NAN]));
        assert!(fig.to_string().contains('-'));
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn length_mismatch_panics() {
        let mut fig = FigureSeries::new("f", "t", vec!["a", "b"]);
        fig.push(Series::new("s", vec![1.0]));
    }

    #[test]
    fn json_round_trip() {
        let mut fig = FigureSeries::new("f", "t", vec!["a"]);
        fig.push(Series::new("s", vec![0.5]));
        let back: FigureSeries = serde_json::from_str(&fig.to_json()).unwrap();
        assert_eq!(back, fig);
    }
}
