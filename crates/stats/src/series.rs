//! Figure series: grouped / stacked per-benchmark data, as the paper's
//! figures present it.

use crate::json::{Json, JsonError};
use crate::Table;
use std::fmt;

/// One named series of values, aligned with a [`FigureSeries`]' x labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend name (e.g. `"L1 hit"` or `"Requests per warp"`).
    pub name: String,
    /// One value per x label. `NaN` renders as `-` (missing).
    pub values: Vec<f64>,
}

impl Series {
    /// Create a series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Series {
        Series {
            name: name.into(),
            values,
        }
    }
}

/// Data behind one paper figure: x labels (benchmarks, or benchmark×class)
/// and one or more series (bars / stack components / lines).
///
/// # Examples
///
/// ```
/// use gcl_stats::{FigureSeries, Series};
///
/// let mut f = FigureSeries::new("fig1", "Load distribution", vec!["bfs", "mst"]);
/// f.push(Series::new("Deterministic", vec![0.6, 0.8]));
/// f.push(Series::new("Non-deterministic", vec![0.4, 0.2]));
/// assert!(f.to_string().contains("bfs"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSeries {
    /// Short id (`"fig3"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis labels.
    pub labels: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureSeries {
    /// Create an empty figure with the given x labels.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        labels: Vec<impl Into<String>>,
    ) -> FigureSeries {
        FigureSeries {
            id: id.into(),
            title: title.into(),
            labels: labels.into_iter().map(Into::into).collect(),
            series: Vec::new(),
        }
    }

    /// Append a series.
    ///
    /// # Panics
    ///
    /// Panics if the series length does not match the label count.
    pub fn push(&mut self, s: Series) {
        assert_eq!(
            s.values.len(),
            self.labels.len(),
            "series `{}` has {} values for {} labels",
            s.name,
            s.values.len(),
            self.labels.len()
        );
        self.series.push(s);
    }

    /// View as a [`Table`]: one row per x label, one column per series.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["label".to_string()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        let mut t = Table::new(format!("{} — {}", self.id, self.title), headers);
        for (i, label) in self.labels.iter().enumerate() {
            let mut row: Vec<crate::Cell> = vec![label.as_str().into()];
            for s in &self.series {
                let v = s.values[i];
                row.push(if v.is_nan() {
                    crate::Cell::Text("-".to_string())
                } else {
                    crate::Cell::Float(v)
                });
            }
            t.row(row);
        }
        t
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// Render as pretty JSON. `NaN` values (missing data points) are
    /// encoded as `null`.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            (
                "labels",
                Json::Arr(self.labels.iter().map(|l| Json::Str(l.clone())).collect()),
            ),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::Str(s.name.clone())),
                                (
                                    "values",
                                    Json::Arr(s.values.iter().map(|v| Json::Float(*v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render_pretty()
    }

    /// Parse the format produced by [`FigureSeries::to_json`]. `null`
    /// values decode back to `NaN`.
    pub fn from_json(text: &str) -> Result<FigureSeries, JsonError> {
        let v = Json::parse(text)?;
        let bad = |msg: &str| JsonError {
            message: msg.to_string(),
            offset: 0,
        };
        let field = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
        let id = field("id").ok_or_else(|| bad("missing `id`"))?;
        let title = field("title").ok_or_else(|| bad("missing `title`"))?;
        let labels = v
            .get("labels")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `labels`"))?
            .iter()
            .map(|l| {
                l.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad("label must be a string"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let series = v
            .get("series")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `series`"))?
            .iter()
            .map(|s| {
                let name = s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("series missing `name`"))?
                    .to_string();
                let values = s
                    .get("values")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("series missing `values`"))?
                    .iter()
                    .map(|x| {
                        x.as_f64()
                            .ok_or_else(|| bad("series value must be numeric"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Series { name, values })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(FigureSeries {
            id,
            title,
            labels,
            series,
        })
    }
}

impl fmt::Display for FigureSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_view_has_label_column() {
        let mut fig = FigureSeries::new("f", "t", vec!["a", "b"]);
        fig.push(Series::new("s1", vec![1.0, 2.0]));
        let t = fig.to_table();
        assert_eq!(t.headers, vec!["label", "s1"]);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn nan_renders_as_dash() {
        let mut fig = FigureSeries::new("f", "t", vec!["a"]);
        fig.push(Series::new("s", vec![f64::NAN]));
        assert!(fig.to_string().contains('-'));
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn length_mismatch_panics() {
        let mut fig = FigureSeries::new("f", "t", vec!["a", "b"]);
        fig.push(Series::new("s", vec![1.0]));
    }

    #[test]
    fn json_round_trip() {
        let mut fig = FigureSeries::new("f", "t", vec!["a", "b"]);
        fig.push(Series::new("s", vec![0.5, 2.0]));
        let back = FigureSeries::from_json(&fig.to_json()).unwrap();
        assert_eq!(back, fig);
    }

    #[test]
    fn json_nan_round_trips_as_missing() {
        let mut fig = FigureSeries::new("f", "t", vec!["a"]);
        fig.push(Series::new("s", vec![f64::NAN]));
        let j = fig.to_json();
        assert!(j.contains("null"));
        let back = FigureSeries::from_json(&j).unwrap();
        assert!(back.series[0].values[0].is_nan());
    }
}
