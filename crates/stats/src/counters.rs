//! The CUDA-profiler counters of the paper's Table III.
//!
//! Our simulator exposes the same events the paper collected on the real
//! Tesla M2050, so that the hardware-profiler side of the evaluation can be
//! reproduced from simulation.

use std::fmt;

/// Aggregate profiler counters, named after Table III of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfilerCounters {
    /// `gld_request`: executed global load instructions per warp.
    pub gld_request: u64,
    /// `shared_load`: executed shared load instructions per warp.
    pub shared_load: u64,
    /// `l1_global_load_hit`: global load hits in L1.
    pub l1_global_load_hit: u64,
    /// `l1_global_load_miss`: global load misses in L1.
    pub l1_global_load_miss: u64,
    /// `l2_read_hit_sectors`: L1→L2 read sector hits (all slices summed).
    pub l2_read_hit_sectors: u64,
    /// `l2_read_sector_queries`: L1→L2 read sector queries (all slices).
    pub l2_read_sector_queries: u64,
}

impl ProfilerCounters {
    /// L1 miss ratio for global loads, or `NaN` with no accesses.
    pub fn l1_miss_ratio(&self) -> f64 {
        let total = self.l1_global_load_hit + self.l1_global_load_miss;
        if total == 0 {
            f64::NAN
        } else {
            self.l1_global_load_miss as f64 / total as f64
        }
    }

    /// L2 read miss ratio, or `NaN` with no queries.
    pub fn l2_miss_ratio(&self) -> f64 {
        if self.l2_read_sector_queries == 0 {
            f64::NAN
        } else {
            1.0 - self.l2_read_hit_sectors as f64 / self.l2_read_sector_queries as f64
        }
    }

    /// Shared loads per global load (the paper's Figure 9 metric), or 0 when
    /// no global loads executed.
    pub fn shared_per_global(&self) -> f64 {
        if self.gld_request == 0 {
            0.0
        } else {
            self.shared_load as f64 / self.gld_request as f64
        }
    }

    /// Element-wise sum, for aggregating across SMs.
    pub fn merge(&mut self, other: &ProfilerCounters) {
        self.gld_request += other.gld_request;
        self.shared_load += other.shared_load;
        self.l1_global_load_hit += other.l1_global_load_hit;
        self.l1_global_load_miss += other.l1_global_load_miss;
        self.l2_read_hit_sectors += other.l2_read_hit_sectors;
        self.l2_read_sector_queries += other.l2_read_sector_queries;
    }
}

impl fmt::Display for ProfilerCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "gld_request              {}", self.gld_request)?;
        writeln!(f, "shared_load              {}", self.shared_load)?;
        writeln!(f, "l1_global_load_hit       {}", self.l1_global_load_hit)?;
        writeln!(f, "l1_global_load_miss      {}", self.l1_global_load_miss)?;
        writeln!(f, "l2_read_hit_sectors      {}", self.l2_read_hit_sectors)?;
        writeln!(
            f,
            "l2_read_sector_queries   {}",
            self.l2_read_sector_queries
        )
    }
}

/// Minimum / maximum / sum / count accumulator for latency-like samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl Accumulator {
    /// Record one sample.
    pub fn add(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Arithmetic mean, or `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Render as a JSON object (`count`/`mean`/`min`/`max`), the shape the
    /// serve and fleet `status` verbs report queue-depth and wait-time
    /// samples in. An empty accumulator reports a `null` mean.
    pub fn to_json(&self) -> crate::Json {
        use crate::Json;
        Json::obj(vec![
            ("count", Json::UInt(self.count)),
            (
                "mean",
                if self.count == 0 {
                    Json::Null
                } else {
                    Json::Float(self.mean())
                },
            ),
            ("min", Json::Float(self.min)),
            ("max", Json::Float(self.max)),
        ])
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let c = ProfilerCounters {
            gld_request: 10,
            shared_load: 25,
            l1_global_load_hit: 30,
            l1_global_load_miss: 70,
            l2_read_hit_sectors: 40,
            l2_read_sector_queries: 100,
        };
        assert!((c.l1_miss_ratio() - 0.7).abs() < 1e-12);
        assert!((c.l2_miss_ratio() - 0.6).abs() < 1e-12);
        assert!((c.shared_per_global() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ratios_are_nan_or_zero() {
        let c = ProfilerCounters::default();
        assert!(c.l1_miss_ratio().is_nan());
        assert!(c.l2_miss_ratio().is_nan());
        assert_eq!(c.shared_per_global(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = ProfilerCounters {
            gld_request: 1,
            ..Default::default()
        };
        let b = ProfilerCounters {
            gld_request: 2,
            shared_load: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.gld_request, 3);
        assert_eq!(a.shared_load, 3);
    }

    #[test]
    fn accumulator_tracks_extremes_and_mean() {
        let mut acc = Accumulator::default();
        assert!(acc.mean().is_nan());
        acc.add(2.0);
        acc.add(6.0);
        acc.add(4.0);
        assert_eq!(acc.count, 3);
        assert_eq!(acc.min, 2.0);
        assert_eq!(acc.max, 6.0);
        assert!((acc.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_to_json_shape() {
        use crate::Json;
        let empty = Accumulator::default().to_json();
        assert!(matches!(empty.get("mean"), Some(Json::Null)));
        let mut acc = Accumulator::default();
        acc.add(2.0);
        acc.add(4.0);
        let j = acc.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("mean").and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.get("min").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("max").and_then(Json::as_f64), Some(4.0));
    }

    #[test]
    fn accumulator_merge() {
        let mut a = Accumulator::default();
        a.add(1.0);
        let mut b = Accumulator::default();
        b.add(9.0);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 9.0);
        let mut empty = Accumulator::default();
        empty.merge(&a);
        assert_eq!(empty, a);
    }
}
