//! Miss-status holding registers with request merging.

use crate::wire::{Dec, Enc, WireError};
use crate::{Cycle, MemRequest};
use std::collections::HashMap;

/// A fixed-capacity MSHR file.
///
/// One entry tracks one in-flight cache block; requests to the same block
/// merge into the entry up to a per-entry limit. This is the resource whose
/// exhaustion the paper calls *reservation fail by MSHRs*.
#[derive(Debug)]
pub struct Mshr {
    entries: HashMap<u64, Vec<MemRequest>>,
    capacity: usize,
    max_merged: usize,
}

impl Mshr {
    /// Create an MSHR file with `capacity` entries, each holding up to
    /// `max_merged` merged requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `max_merged` is zero.
    pub fn new(capacity: usize, max_merged: usize) -> Mshr {
        assert!(capacity > 0, "MSHR capacity must be positive");
        assert!(max_merged > 0, "MSHR merge limit must be positive");
        Mshr {
            entries: HashMap::new(),
            capacity,
            max_merged,
        }
    }

    /// Whether a *new* entry can be allocated.
    pub fn can_allocate(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Whether `block_addr` already has an in-flight entry.
    pub fn has_entry(&self, block_addr: u64) -> bool {
        self.entries.contains_key(&block_addr)
    }

    /// Whether a request for `block_addr` can merge into an existing entry.
    pub fn can_merge(&self, block_addr: u64) -> bool {
        self.entries
            .get(&block_addr)
            .is_some_and(|v| v.len() < self.max_merged)
    }

    /// Allocate a new entry for the request's block.
    ///
    /// # Panics
    ///
    /// Panics if the file is full or the block already has an entry; callers
    /// must check [`can_allocate`](Self::can_allocate) /
    /// [`has_entry`](Self::has_entry) first.
    pub fn allocate(&mut self, req: MemRequest) {
        assert!(self.can_allocate(), "MSHR file full");
        let prev = self.entries.insert(req.block_addr, vec![req]);
        assert!(prev.is_none(), "MSHR entry already exists for block");
    }

    /// Merge a request into the existing entry for its block.
    ///
    /// # Panics
    ///
    /// Panics if no entry exists or the entry is at its merge limit.
    pub fn merge(&mut self, req: MemRequest) {
        let entry = self
            .entries
            .get_mut(&req.block_addr)
            .expect("merging into missing MSHR entry");
        assert!(entry.len() < self.max_merged, "MSHR entry at merge limit");
        entry.push(req);
    }

    /// Remove and return all requests waiting on `block_addr` (called when
    /// the fill arrives). Returns an empty vec if there is no entry.
    pub fn take(&mut self, block_addr: u64) -> Vec<MemRequest> {
        self.entries.remove(&block_addr).unwrap_or_default()
    }

    /// Drop the entry for `block_addr` without releasing its waiters,
    /// returning whether one existed.
    ///
    /// This is a **fault-injection hook** for sanitizer tests (see
    /// `SanInject` in `gcl-sim`): it models a bookkeeping bug that loses an
    /// MSHR entry, which the conservation checker must catch as a
    /// response-without-request when the fill arrives. Never called on the
    /// normal simulation path.
    pub fn forget(&mut self, block_addr: u64) -> bool {
        self.entries.remove(&block_addr).is_some()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Oldest creation cycle among all pending requests, for deadlock
    /// diagnostics. `None` when empty.
    pub fn oldest_pending(&self) -> Option<Cycle> {
        self.entries
            .values()
            .flat_map(|v| v.iter().map(|r| r.t_created))
            .min()
    }

    /// Checkpoint-encode the live entries. Entries are written in sorted
    /// block-address order so the encoding is byte-stable; the merged-request
    /// order inside each entry (the fill release order) is preserved as-is.
    pub fn ckpt_encode(&self, e: &mut Enc) {
        let mut blocks: Vec<&u64> = self.entries.keys().collect();
        blocks.sort_unstable();
        e.usize(blocks.len());
        for b in blocks {
            e.u64(*b);
            e.seq(&self.entries[b], |e, r| r.ckpt_encode(e));
        }
    }

    /// Checkpoint-decode an MSHR file written by
    /// [`ckpt_encode`](Self::ckpt_encode), with limits from the (already
    /// validated) cache configuration.
    pub fn ckpt_decode(
        d: &mut Dec<'_>,
        capacity: usize,
        max_merged: usize,
    ) -> Result<Mshr, WireError> {
        let n = d.seq_len()?;
        if n > capacity {
            return Err(WireError::Malformed("MSHR entries exceed capacity"));
        }
        let mut entries = HashMap::with_capacity(n);
        for _ in 0..n {
            let block = d.u64()?;
            let reqs = d.seq(MemRequest::ckpt_decode)?;
            if reqs.is_empty() || reqs.len() > max_merged {
                return Err(WireError::Malformed("MSHR entry size out of range"));
            }
            if entries.insert(block, reqs).is_some() {
                return Err(WireError::Malformed("duplicate MSHR block"));
            }
        }
        Ok(Mshr {
            entries,
            capacity,
            max_merged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassTag;

    fn req(id: u64, addr: u64) -> MemRequest {
        MemRequest::read(id, addr, 0, ClassTag::Deterministic, 0, id)
    }

    #[test]
    fn allocate_then_merge_then_take() {
        let mut m = Mshr::new(2, 4);
        assert!(m.can_allocate());
        m.allocate(req(1, 0x80));
        assert!(m.has_entry(0x80));
        assert!(m.can_merge(0x80));
        m.merge(req(2, 0x80));
        let drained = m.take(0x80);
        assert_eq!(drained.len(), 2);
        assert!(m.is_empty());
        assert!(m.take(0x80).is_empty());
    }

    #[test]
    fn capacity_limits_new_entries() {
        let mut m = Mshr::new(1, 4);
        m.allocate(req(1, 0x0));
        assert!(!m.can_allocate());
        assert!(!m.can_merge(0x80)); // different block: no entry to merge into
    }

    #[test]
    fn merge_limit_enforced() {
        let mut m = Mshr::new(4, 2);
        m.allocate(req(1, 0x0));
        m.merge(req(2, 0x0));
        assert!(!m.can_merge(0x0));
    }

    #[test]
    #[should_panic(expected = "MSHR file full")]
    fn allocate_past_capacity_panics() {
        let mut m = Mshr::new(1, 1);
        m.allocate(req(1, 0x0));
        m.allocate(req(2, 0x80));
    }

    #[test]
    fn oldest_pending_scans_all_entries() {
        let mut m = Mshr::new(4, 4);
        assert_eq!(m.oldest_pending(), None);
        m.allocate(req(5, 0x0));
        m.allocate(req(3, 0x80));
        assert_eq!(m.oldest_pending(), Some(3));
    }
}
