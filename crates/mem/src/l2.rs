//! A memory partition: one L2 cache slice fronting one DRAM channel.

use crate::wire::{Dec, Enc, WireError};
use crate::{
    AccessOutcome, Cache, CacheConfig, CacheStats, Cycle, DramChannel, DramConfig, DramStats,
    MemRequest,
};
use std::collections::VecDeque;

/// Configuration of one memory partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// The L2 slice.
    pub l2: CacheConfig,
    /// The DRAM channel behind it.
    pub dram: DramConfig,
    /// Input queue depth (requests arriving from the interconnect).
    pub input_queue_len: usize,
}

impl PartitionConfig {
    /// Fermi-like defaults (Table II).
    pub fn fermi() -> PartitionConfig {
        PartitionConfig {
            l2: CacheConfig::fermi_l2_slice(),
            dram: DramConfig::fermi(),
            input_queue_len: 8,
        }
    }
}

/// A partition-internal lifecycle event, surfaced for the sanitizer's
/// request-conservation checker.
///
/// The conservation ledger lives outside the memory components, but two
/// transitions happen *inside* the partition where the simulator cannot
/// observe them: a miss entering the DRAM bank queues, and a write-through
/// store retiring at DRAM. When sanitizing, the partition records them here
/// (only for tagged requests, `san != 0`) and the simulator drains them via
/// [`L2Partition::pop_event`]. When sanitizing is off no request carries a
/// tag and the queue stays empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionEvent {
    /// A request left the L2 miss queue and entered a DRAM bank queue.
    DramEntered,
    /// A write-through store finished at DRAM (its final stage).
    WriteRetired,
}

/// One L2-slice + DRAM-channel memory partition.
///
/// Requests enter via [`enqueue`](Self::enqueue) (from the interconnect),
/// progress on each [`tick`](Self::tick), and leave as responses via
/// [`pop_response`](Self::pop_response). Write requests are write-through
/// and produce no response.
#[derive(Debug)]
pub struct L2Partition {
    cache: Cache,
    dram: DramChannel,
    input: VecDeque<MemRequest>,
    input_queue_len: usize,
    /// Head request that failed an L2 reservation, retried next cycle.
    retry: Option<MemRequest>,
    /// Miss popped from the L2 that found DRAM full, retried next cycle.
    miss_retry: Option<MemRequest>,
    responses: VecDeque<(Cycle, MemRequest)>,
    /// Sanitizer events for tagged requests (empty unless sanitizing).
    events: VecDeque<(u64, PartitionEvent)>,
}

impl L2Partition {
    /// Create a partition.
    pub fn new(cfg: PartitionConfig) -> L2Partition {
        L2Partition {
            cache: Cache::new(cfg.l2),
            dram: DramChannel::new(cfg.dram),
            input: VecDeque::new(),
            input_queue_len: cfg.input_queue_len,
            retry: None,
            miss_retry: None,
            responses: VecDeque::new(),
            events: VecDeque::new(),
        }
    }

    /// Whether the input queue has space this cycle.
    pub fn can_enqueue(&self) -> bool {
        self.input.len() < self.input_queue_len
    }

    /// Accept a request from the interconnect. Returns false when full.
    pub fn enqueue(&mut self, req: MemRequest) -> bool {
        if !self.can_enqueue() {
            return false;
        }
        self.input.push_back(req);
        true
    }

    /// Advance one cycle.
    pub fn tick(&mut self, cycle: Cycle) {
        // 1. DRAM completions fill the L2 and release waiting requests.
        while let Some(done) = self.dram.pop_ready(cycle) {
            if done.is_write {
                // Write-through completion: nothing waits on it.
                if done.san != 0 {
                    self.events
                        .push_back((done.san, PartitionEvent::WriteRetired));
                }
                continue;
            }
            let mut waiters = self.cache.fill(done.block_addr, cycle);
            if waiters.is_empty() {
                // No reserved line (shouldn't happen for reads) — respond to
                // the request itself so it is not lost.
                waiters.push(done);
            }
            for mut w in waiters {
                w.t_l2_done = cycle;
                self.responses.push_back((cycle + 1, w));
            }
        }

        // 2. Service the head input request (or the blocked retry).
        if let Some(req) = self.retry.take().or_else(|| self.input.pop_front()) {
            let hit_latency = Cycle::from(self.cache.config().hit_latency);
            match self.cache.access(req, cycle) {
                AccessOutcome::Hit => {
                    let mut done = req;
                    done.t_l2_done = cycle + hit_latency;
                    self.responses.push_back((cycle + hit_latency, done));
                }
                AccessOutcome::HitReserved | AccessOutcome::MissIssued => {}
                AccessOutcome::ReservationFailTags
                | AccessOutcome::ReservationFailMshr
                | AccessOutcome::ReservationFailIcnt => {
                    self.retry = Some(req);
                }
            }
        }

        // 3. Move one queued miss into DRAM.
        if let Some(miss) = self.miss_retry.take().or_else(|| self.cache.pop_miss()) {
            if self.dram.try_push(miss, cycle) {
                if miss.san != 0 {
                    self.events
                        .push_back((miss.san, PartitionEvent::DramEntered));
                }
            } else {
                self.miss_retry = Some(miss);
            }
        }

        // 4. DRAM scheduling.
        self.dram.tick(cycle);
    }

    /// Pop a ready response (read completions only).
    pub fn pop_response(&mut self, cycle: Cycle) -> Option<MemRequest> {
        if let Some(&(ready, _)) = self.responses.front() {
            if ready <= cycle {
                return self.responses.pop_front().map(|(_, r)| r);
            }
        }
        None
    }

    /// Pop a sanitizer lifecycle event for a tagged request, if any (see
    /// [`PartitionEvent`]). Always empty when sanitizing is off.
    pub fn pop_event(&mut self) -> Option<(u64, PartitionEvent)> {
        self.events.pop_front()
    }

    /// The partition's L2 slice, for fault-injection hooks in sanitizer
    /// tests (e.g. [`Cache::forget_mshr`]). Never used on the normal path.
    pub fn cache_mut(&mut self) -> &mut Cache {
        &mut self.cache
    }

    /// Whether the partition is fully drained.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
            && self.retry.is_none()
            && self.miss_retry.is_none()
            && self.responses.is_empty()
            && self.dram.is_empty()
            && self.cache.inflight() == 0
    }

    /// The L2 slice's statistics.
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// The DRAM channel's statistics.
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// Take and reset both the L2 and DRAM statistics.
    pub fn take_stats(&mut self) -> (CacheStats, DramStats) {
        (self.cache.take_stats(), self.dram.take_stats())
    }

    /// Checkpoint-encode the partition: L2 slice, DRAM channel, input queue,
    /// retry slots, response queue and pending sanitizer events.
    pub fn ckpt_encode(&self, e: &mut Enc) {
        self.cache.ckpt_encode(e);
        self.dram.ckpt_encode(e);
        let input: Vec<MemRequest> = self.input.iter().copied().collect();
        e.seq(&input, |e, r| r.ckpt_encode(e));
        e.opt(&self.retry, |e, r| r.ckpt_encode(e));
        e.opt(&self.miss_retry, |e, r| r.ckpt_encode(e));
        let responses: Vec<(Cycle, MemRequest)> = self.responses.iter().copied().collect();
        e.seq(&responses, |e, (at, r)| {
            e.u64(*at);
            r.ckpt_encode(e);
        });
        let events: Vec<(u64, PartitionEvent)> = self.events.iter().copied().collect();
        e.seq(&events, |e, (san, ev)| {
            e.u64(*san);
            e.u8(match ev {
                PartitionEvent::DramEntered => 0,
                PartitionEvent::WriteRetired => 1,
            });
        });
    }

    /// Checkpoint-decode a partition written by
    /// [`ckpt_encode`](Self::ckpt_encode) against configuration `cfg`.
    pub fn ckpt_decode(d: &mut Dec<'_>, cfg: PartitionConfig) -> Result<L2Partition, WireError> {
        let cache = Cache::ckpt_decode(d, cfg.l2)?;
        let dram = DramChannel::ckpt_decode(d, cfg.dram)?;
        let input: VecDeque<MemRequest> = d.seq(MemRequest::ckpt_decode)?.into();
        if input.len() > cfg.input_queue_len {
            return Err(WireError::Malformed("partition input queue overflow"));
        }
        let retry = d.opt(MemRequest::ckpt_decode)?;
        let miss_retry = d.opt(MemRequest::ckpt_decode)?;
        let responses: VecDeque<(Cycle, MemRequest)> = d
            .seq(|d| {
                let at = d.u64()?;
                let r = MemRequest::ckpt_decode(d)?;
                Ok((at, r))
            })?
            .into();
        let events: VecDeque<(u64, PartitionEvent)> = d
            .seq(|d| {
                let san = d.u64()?;
                let ev = match d.u8()? {
                    0 => PartitionEvent::DramEntered,
                    1 => PartitionEvent::WriteRetired,
                    _ => return Err(WireError::Malformed("partition event tag")),
                };
                Ok((san, ev))
            })?
            .into();
        Ok(L2Partition {
            cache,
            dram,
            input,
            input_queue_len: cfg.input_queue_len,
            retry,
            miss_retry,
            responses,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassTag;

    fn rd(id: u64, addr: u64) -> MemRequest {
        MemRequest::read(id, addr, 0, ClassTag::NonDeterministic, id, 0)
    }

    fn run(part: &mut L2Partition, until: Cycle) -> Vec<(Cycle, MemRequest)> {
        let mut out = Vec::new();
        for cycle in 0..until {
            part.tick(cycle);
            while let Some(r) = part.pop_response(cycle) {
                out.push((cycle, r));
            }
        }
        out
    }

    #[test]
    fn read_misses_to_dram_then_hits() {
        let mut part = L2Partition::new(PartitionConfig::fermi());
        assert!(part.enqueue(rd(1, 0x80)));
        let done = run(&mut part, 300);
        assert_eq!(done.len(), 1);
        let (t1, r1) = done[0];
        assert!(t1 >= 100, "DRAM latency not paid: {t1}");
        assert_eq!(r1.id, 1);
        assert_eq!(r1.t_l2_done, t1 - 1);

        // Same block again (the helper restarts the clock): L2 hit, fast.
        assert!(part.enqueue(rd(2, 0x80)));
        let done = run(&mut part, 400);
        assert_eq!(done.len(), 1);
        assert!(done[0].0 < 20, "expected L2 hit latency, got {}", done[0].0);
    }

    #[test]
    fn concurrent_same_block_requests_merge() {
        let mut part = L2Partition::new(PartitionConfig::fermi());
        part.enqueue(rd(1, 0x100));
        part.enqueue(rd(2, 0x100));
        let done = run(&mut part, 300);
        assert_eq!(done.len(), 2);
        // Both released by the same fill, one cycle apart at most.
        assert!(done[1].0 - done[0].0 <= 1);
    }

    #[test]
    fn writes_produce_no_response() {
        let mut part = L2Partition::new(PartitionConfig::fermi());
        part.enqueue(MemRequest::write(1, 0x80, 0, 0));
        let done = run(&mut part, 300);
        assert!(done.is_empty());
        assert!(part.is_empty());
        assert_eq!(part.cache_stats().writes_forwarded, 1);
        assert_eq!(part.dram_stats().serviced, 1);
    }

    #[test]
    fn input_queue_bound() {
        let cfg = PartitionConfig {
            input_queue_len: 2,
            ..PartitionConfig::fermi()
        };
        let mut part = L2Partition::new(cfg);
        assert!(part.enqueue(rd(1, 0x0)));
        assert!(part.enqueue(rd(2, 0x80)));
        assert!(!part.can_enqueue());
        assert!(!part.enqueue(rd(3, 0x100)));
    }

    #[test]
    fn drains_to_empty() {
        let mut part = L2Partition::new(PartitionConfig::fermi());
        for i in 0..8 {
            part.enqueue(rd(i, 0x80 * i));
        }
        run(&mut part, 2000);
        assert!(part.is_empty());
    }
}
