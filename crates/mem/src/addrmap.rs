//! Address-to-partition mapping, including the Section X "semi-global L2"
//! topology used by the A2 ablation.

/// How SMs and addresses map onto L2 partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Topology {
    /// The baseline: one unified L2, all partitions shared by all SMs;
    /// addresses interleave across all partitions.
    Unified,
    /// Section X-C's proposal: partitions are grouped into clusters, each
    /// serving a contiguous group of SMs. An SM only accesses the partitions
    /// of its own cluster (addresses interleave within the cluster), trading
    /// aggregate capacity for locality and shorter interconnect paths.
    Clustered {
        /// Number of SM/partition clusters.
        clusters: usize,
    },
}

/// Maps block addresses (and, for clustered topologies, the issuing SM) to a
/// memory partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrMap {
    n_partitions: usize,
    n_sms: usize,
    topology: L2Topology,
    /// Interleave granule in bytes (256 B, i.e. two 128 B lines, like Fermi).
    granule: u64,
}

impl AddrMap {
    /// Create a mapping for `n_partitions` partitions and `n_sms` SMs.
    ///
    /// # Panics
    ///
    /// Panics if a clustered topology does not divide the partitions and SMs
    /// evenly, or if any count is zero.
    pub fn new(n_partitions: usize, n_sms: usize, topology: L2Topology) -> AddrMap {
        assert!(n_partitions > 0 && n_sms > 0);
        if let L2Topology::Clustered { clusters } = topology {
            assert!(clusters > 0, "need at least one cluster");
            assert_eq!(
                n_partitions % clusters,
                0,
                "partitions ({n_partitions}) must divide evenly into {clusters} clusters"
            );
            assert_eq!(
                n_sms % clusters,
                0,
                "SMs ({n_sms}) must divide evenly into {clusters} clusters"
            );
        }
        AddrMap {
            n_partitions,
            n_sms,
            topology,
            granule: 256,
        }
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    /// The partition servicing `block_addr` for a request from `sm`.
    pub fn partition_of(&self, block_addr: u64, sm: usize) -> usize {
        debug_assert!(sm < self.n_sms);
        let g = (block_addr / self.granule) as usize;
        match self.topology {
            L2Topology::Unified => g % self.n_partitions,
            L2Topology::Clustered { clusters } => {
                let per_cluster = self.n_partitions / clusters;
                let sms_per_cluster = self.n_sms / clusters;
                let cluster = sm / sms_per_cluster;
                cluster * per_cluster + g % per_cluster
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_interleaves_across_all_partitions() {
        let m = AddrMap::new(6, 14, L2Topology::Unified);
        let parts: Vec<usize> = (0..6u64).map(|i| m.partition_of(i * 256, 0)).collect();
        assert_eq!(parts, vec![0, 1, 2, 3, 4, 5]);
        // SM id is irrelevant in unified mode.
        assert_eq!(m.partition_of(256, 0), m.partition_of(256, 13));
    }

    #[test]
    fn both_lines_of_a_granule_share_a_partition() {
        let m = AddrMap::new(6, 14, L2Topology::Unified);
        assert_eq!(m.partition_of(0, 0), m.partition_of(128, 0));
        assert_ne!(m.partition_of(0, 0), m.partition_of(256, 0));
    }

    #[test]
    fn clustered_routes_sm_to_its_cluster() {
        let m = AddrMap::new(6, 12, L2Topology::Clustered { clusters: 3 });
        // 2 partitions and 4 SMs per cluster.
        for sm in 0..4 {
            let p = m.partition_of(0, sm);
            assert!(p < 2, "sm {sm} -> partition {p}");
        }
        for sm in 8..12 {
            let p = m.partition_of(0, sm);
            assert!((4..6).contains(&p), "sm {sm} -> partition {p}");
        }
        // Addresses still interleave within the cluster.
        assert_ne!(m.partition_of(0, 0), m.partition_of(256, 0));
        assert_eq!(m.partition_of(0, 0), m.partition_of(512, 0));
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_clusters_panic() {
        let _ = AddrMap::new(6, 14, L2Topology::Clustered { clusters: 4 });
    }
}
