//! Memory requests flowing through the hierarchy.

use crate::wire::{Dec, Enc, WireError};

/// Simulation time, in GPU core cycles.
pub type Cycle = u64;

/// Load-class tag carried by requests for per-class accounting.
///
/// Mirrors [`gcl_core::LoadClass`](https://docs.rs/gcl-core) plus the cases
/// the classifier does not cover (stores, instruction fills, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassTag {
    /// Request from a deterministic load.
    Deterministic,
    /// Request from a non-deterministic load.
    NonDeterministic,
    /// Anything else (stores, atomics' write half, ...).
    Other,
}

impl ClassTag {
    /// Dense index for per-class counter arrays.
    pub fn index(self) -> usize {
        match self {
            ClassTag::Deterministic => 0,
            ClassTag::NonDeterministic => 1,
            ClassTag::Other => 2,
        }
    }

    /// All tags in [`index`](Self::index) order.
    pub const ALL: [ClassTag; 3] = [
        ClassTag::Deterministic,
        ClassTag::NonDeterministic,
        ClassTag::Other,
    ];

    /// Checkpoint-encode this tag as one byte.
    pub fn ckpt_encode(self, e: &mut Enc) {
        e.u8(self.index() as u8);
    }

    /// Checkpoint-decode a tag written by [`ckpt_encode`](Self::ckpt_encode).
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<ClassTag, WireError> {
        ClassTag::ALL
            .get(d.u8()? as usize)
            .copied()
            .ok_or(WireError::Malformed("class tag"))
    }
}

/// One cache-line-granular memory request.
///
/// Requests are small and `Copy`: the hierarchy clones them freely into MSHR
/// wait lists and queues. The `meta` field is opaque to the memory system —
/// the simulator packs whatever it needs to route completions back (e.g. an
/// index into its in-flight load table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemRequest {
    /// Unique id, assigned by the producer.
    pub id: u64,
    /// Block-aligned address (to [`crate::CacheConfig::line_bytes`]).
    pub block_addr: u64,
    /// True for stores (write-through, no-allocate).
    pub is_write: bool,
    /// Issuing SM, used to route the response back.
    pub sm_id: u16,
    /// Load-class tag for statistics.
    pub class: ClassTag,
    /// Opaque producer metadata (e.g. in-flight-load table index).
    pub meta: u64,
    /// Sanitizer tag: a launch-unique id assigned at coalescing when the
    /// request-conservation checker is on (see [`crate::RequestLedger`]).
    /// Zero means untracked; the memory system carries it but never reads it.
    pub san: u64,
    /// Cycle the coalescer created the request.
    pub t_created: Cycle,
    /// Cycle the L1 accepted the request (hit, merge, or miss reservation).
    pub t_l1_accepted: Cycle,
    /// Cycle the request was injected into the interconnect toward L2.
    pub t_icnt_inject: Cycle,
    /// Cycle L2 (or DRAM behind it) finished servicing the request.
    pub t_l2_done: Cycle,
    /// Cycle the response arrived back at the L1 / core.
    pub t_returned: Cycle,
}

impl MemRequest {
    /// Create a read request at `cycle`; timestamps other than `t_created`
    /// start at zero.
    pub fn read(
        id: u64,
        block_addr: u64,
        sm_id: u16,
        class: ClassTag,
        meta: u64,
        cycle: Cycle,
    ) -> MemRequest {
        MemRequest {
            id,
            block_addr,
            is_write: false,
            sm_id,
            class,
            meta,
            san: 0,
            t_created: cycle,
            t_l1_accepted: 0,
            t_icnt_inject: 0,
            t_l2_done: 0,
            t_returned: 0,
        }
    }

    /// Create a write request at `cycle`.
    pub fn write(id: u64, block_addr: u64, sm_id: u16, cycle: Cycle) -> MemRequest {
        MemRequest {
            is_write: true,
            ..MemRequest::read(id, block_addr, sm_id, ClassTag::Other, 0, cycle)
        }
    }

    /// Checkpoint-encode every field.
    pub fn ckpt_encode(&self, e: &mut Enc) {
        e.u64(self.id);
        e.u64(self.block_addr);
        e.bool(self.is_write);
        e.u16(self.sm_id);
        self.class.ckpt_encode(e);
        e.u64(self.meta);
        e.u64(self.san);
        e.u64(self.t_created);
        e.u64(self.t_l1_accepted);
        e.u64(self.t_icnt_inject);
        e.u64(self.t_l2_done);
        e.u64(self.t_returned);
    }

    /// Checkpoint-decode a request written by
    /// [`ckpt_encode`](Self::ckpt_encode).
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<MemRequest, WireError> {
        Ok(MemRequest {
            id: d.u64()?,
            block_addr: d.u64()?,
            is_write: d.bool()?,
            sm_id: d.u16()?,
            class: ClassTag::ckpt_decode(d)?,
            meta: d.u64()?,
            san: d.u64()?,
            t_created: d.u64()?,
            t_l1_accepted: d.u64()?,
            t_icnt_inject: d.u64()?,
            t_l2_done: d.u64()?,
            t_returned: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_tag_indices_are_dense_and_unique() {
        let idx: Vec<usize> = ClassTag::ALL.iter().map(|c| c.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn constructors_set_direction() {
        let r = MemRequest::read(1, 0x80, 3, ClassTag::Deterministic, 7, 100);
        assert!(!r.is_write);
        assert_eq!(r.t_created, 100);
        assert_eq!(r.meta, 7);
        let w = MemRequest::write(2, 0x100, 3, 101);
        assert!(w.is_write);
        assert_eq!(w.class, ClassTag::Other);
    }
}
