//! Crossbar interconnect between SMs and memory partitions.
//!
//! Two independent directions (requests toward partitions, responses toward
//! SMs), each a crossbar with bounded per-port input queues, per-output
//! round-robin arbitration (one packet per output per cycle) and a fixed hop
//! latency. The bounded input queues are what produce the paper's
//! *reservation fail by interconnection* back-pressure, and the per-output
//! serialization produces the Figure 7 "gap at L2-icnt" spread.

use crate::wire::{Dec, Enc, WireError};
use crate::{Cycle, MemRequest};
use std::collections::VecDeque;

/// Interconnect configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcntConfig {
    /// Cycles a packet spends in flight once arbitrated.
    pub hop_latency: u32,
    /// Capacity of each input queue.
    pub input_queue_len: usize,
    /// Packets each output port can accept per cycle.
    pub output_bandwidth: usize,
}

impl IcntConfig {
    /// Fermi-like defaults.
    pub fn fermi() -> IcntConfig {
        IcntConfig {
            hop_latency: 8,
            input_queue_len: 8,
            output_bandwidth: 1,
        }
    }
}

/// One direction of the crossbar.
#[derive(Debug)]
struct Xbar {
    cfg: IcntConfig,
    /// Per-input queues of (dest, request).
    inputs: Vec<VecDeque<(usize, MemRequest)>>,
    /// Per-output delivery queues of (ready_cycle, request).
    outputs: Vec<VecDeque<(Cycle, MemRequest)>>,
    /// Round-robin arbitration pointer per output.
    rr: Vec<usize>,
    /// Packets transferred (for utilization stats).
    transferred: u64,
}

impl Xbar {
    fn new(cfg: IcntConfig, n_in: usize, n_out: usize) -> Xbar {
        Xbar {
            cfg,
            inputs: (0..n_in).map(|_| VecDeque::new()).collect(),
            outputs: (0..n_out).map(|_| VecDeque::new()).collect(),
            rr: vec![0; n_out],
            transferred: 0,
        }
    }

    fn can_inject(&self, port: usize) -> bool {
        self.inputs[port].len() < self.cfg.input_queue_len
    }

    fn inject(&mut self, port: usize, dest: usize, req: MemRequest) -> bool {
        if !self.can_inject(port) {
            return false;
        }
        self.inputs[port].push_back((dest, req));
        true
    }

    fn tick(&mut self, cycle: Cycle) {
        let n_in = self.inputs.len();
        for out in 0..self.outputs.len() {
            let mut accepted = 0;
            // Round-robin over inputs; accept up to output_bandwidth packets
            // whose head-of-line destination is this output.
            for k in 0..n_in {
                if accepted >= self.cfg.output_bandwidth {
                    break;
                }
                let input = (self.rr[out] + k) % n_in;
                if let Some(&(dest, _)) = self.inputs[input].front() {
                    if dest == out {
                        let (_, req) = self.inputs[input].pop_front().unwrap();
                        self.outputs[out]
                            .push_back((cycle + Cycle::from(self.cfg.hop_latency), req));
                        self.transferred += 1;
                        accepted += 1;
                    }
                }
            }
            self.rr[out] = (self.rr[out] + 1) % n_in;
        }
    }

    fn pop_ready(&mut self, port: usize, cycle: Cycle) -> Option<MemRequest> {
        if let Some(&(ready, _)) = self.outputs[port].front() {
            if ready <= cycle {
                return self.outputs[port].pop_front().map(|(_, r)| r);
            }
        }
        None
    }

    fn is_empty(&self) -> bool {
        self.inputs.iter().all(VecDeque::is_empty) && self.outputs.iter().all(VecDeque::is_empty)
    }

    fn ckpt_encode(&self, e: &mut Enc) {
        e.usize(self.inputs.len());
        for q in &self.inputs {
            let v: Vec<(usize, MemRequest)> = q.iter().copied().collect();
            e.seq(&v, |e, (dest, r)| {
                e.usize(*dest);
                r.ckpt_encode(e);
            });
        }
        e.usize(self.outputs.len());
        for q in &self.outputs {
            let v: Vec<(Cycle, MemRequest)> = q.iter().copied().collect();
            e.seq(&v, |e, (at, r)| {
                e.u64(*at);
                r.ckpt_encode(e);
            });
        }
        e.seq(&self.rr, |e, &p| e.usize(p));
        e.u64(self.transferred);
    }

    fn ckpt_decode(
        d: &mut Dec<'_>,
        cfg: IcntConfig,
        n_in: usize,
        n_out: usize,
    ) -> Result<Xbar, WireError> {
        let ni = d.seq_len()?;
        if ni != n_in {
            return Err(WireError::Malformed("xbar input port count mismatch"));
        }
        let mut inputs = Vec::with_capacity(ni);
        for _ in 0..ni {
            let q: VecDeque<(usize, MemRequest)> = d
                .seq(|d| {
                    let dest = d.usize()?;
                    if dest >= n_out {
                        return Err(WireError::Malformed("xbar destination out of range"));
                    }
                    let r = MemRequest::ckpt_decode(d)?;
                    Ok((dest, r))
                })?
                .into();
            if q.len() > cfg.input_queue_len {
                return Err(WireError::Malformed("xbar input queue overflow"));
            }
            inputs.push(q);
        }
        let no = d.seq_len()?;
        if no != n_out {
            return Err(WireError::Malformed("xbar output port count mismatch"));
        }
        let mut outputs = Vec::with_capacity(no);
        for _ in 0..no {
            let q: VecDeque<(Cycle, MemRequest)> = d
                .seq(|d| {
                    let at = d.u64()?;
                    let r = MemRequest::ckpt_decode(d)?;
                    Ok((at, r))
                })?
                .into();
            outputs.push(q);
        }
        let rr = d.seq(|d| d.usize())?;
        if rr.len() != n_out || rr.iter().any(|&p| p >= n_in) {
            return Err(WireError::Malformed("xbar round-robin state invalid"));
        }
        let transferred = d.u64()?;
        Ok(Xbar {
            cfg,
            inputs,
            outputs,
            rr,
            transferred,
        })
    }
}

/// The full interconnect: SM→partition requests and partition→SM responses.
///
/// # Examples
///
/// ```
/// use gcl_mem::{ClassTag, Icnt, IcntConfig, MemRequest};
///
/// let mut icnt = Icnt::new(IcntConfig::fermi(), 2, 2);
/// let req = MemRequest::read(1, 0x80, 0, ClassTag::Deterministic, 0, 0);
/// assert!(icnt.inject_request(0, 1, req));
/// for cycle in 0..20 {
///     icnt.tick(cycle);
///     if let Some(r) = icnt.pop_request(1, cycle) {
///         assert_eq!(r.id, 1);
///         break;
///     }
/// }
/// ```
#[derive(Debug)]
pub struct Icnt {
    req: Xbar,
    resp: Xbar,
}

impl Icnt {
    /// Create an interconnect between `n_sms` cores and `n_parts` partitions.
    pub fn new(cfg: IcntConfig, n_sms: usize, n_parts: usize) -> Icnt {
        Icnt {
            req: Xbar::new(cfg, n_sms, n_parts),
            resp: Xbar::new(cfg, n_parts, n_sms),
        }
    }

    /// Whether SM `sm` can inject a request this cycle.
    pub fn can_inject_request(&self, sm: usize) -> bool {
        self.req.can_inject(sm)
    }

    /// Inject a request from SM `sm` toward partition `part`. Returns false
    /// when the input queue is full.
    pub fn inject_request(&mut self, sm: usize, part: usize, req: MemRequest) -> bool {
        self.req.inject(sm, part, req)
    }

    /// Pop a request delivered to partition `part`, if one is ready.
    pub fn pop_request(&mut self, part: usize, cycle: Cycle) -> Option<MemRequest> {
        self.req.pop_ready(part, cycle)
    }

    /// Whether partition `part` can inject a response this cycle.
    pub fn can_inject_response(&self, part: usize) -> bool {
        self.resp.can_inject(part)
    }

    /// Inject a response from partition `part` toward its SM.
    pub fn inject_response(&mut self, part: usize, req: MemRequest) -> bool {
        let sm = usize::from(req.sm_id);
        self.resp.inject(part, sm, req)
    }

    /// Pop a response delivered to SM `sm`, if one is ready.
    pub fn pop_response(&mut self, sm: usize, cycle: Cycle) -> Option<MemRequest> {
        self.resp.pop_ready(sm, cycle)
    }

    /// Advance both directions one cycle.
    pub fn tick(&mut self, cycle: Cycle) {
        self.req.tick(cycle);
        self.resp.tick(cycle);
    }

    /// Whether no packets are anywhere in the interconnect.
    pub fn is_empty(&self) -> bool {
        self.req.is_empty() && self.resp.is_empty()
    }

    /// Total packets transferred in each direction (requests, responses).
    pub fn transferred(&self) -> (u64, u64) {
        (self.req.transferred, self.resp.transferred)
    }

    /// Packets currently buffered in each direction (requests, responses) —
    /// a drainage diagnostic for the sanitizer's leak reports.
    pub fn in_flight(&self) -> (usize, usize) {
        let count = |x: &Xbar| {
            x.inputs.iter().map(VecDeque::len).sum::<usize>()
                + x.outputs.iter().map(VecDeque::len).sum::<usize>()
        };
        (count(&self.req), count(&self.resp))
    }

    /// Checkpoint-encode both crossbar directions (queues, round-robin
    /// pointers and transfer counters).
    pub fn ckpt_encode(&self, e: &mut Enc) {
        self.req.ckpt_encode(e);
        self.resp.ckpt_encode(e);
    }

    /// Checkpoint-decode an interconnect written by
    /// [`ckpt_encode`](Self::ckpt_encode) for the given topology.
    pub fn ckpt_decode(
        d: &mut Dec<'_>,
        cfg: IcntConfig,
        n_sms: usize,
        n_parts: usize,
    ) -> Result<Icnt, WireError> {
        Ok(Icnt {
            req: Xbar::ckpt_decode(d, cfg, n_sms, n_parts)?,
            resp: Xbar::ckpt_decode(d, cfg, n_parts, n_sms)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassTag;

    fn rd(id: u64) -> MemRequest {
        MemRequest::read(id, 0x80 * id, 0, ClassTag::Deterministic, 0, 0)
    }

    #[test]
    fn request_traverses_with_hop_latency() {
        let cfg = IcntConfig {
            hop_latency: 5,
            input_queue_len: 4,
            output_bandwidth: 1,
        };
        let mut icnt = Icnt::new(cfg, 1, 1);
        assert!(icnt.inject_request(0, 0, rd(1)));
        icnt.tick(0); // arbitrated at cycle 0, ready at 5
        assert!(icnt.pop_request(0, 4).is_none());
        assert_eq!(icnt.pop_request(0, 5).unwrap().id, 1);
    }

    #[test]
    fn input_queue_bound_back_pressures() {
        let cfg = IcntConfig {
            hop_latency: 1,
            input_queue_len: 2,
            output_bandwidth: 1,
        };
        let mut icnt = Icnt::new(cfg, 1, 1);
        assert!(icnt.inject_request(0, 0, rd(1)));
        assert!(icnt.inject_request(0, 0, rd(2)));
        assert!(!icnt.can_inject_request(0));
        assert!(!icnt.inject_request(0, 0, rd(3)));
        icnt.tick(0); // drains one
        assert!(icnt.can_inject_request(0));
    }

    #[test]
    fn output_serialization_one_per_cycle() {
        let cfg = IcntConfig {
            hop_latency: 0,
            input_queue_len: 8,
            output_bandwidth: 1,
        };
        let mut icnt = Icnt::new(cfg, 2, 1);
        icnt.inject_request(0, 0, rd(1));
        icnt.inject_request(1, 0, rd(2));
        icnt.tick(0);
        // Only one packet crossed in cycle 0.
        assert!(icnt.pop_request(0, 0).is_some());
        assert!(icnt.pop_request(0, 0).is_none());
        icnt.tick(1);
        assert!(icnt.pop_request(0, 1).is_some());
    }

    #[test]
    fn responses_route_by_sm_id() {
        let cfg = IcntConfig::fermi();
        let mut icnt = Icnt::new(cfg, 3, 1);
        let mut r = rd(9);
        r.sm_id = 2;
        assert!(icnt.inject_response(0, r));
        let mut found = None;
        for cycle in 0..32 {
            icnt.tick(cycle);
            for sm in 0..3 {
                if let Some(resp) = icnt.pop_response(sm, cycle) {
                    found = Some((sm, resp.id));
                }
            }
        }
        assert_eq!(found, Some((2, 9)));
        assert!(icnt.is_empty());
    }

    #[test]
    fn round_robin_is_fair_across_inputs() {
        let cfg = IcntConfig {
            hop_latency: 0,
            input_queue_len: 8,
            output_bandwidth: 1,
        };
        let mut icnt = Icnt::new(cfg, 2, 1);
        for i in 0..4 {
            icnt.inject_request(0, 0, rd(10 + i));
            icnt.inject_request(1, 0, rd(20 + i));
        }
        let mut order = Vec::new();
        for cycle in 0..8 {
            icnt.tick(cycle);
            while let Some(r) = icnt.pop_request(0, cycle) {
                order.push(r.id / 10);
            }
        }
        assert_eq!(order.len(), 8);
        // Neither input starves: both sources appear in the first four.
        let first4: std::collections::BTreeSet<u64> = order[..4].iter().copied().collect();
        assert_eq!(first4.len(), 2, "{order:?}");
    }
}
