//! # gcl-mem — GPU memory-hierarchy components
//!
//! Timing models for the memory system the paper measures: L1/L2 caches with
//! **reservation semantics** (tag, MSHR and miss-queue resources whose
//! exhaustion produces the paper's three reservation-failure classes), a
//! crossbar [`Icnt`] with bounded buffers, [`DramChannel`]s with bank and bus
//! contention, and [`L2Partition`]s composing an L2 slice with its channel.
//!
//! The components are *timing-only*: data movement is functional and handled
//! by the simulator ([`gcl-sim`](https://docs.rs/gcl-sim)); what flows here
//! are [`MemRequest`] descriptors stamped with per-stage timestamps, which
//! the simulator turns into the turnaround-time breakdowns of the paper's
//! Figures 5–7.
//!
//! ```
//! use gcl_mem::{AccessOutcome, Cache, CacheConfig, ClassTag, MemRequest};
//!
//! let mut l1 = Cache::new(CacheConfig::fermi_l1());
//! let req = MemRequest::read(1, 0x2000, 0, ClassTag::NonDeterministic, 0, 0);
//! assert_eq!(l1.access(req, 0), AccessOutcome::MissIssued);
//! let to_l2 = l1.pop_miss().unwrap();
//! // ... travels through Icnt -> L2Partition -> back ...
//! let done = l1.fill(to_l2.block_addr, 400);
//! assert_eq!(done.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod addrmap;
mod cache;
mod dram;
mod icnt;
mod l2;
mod mshr;
mod request;
mod san;
pub mod wire;

pub use addrmap::{AddrMap, L2Topology};
pub use cache::{AccessOutcome, Cache, CacheConfig, CacheStats};
pub use dram::{DramChannel, DramConfig, DramStats};
pub use icnt::{Icnt, IcntConfig};
pub use l2::{L2Partition, PartitionConfig, PartitionEvent};
pub use mshr::Mshr;
pub use request::{ClassTag, Cycle, MemRequest};
pub use san::{ConservationKind, ConservationReport, ReqInfo, RequestLedger, SanStage};
pub use wire::{unzigzag, zigzag, Dec, Enc, WireError};
