//! DRAM channel model: per-bank serialization, shared data bus, fixed access
//! latency plus load-dependent queueing.
//!
//! This is deliberately simpler than a full GDDR5 timing model; what the
//! paper's Figures 5 and 7 need is that (a) an unloaded access costs a fixed
//! latency and (b) bursty traffic queues behind busy banks and a
//! bandwidth-limited bus, stretching the tail of multi-request loads.

use crate::wire::{Dec, Enc, WireError};
use crate::{Cycle, MemRequest};
use std::collections::{BinaryHeap, VecDeque};

/// DRAM channel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Banks per channel.
    pub banks: usize,
    /// Fixed access latency in core cycles (the paper's Table II uses 100).
    pub access_latency: u32,
    /// Minimum cycles between successive completions on the channel's data
    /// bus (burst length / bandwidth model).
    pub data_bus_gap: u32,
    /// Cycles a bank stays busy per access (row activate + CAS + precharge).
    pub bank_busy: u32,
    /// Input queue depth.
    pub queue_len: usize,
}

impl DramConfig {
    /// Fermi-like defaults matching the paper's Table II (`DRAM latency 100`).
    pub fn fermi() -> DramConfig {
        DramConfig {
            banks: 8,
            access_latency: 100,
            data_bus_gap: 4,
            bank_busy: 16,
            queue_len: 32,
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
struct Completion {
    ready: Cycle,
    seq: u64,
    req_index: usize,
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by ready time (then by sequence for determinism).
        other.ready.cmp(&self.ready).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramStats {
    /// Requests serviced.
    pub serviced: u64,
    /// Sum of (completion - arrival) latencies.
    pub total_latency: u64,
    /// Peak queue occupancy observed.
    pub peak_queue: usize,
}

impl DramStats {
    /// Mean service latency, or `NaN` when nothing was serviced.
    pub fn mean_latency(&self) -> f64 {
        if self.serviced == 0 {
            f64::NAN
        } else {
            self.total_latency as f64 / self.serviced as f64
        }
    }
}

/// One DRAM channel.
///
/// Push requests with [`DramChannel::try_push`]; each call to
/// [`DramChannel::tick`] schedules newly-arrived requests onto banks; pull
/// finished requests with [`DramChannel::pop_ready`].
#[derive(Debug)]
pub struct DramChannel {
    cfg: DramConfig,
    queue: VecDeque<(Cycle, MemRequest)>,
    bank_free_at: Vec<Cycle>,
    bus_free_at: Cycle,
    completions: BinaryHeap<Completion>,
    finished: Vec<Option<MemRequest>>,
    seq: u64,
    stats: DramStats,
}

impl DramChannel {
    /// Create a channel.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `queue_len` is zero.
    pub fn new(cfg: DramConfig) -> DramChannel {
        assert!(cfg.banks > 0 && cfg.queue_len > 0);
        DramChannel {
            cfg,
            queue: VecDeque::new(),
            bank_free_at: vec![0; cfg.banks],
            bus_free_at: 0,
            completions: BinaryHeap::new(),
            finished: Vec::new(),
            seq: 0,
            stats: DramStats::default(),
        }
    }

    /// Whether the input queue has space.
    pub fn can_push(&self) -> bool {
        self.queue.len() < self.cfg.queue_len
    }

    /// Enqueue a request arriving at `cycle`. Returns false if full.
    pub fn try_push(&mut self, req: MemRequest, cycle: Cycle) -> bool {
        if !self.can_push() {
            return false;
        }
        self.queue.push_back((cycle, req));
        self.stats.peak_queue = self.stats.peak_queue.max(self.queue.len());
        true
    }

    fn bank_of(&self, block_addr: u64) -> usize {
        ((block_addr >> 7) % self.cfg.banks as u64) as usize
    }

    /// Schedule queued requests whose bank and bus are available.
    pub fn tick(&mut self, cycle: Cycle) {
        // FCFS: schedule from the head while resources allow. One schedule
        // per cycle models command bandwidth.
        if let Some(&(arrival, req)) = self.queue.front() {
            let bank = self.bank_of(req.block_addr);
            let start = cycle.max(self.bank_free_at[bank]).max(arrival);
            let done = start.max(self.bus_free_at) + Cycle::from(self.cfg.access_latency);
            self.bank_free_at[bank] = start + Cycle::from(self.cfg.bank_busy);
            self.bus_free_at = self.bus_free_at.max(start) + Cycle::from(self.cfg.data_bus_gap);
            self.queue.pop_front();
            let idx = self.finished.len();
            self.finished.push(Some(req));
            self.completions.push(Completion {
                ready: done,
                seq: self.seq,
                req_index: idx,
            });
            self.seq += 1;
            self.stats.serviced += 1;
            self.stats.total_latency += done - arrival;
        }
    }

    /// Pop a completed request at `cycle`, if any.
    pub fn pop_ready(&mut self, cycle: Cycle) -> Option<MemRequest> {
        if let Some(c) = self.completions.peek() {
            if c.ready <= cycle {
                let c = self.completions.pop().unwrap();
                return self.finished[c.req_index].take();
            }
        }
        None
    }

    /// Whether the channel has no queued or in-flight requests.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.completions.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Take and reset the statistics.
    pub fn take_stats(&mut self) -> DramStats {
        std::mem::take(&mut self.stats)
    }

    /// Checkpoint-encode the channel. The completion heap is written as a
    /// vector sorted by `(ready, seq)` so the encoding is byte-stable; the
    /// `finished` side table keeps its holes (completions reference entries
    /// by index).
    pub fn ckpt_encode(&self, e: &mut Enc) {
        let q: Vec<(Cycle, MemRequest)> = self.queue.iter().copied().collect();
        e.seq(&q, |e, (at, r)| {
            e.u64(*at);
            r.ckpt_encode(e);
        });
        e.seq(&self.bank_free_at, |e, &c| e.u64(c));
        e.u64(self.bus_free_at);
        let mut comps: Vec<&Completion> = self.completions.iter().collect();
        comps.sort_unstable_by_key(|c| (c.ready, c.seq));
        e.usize(comps.len());
        for c in comps {
            e.u64(c.ready);
            e.u64(c.seq);
            e.usize(c.req_index);
        }
        e.seq(&self.finished, |e, f| {
            e.opt(f, |e, r| r.ckpt_encode(e));
        });
        e.u64(self.seq);
        e.u64(self.stats.serviced);
        e.u64(self.stats.total_latency);
        e.usize(self.stats.peak_queue);
    }

    /// Checkpoint-decode a channel written by
    /// [`ckpt_encode`](Self::ckpt_encode) against configuration `cfg`.
    pub fn ckpt_decode(d: &mut Dec<'_>, cfg: DramConfig) -> Result<DramChannel, WireError> {
        let queue: VecDeque<(Cycle, MemRequest)> = d
            .seq(|d| {
                let at = d.u64()?;
                let r = MemRequest::ckpt_decode(d)?;
                Ok((at, r))
            })?
            .into();
        if queue.len() > cfg.queue_len {
            return Err(WireError::Malformed("DRAM queue overflow"));
        }
        let bank_free_at = d.seq(|d| d.u64())?;
        if bank_free_at.len() != cfg.banks {
            return Err(WireError::Malformed("DRAM bank count mismatch"));
        }
        let bus_free_at = d.u64()?;
        let n_comps = d.seq_len()?;
        let mut completions = BinaryHeap::with_capacity(n_comps);
        let mut comp_indices = Vec::with_capacity(n_comps);
        for _ in 0..n_comps {
            let ready = d.u64()?;
            let seq = d.u64()?;
            let req_index = d.usize()?;
            comp_indices.push(req_index);
            completions.push(Completion {
                ready,
                seq,
                req_index,
            });
        }
        let finished = d.seq(|d| d.opt(MemRequest::ckpt_decode))?;
        for &i in &comp_indices {
            if finished.get(i).is_none_or(Option::is_none) {
                return Err(WireError::Malformed("DRAM completion index dangling"));
            }
        }
        let seq = d.u64()?;
        let stats = DramStats {
            serviced: d.u64()?,
            total_latency: d.u64()?,
            peak_queue: d.usize()?,
        };
        Ok(DramChannel {
            cfg,
            queue,
            bank_free_at,
            bus_free_at,
            completions,
            finished,
            seq,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassTag;

    fn rd(id: u64, addr: u64) -> MemRequest {
        MemRequest::read(id, addr, 0, ClassTag::Deterministic, 0, 0)
    }

    fn drain(ch: &mut DramChannel, until: Cycle) -> Vec<(Cycle, u64)> {
        let mut out = Vec::new();
        for cycle in 0..until {
            ch.tick(cycle);
            while let Some(r) = ch.pop_ready(cycle) {
                out.push((cycle, r.id));
            }
        }
        out
    }

    #[test]
    fn unloaded_access_costs_fixed_latency() {
        let cfg = DramConfig {
            banks: 4,
            access_latency: 100,
            data_bus_gap: 4,
            bank_busy: 16,
            queue_len: 8,
        };
        let mut ch = DramChannel::new(cfg);
        assert!(ch.try_push(rd(1, 0), 0));
        let done = drain(&mut ch, 200);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 100);
    }

    #[test]
    fn same_bank_requests_serialize() {
        let cfg = DramConfig {
            banks: 4,
            access_latency: 100,
            data_bus_gap: 1,
            bank_busy: 50,
            queue_len: 8,
        };
        let mut ch = DramChannel::new(cfg);
        // Same bank: addresses differing by banks*128.
        ch.try_push(rd(1, 0), 0);
        ch.try_push(rd(2, 4 * 128), 0);
        let done = drain(&mut ch, 400);
        assert_eq!(done.len(), 2);
        let gap = done[1].0 - done[0].0;
        assert!(gap >= 49, "same-bank gap was {gap}");
    }

    #[test]
    fn different_banks_overlap() {
        let cfg = DramConfig {
            banks: 4,
            access_latency: 100,
            data_bus_gap: 1,
            bank_busy: 50,
            queue_len: 8,
        };
        let mut ch = DramChannel::new(cfg);
        ch.try_push(rd(1, 0), 0);
        ch.try_push(rd(2, 128), 0); // next bank
        let done = drain(&mut ch, 400);
        assert_eq!(done.len(), 2);
        let gap = done[1].0 - done[0].0;
        assert!(gap <= 3, "different-bank gap was {gap}");
    }

    #[test]
    fn bus_gap_limits_throughput() {
        let cfg = DramConfig {
            banks: 8,
            access_latency: 10,
            data_bus_gap: 20,
            bank_busy: 1,
            queue_len: 16,
        };
        let mut ch = DramChannel::new(cfg);
        for i in 0..4 {
            ch.try_push(rd(i, i * 128), 0);
        }
        let done = drain(&mut ch, 400);
        assert_eq!(done.len(), 4);
        for w in done.windows(2) {
            assert!(w[1].0 - w[0].0 >= 19, "{done:?}");
        }
    }

    #[test]
    fn queue_bound_back_pressures() {
        let cfg = DramConfig {
            banks: 1,
            access_latency: 100,
            data_bus_gap: 1,
            bank_busy: 100,
            queue_len: 2,
        };
        let mut ch = DramChannel::new(cfg);
        assert!(ch.try_push(rd(1, 0), 0));
        assert!(ch.try_push(rd(2, 0), 0));
        assert!(!ch.try_push(rd(3, 0), 0));
        ch.tick(0);
        assert!(ch.can_push());
    }

    #[test]
    fn mean_latency_tracks_queueing() {
        let cfg = DramConfig {
            banks: 1,
            access_latency: 100,
            data_bus_gap: 1,
            bank_busy: 100,
            queue_len: 8,
        };
        let mut ch = DramChannel::new(cfg);
        ch.try_push(rd(1, 0), 0);
        ch.try_push(rd(2, 0), 0);
        drain(&mut ch, 500);
        // Second request waited ~100 cycles behind the first.
        assert!(ch.stats().mean_latency() > 100.0);
        assert_eq!(ch.stats().serviced, 2);
    }
}
