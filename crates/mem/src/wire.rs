//! Minimal little-endian binary wire format for checkpoints.
//!
//! The simulator is dependency-free, so checkpoint serialization is a
//! hand-rolled encoder/decoder pair. The format is deliberately simple:
//! fixed-width little-endian integers, `u64` length prefixes for sequences,
//! one tag byte for enums and `Option`s. Byte-stability matters more than
//! compactness — two encodings of the same logical state must be identical
//! so the checkpoint content checksum is meaningful, which is why callers
//! serialize hash maps in sorted key order and heaps as sorted vectors.

/// A decode failure. Encoding is infallible; decoding validates everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A tag byte or structural invariant did not match any known value.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// An append-only encoder writing the wire format into a byte vector.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Create an empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64` (the format is 64-bit regardless of host).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Write an `f64` via its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append raw bytes with no framing. For callers that assemble a
    /// length-prefixed region from multiple pieces (write the total with
    /// [`Enc::usize`], then the pieces with `raw`).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Write an `Option` tag byte followed by the value when present.
    pub fn opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Enc, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    /// Write a `u64`-length-prefixed sequence.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Enc, &T)) {
        self.usize(items.len());
        for it in items {
            f(self, it);
        }
    }

    /// Write a `u64` as an LEB128-style varint: 7 value bits per byte,
    /// high bit set on every byte but the last. Small values take one
    /// byte; the trace columns lean on this for delta streams.
    pub fn varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7f) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Write an `i64` as a zigzag-mapped varint (see [`zigzag`]), the
    /// encoding of choice for deltas that hover around zero in either
    /// direction.
    pub fn svarint(&mut self, v: i64) {
        self.varint(zigzag(v));
    }
}

/// Map an `i64` onto a `u64` so that values near zero — of either sign —
/// stay small: 0 → 0, -1 → 1, 1 → 2, -2 → 3, ... The inverse is
/// [`unzigzag`].
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked cursor decoding the wire format from a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Create a decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` encoded as `u64`, rejecting values the host cannot
    /// represent.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Malformed("usize overflow"))
    }

    /// Read a sequence length, additionally bounded by the remaining input
    /// so corrupt lengths cannot trigger huge allocations.
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let n = self.usize()?;
        if n > self.remaining() {
            // Every element takes at least one byte, so a length beyond the
            // remaining byte count is structurally impossible.
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Read a bool, rejecting tag bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool tag")),
        }
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::Malformed("utf8 string"))
    }

    /// Read an `Option` written by [`Enc::opt`].
    pub fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Dec<'a>) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            _ => Err(WireError::Malformed("option tag")),
        }
    }

    /// Read a sequence written by [`Enc::seq`] into a `Vec`.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Dec<'a>) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let n = self.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Read a varint written by [`Enc::varint`]. Rejects encodings longer
    /// than ten bytes and non-canonical trailing bits that would overflow
    /// a `u64`.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            let payload = (b & 0x7f) as u64;
            if shift == 63 && payload > 1 {
                return Err(WireError::Malformed("varint overflow"));
            }
            v |= payload << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::Malformed("varint too long"))
    }

    /// Read a zigzag varint written by [`Enc::svarint`].
    pub fn svarint(&mut self) -> Result<i64, WireError> {
        Ok(unzigzag(self.varint()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut e = Enc::new();
        e.u8(0xab);
        e.u16(0x1234);
        e.u32(0xdead_beef);
        e.u64(0x0123_4567_89ab_cdef);
        e.bool(true);
        e.bool(false);
        e.f64(-1.5);
        e.str("hello");
        e.opt(&Some(7u64), |e, v| e.u64(*v));
        e.opt(&None::<u64>, |e, v| e.u64(*v));
        e.seq(&[1u32, 2, 3], |e, v| e.u32(*v));
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xab);
        assert_eq!(d.u16().unwrap(), 0x1234);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.f64().unwrap(), -1.5);
        assert_eq!(d.str().unwrap(), "hello");
        assert_eq!(d.opt(|d| d.u64()).unwrap(), Some(7));
        assert_eq!(d.opt(|d| d.u64()).unwrap(), None);
        assert_eq!(d.seq(|d| d.u32()).unwrap(), vec![1, 2, 3]);
        assert!(d.is_done());
    }

    #[test]
    fn truncation_detected() {
        let mut e = Enc::new();
        e.u64(42);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..5]);
        assert_eq!(d.u64(), Err(WireError::Truncated));
    }

    #[test]
    fn bad_tags_rejected() {
        let mut d = Dec::new(&[2]);
        assert_eq!(d.bool(), Err(WireError::Malformed("bool tag")));
        let mut d = Dec::new(&[9]);
        assert!(matches!(d.opt(|d| d.u8()), Err(WireError::Malformed(_))));
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        let pins: &[(u64, usize)] = &[
            (0, 1),
            (0x7f, 1),
            (0x80, 2),
            (0x3fff, 2),
            (0x4000, 3),
            (u64::MAX, 10),
        ];
        for &(v, len) in pins {
            let mut e = Enc::new();
            e.varint(v);
            let bytes = e.into_bytes();
            assert_eq!(bytes.len(), len, "encoded width of {v:#x}");
            let mut d = Dec::new(&bytes);
            assert_eq!(d.varint().unwrap(), v);
            assert!(d.is_done());
        }
    }

    #[test]
    fn varint_overflow_and_runon_rejected() {
        // Ten continuation bytes: an eleventh byte would be required.
        let mut d = Dec::new(&[0x80; 10]);
        assert!(matches!(d.varint(), Err(WireError::Malformed(_))));
        // Tenth byte carries more than the single bit a u64 has left.
        let mut d = Dec::new(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02]);
        assert!(matches!(d.varint(), Err(WireError::Malformed(_))));
        // Truncated mid-value.
        let mut d = Dec::new(&[0x80, 0x80]);
        assert_eq!(d.varint(), Err(WireError::Truncated));
    }

    #[test]
    fn zigzag_pins() {
        for (v, z) in [(0i64, 0u64), (-1, 1), (1, 2), (-2, 3), (2, 4)] {
            assert_eq!(zigzag(v), z);
            assert_eq!(unzigzag(z), v);
        }
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
        assert_eq!(unzigzag(zigzag(i64::MAX)), i64::MAX);
    }

    /// Random values across the full magnitude range round-trip through
    /// varint/svarint, including packed back-to-back in one buffer.
    #[test]
    fn varint_property_roundtrip() {
        gcl_rng::cases(0x7a5e_11a9, 300, |rng| {
            let n = rng.usize_below(20) + 1;
            let mut vals = Vec::with_capacity(n);
            let mut e = Enc::new();
            for _ in 0..n {
                // Bias toward small magnitudes with the occasional full
                // 64-bit value so every byte-width gets exercised.
                let shift = rng.u32_below(64);
                let u = rng.next_u64() >> shift;
                let s = unzigzag(rng.next_u64() >> shift);
                e.varint(u);
                e.svarint(s);
                vals.push((u, s));
            }
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            for (u, s) in vals {
                assert_eq!(d.varint().unwrap(), u);
                assert_eq!(d.svarint().unwrap(), s);
            }
            assert!(d.is_done());
        });
    }

    #[test]
    fn absurd_seq_len_rejected() {
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(d.seq(|d| d.u8()).is_err());
    }
}
