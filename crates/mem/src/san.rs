//! Request-conservation ledger: the memory-path half of the `simsan`
//! runtime sanitizer.
//!
//! Every aggregate the reproduction publishes is a fold over millions of
//! [`MemRequest`](crate::MemRequest) events, so a single request silently
//! lost or duplicated anywhere on the L1 → interconnect → L2 → DRAM path
//! corrupts results without failing a test. When sanitizing, the simulator
//! assigns each request a launch-unique nonzero tag (`MemRequest::san`) at
//! coalescing and drives its lifecycle through this ledger. The ledger
//! enforces the legal state machine at every transition and proves full
//! drainage at launch end; any deviation produces a structured
//! [`ConservationReport`].
//!
//! The ledger is deliberately component-agnostic: caches, the interconnect
//! and the partitions never see it. The simulator observes requests at the
//! seams it already touches (L1 access outcome, miss-queue drain,
//! interconnect inject/eject, partition enqueue/response) and the partition
//! surfaces its two internal transitions — DRAM entry and write
//! retirement — as [`PartitionEvent`](crate::PartitionEvent)s.

use crate::wire::{Dec, Enc, WireError};
use crate::{ClassTag, Cycle};
use std::collections::HashMap;
use std::fmt;

/// Lifecycle stage of one tracked request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanStage {
    /// Created by the coalescer, not yet accepted by the L1.
    Coalesced,
    /// L1 hit: completes locally after the hit latency.
    L1Hit,
    /// Merged into an existing L1 MSHR entry; released by that entry's fill.
    MshrMerged,
    /// L1 miss issued: line reserved, MSHR allocated, request in the miss
    /// queue awaiting interconnect injection.
    MissQueue,
    /// In flight toward a memory partition in the interconnect.
    IcntReq,
    /// Inside an L2 partition (input queue, L2 slice, or an L2 MSHR).
    L2,
    /// In a DRAM bank queue or being serviced by the channel.
    Dram,
    /// Response in flight back toward the SM in the interconnect.
    IcntResp,
    /// Response arrived at the SM; about to release its L1 waiters.
    Returned,
}

impl SanStage {
    fn can_advance_to(self, to: SanStage) -> bool {
        use SanStage::*;
        matches!(
            (self, to),
            (Coalesced, L1Hit | MshrMerged | MissQueue)
                | (MissQueue, IcntReq)
                | (IcntReq, L2)
                | (L2, Dram | IcntResp)
                | (Dram, IcntResp)
                | (IcntResp, Returned)
        )
    }

    fn can_retire(self) -> bool {
        use SanStage::*;
        // Reads retire when their fill releases them (lead from `Returned`,
        // merged waiters straight from `MshrMerged`, hits from `L1Hit`);
        // writes retire at DRAM; dropped prefetches retire unaccepted.
        matches!(self, Coalesced | L1Hit | MshrMerged | Returned | Dram)
    }

    /// All stages, in the order used by the checkpoint encoding.
    const ALL: [SanStage; 9] = [
        SanStage::Coalesced,
        SanStage::L1Hit,
        SanStage::MshrMerged,
        SanStage::MissQueue,
        SanStage::IcntReq,
        SanStage::L2,
        SanStage::Dram,
        SanStage::IcntResp,
        SanStage::Returned,
    ];

    /// Checkpoint-encode this stage as one byte.
    pub fn ckpt_encode(self, e: &mut Enc) {
        e.u8(SanStage::ALL.iter().position(|s| *s == self).unwrap() as u8);
    }

    /// Checkpoint-decode a stage written by [`ckpt_encode`](Self::ckpt_encode).
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<SanStage, WireError> {
        SanStage::ALL
            .get(d.u8()? as usize)
            .copied()
            .ok_or(WireError::Malformed("sanitizer stage tag"))
    }
}

impl fmt::Display for SanStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SanStage::Coalesced => "coalesced (awaiting L1)",
            SanStage::L1Hit => "L1 hit",
            SanStage::MshrMerged => "L1 MSHR (merged)",
            SanStage::MissQueue => "L1 miss queue",
            SanStage::IcntReq => "interconnect (request)",
            SanStage::L2 => "L2 partition",
            SanStage::Dram => "DRAM",
            SanStage::IcntResp => "interconnect (response)",
            SanStage::Returned => "returned to SM",
        })
    }
}

/// What a conservation check found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConservationKind {
    /// A request moved between two stages the state machine does not
    /// connect (e.g. a response for a request still in a miss queue).
    IllegalTransition {
        /// Stage the request was last seen in.
        from: SanStage,
        /// Stage the illegal event tried to move it to.
        to: SanStage,
    },
    /// An event arrived for an id the ledger no longer (or never) tracks —
    /// the signature of a duplicated response or completion.
    DoubleResponse {
        /// Stage the duplicate event tried to move the request to.
        to: SanStage,
    },
    /// A fill or response arrived for a block with no waiting request.
    ResponseWithoutRequest,
    /// Live requests remained at launch end: something in the hierarchy
    /// dropped them (leaked MSHR entry, lost packet, stuck queue).
    Leak {
        /// How many tracked requests never completed.
        live: u64,
    },
}

/// A structured request-conservation violation: which request, where it was
/// last seen, and what rule broke. The payload of
/// `SimError::Sanitizer` on the conservation path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservationReport {
    /// The violated rule.
    pub kind: ConservationKind,
    /// The sanitizer tag of the offending request (zero if unknown).
    pub san_id: u64,
    /// Issuing pc (`None` for prefetches and requests the ledger lost).
    pub pc: Option<usize>,
    /// D/N class of the request.
    pub class: ClassTag,
    /// Whether it was a store.
    pub is_write: bool,
    /// Block address the request targeted.
    pub block_addr: u64,
    /// SM that issued it.
    pub sm: u16,
    /// Last-known stage.
    pub stage: SanStage,
    /// Cycle of the request's last observed transition (for leaks) or of
    /// the violating event itself.
    pub cycle: Cycle,
}

impl fmt::Display for ConservationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request conservation violated: ")?;
        match self.kind {
            ConservationKind::IllegalTransition { from, to } => {
                write!(f, "illegal transition from `{from}` to `{to}`")?;
            }
            ConservationKind::DoubleResponse { to } => {
                write!(
                    f,
                    "event `{to}` for a request already completed (double response)"
                )?;
            }
            ConservationKind::ResponseWithoutRequest => {
                write!(f, "response arrived with no waiting request")?;
            }
            ConservationKind::Leak { live } => {
                write!(f, "{live} request(s) still live at launch end")?;
            }
        }
        let dir = if self.is_write { "store" } else { "load" };
        write!(
            f,
            "\n  request #{}: {dir} of block 0x{:x} from SM {}",
            self.san_id, self.block_addr, self.sm
        )?;
        if let Some(pc) = self.pc {
            write!(f, ", pc {pc}")?;
        }
        write!(
            f,
            "\n  class {:?}, last seen at stage `{}` (cycle {})",
            self.class, self.stage, self.cycle
        )
    }
}

/// Static facts about a request, recorded at creation time so violation
/// and leak reports can name the pc and class even after the request
/// vanished downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqInfo {
    /// Issuing pc (`None` for hardware prefetches).
    pub pc: Option<usize>,
    /// D/N class.
    pub class: ClassTag,
    /// Whether it is a store.
    pub is_write: bool,
    /// Target block address.
    pub block_addr: u64,
    /// Issuing SM.
    pub sm: u16,
}

#[derive(Debug, Clone, Copy)]
struct Tracked {
    info: ReqInfo,
    stage: SanStage,
    last_cycle: Cycle,
}

/// The conservation checker: every tracked request's current stage, with
/// legality enforced on each transition and a drainage proof at launch end.
#[derive(Debug, Default)]
pub struct RequestLedger {
    live: HashMap<u64, Tracked>,
    next_id: u64,
    created: u64,
    retired: u64,
}

impl RequestLedger {
    /// Create an empty ledger.
    pub fn new() -> RequestLedger {
        RequestLedger::default()
    }

    /// Register a freshly coalesced request and return its unique nonzero
    /// tag (to be stored in [`MemRequest::san`](crate::MemRequest::san)).
    pub fn create(&mut self, info: ReqInfo, cycle: Cycle) -> u64 {
        self.next_id += 1;
        self.created += 1;
        let id = self.next_id;
        self.live.insert(
            id,
            Tracked {
                info,
                stage: SanStage::Coalesced,
                last_cycle: cycle,
            },
        );
        id
    }

    fn unknown_report(&self, san_id: u64, to: SanStage, cycle: Cycle) -> Box<ConservationReport> {
        Box::new(ConservationReport {
            kind: ConservationKind::DoubleResponse { to },
            san_id,
            pc: None,
            class: ClassTag::Other,
            is_write: false,
            block_addr: 0,
            sm: 0,
            stage: to,
            cycle,
        })
    }

    /// Move a request to `to`, checking the transition is legal.
    ///
    /// # Errors
    ///
    /// [`ConservationKind::DoubleResponse`] if the id is not live,
    /// [`ConservationKind::IllegalTransition`] if the state machine does
    /// not connect the request's current stage to `to`.
    pub fn transition(
        &mut self,
        san_id: u64,
        to: SanStage,
        cycle: Cycle,
    ) -> Result<(), Box<ConservationReport>> {
        let Some(t) = self.live.get_mut(&san_id) else {
            return Err(self.unknown_report(san_id, to, cycle));
        };
        if !t.stage.can_advance_to(to) {
            return Err(Box::new(ConservationReport {
                kind: ConservationKind::IllegalTransition { from: t.stage, to },
                san_id,
                pc: t.info.pc,
                class: t.info.class,
                is_write: t.info.is_write,
                block_addr: t.info.block_addr,
                sm: t.info.sm,
                stage: t.stage,
                cycle,
            }));
        }
        t.stage = to;
        t.last_cycle = cycle;
        Ok(())
    }

    /// Complete a request (fill released it, local hit finished, or a write
    /// retired at DRAM) and drop it from the live set.
    ///
    /// # Errors
    ///
    /// [`ConservationKind::DoubleResponse`] if the id is not live (a second
    /// completion), [`ConservationKind::IllegalTransition`] if its current
    /// stage cannot retire.
    pub fn retire(&mut self, san_id: u64, cycle: Cycle) -> Result<(), Box<ConservationReport>> {
        let Some(t) = self.live.get(&san_id) else {
            return Err(self.unknown_report(san_id, SanStage::Returned, cycle));
        };
        if !t.stage.can_retire() {
            return Err(Box::new(ConservationReport {
                kind: ConservationKind::IllegalTransition {
                    from: t.stage,
                    to: SanStage::Returned,
                },
                san_id,
                pc: t.info.pc,
                class: t.info.class,
                is_write: t.info.is_write,
                block_addr: t.info.block_addr,
                sm: t.info.sm,
                stage: t.stage,
                cycle,
            }));
        }
        self.live.remove(&san_id);
        self.retired += 1;
        Ok(())
    }

    /// Build the report for a response that found no waiting request
    /// (empty fill) — the ledger cannot observe this itself, so the caller
    /// supplies the response's facts.
    pub fn response_without_request(
        &self,
        san_id: u64,
        block_addr: u64,
        sm: u16,
        class: ClassTag,
        cycle: Cycle,
    ) -> Box<ConservationReport> {
        Box::new(ConservationReport {
            kind: ConservationKind::ResponseWithoutRequest,
            san_id,
            pc: self.live.get(&san_id).and_then(|t| t.info.pc),
            class,
            is_write: false,
            block_addr,
            sm,
            stage: SanStage::Returned,
            cycle,
        })
    }

    /// Number of tracked requests not yet completed.
    pub fn live(&self) -> u64 {
        self.live.len() as u64
    }

    /// Total requests registered / completed so far.
    pub fn totals(&self) -> (u64, u64) {
        (self.created, self.retired)
    }

    /// Prove full drainage at launch end.
    ///
    /// # Errors
    ///
    /// [`ConservationKind::Leak`] naming the oldest-tagged live request as
    /// witness if anything is still tracked.
    pub fn check_drained(&self, _end_cycle: Cycle) -> Result<(), Box<ConservationReport>> {
        let Some((&id, t)) = self.live.iter().min_by_key(|(&id, _)| id) else {
            return Ok(());
        };
        Err(Box::new(ConservationReport {
            kind: ConservationKind::Leak {
                live: self.live.len() as u64,
            },
            san_id: id,
            pc: t.info.pc,
            class: t.info.class,
            is_write: t.info.is_write,
            block_addr: t.info.block_addr,
            sm: t.info.sm,
            stage: t.stage,
            cycle: t.last_cycle,
        }))
    }

    /// Checkpoint-encode the ledger: live requests (in sorted tag order for
    /// byte stability) plus the id and totals counters.
    pub fn ckpt_encode(&self, e: &mut Enc) {
        let mut ids: Vec<&u64> = self.live.keys().collect();
        ids.sort_unstable();
        e.usize(ids.len());
        for id in ids {
            let t = &self.live[id];
            e.u64(*id);
            e.opt(&t.info.pc, |e, &pc| e.usize(pc));
            t.info.class.ckpt_encode(e);
            e.bool(t.info.is_write);
            e.u64(t.info.block_addr);
            e.u16(t.info.sm);
            t.stage.ckpt_encode(e);
            e.u64(t.last_cycle);
        }
        e.u64(self.next_id);
        e.u64(self.created);
        e.u64(self.retired);
    }

    /// Checkpoint-decode a ledger written by
    /// [`ckpt_encode`](Self::ckpt_encode).
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<RequestLedger, WireError> {
        let n = d.seq_len()?;
        let mut live = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = d.u64()?;
            let pc = d.opt(|d| d.usize())?;
            let class = ClassTag::ckpt_decode(d)?;
            let is_write = d.bool()?;
            let block_addr = d.u64()?;
            let sm = d.u16()?;
            let stage = SanStage::ckpt_decode(d)?;
            let last_cycle = d.u64()?;
            let tracked = Tracked {
                info: ReqInfo {
                    pc,
                    class,
                    is_write,
                    block_addr,
                    sm,
                },
                stage,
                last_cycle,
            };
            if live.insert(id, tracked).is_some() {
                return Err(WireError::Malformed("duplicate ledger id"));
            }
        }
        let next_id = d.u64()?;
        let created = d.u64()?;
        let retired = d.u64()?;
        Ok(RequestLedger {
            live,
            next_id,
            created,
            retired,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(block: u64) -> ReqInfo {
        ReqInfo {
            pc: Some(7),
            class: ClassTag::NonDeterministic,
            is_write: false,
            block_addr: block,
            sm: 1,
        }
    }

    #[test]
    fn full_read_lifecycle_is_legal() {
        let mut led = RequestLedger::new();
        let id = led.create(info(0x80), 10);
        assert_ne!(id, 0);
        for (stage, cyc) in [
            (SanStage::MissQueue, 11),
            (SanStage::IcntReq, 12),
            (SanStage::L2, 20),
            (SanStage::Dram, 25),
            (SanStage::IcntResp, 130),
            (SanStage::Returned, 140),
        ] {
            led.transition(id, stage, cyc).unwrap();
        }
        led.retire(id, 140).unwrap();
        assert_eq!(led.live(), 0);
        assert_eq!(led.totals(), (1, 1));
        led.check_drained(200).unwrap();
    }

    #[test]
    fn merged_and_hit_requests_retire_from_their_stage() {
        let mut led = RequestLedger::new();
        let hit = led.create(info(0x80), 1);
        led.transition(hit, SanStage::L1Hit, 1).unwrap();
        led.retire(hit, 3).unwrap();
        let merged = led.create(info(0x100), 2);
        led.transition(merged, SanStage::MshrMerged, 2).unwrap();
        led.retire(merged, 90).unwrap();
        assert_eq!(led.live(), 0);
    }

    #[test]
    fn illegal_transition_reports_both_stages_and_pc() {
        let mut led = RequestLedger::new();
        let id = led.create(info(0x40), 5);
        // Coalesced -> Returned skips the entire path.
        let report = led.transition(id, SanStage::Returned, 6).unwrap_err();
        assert_eq!(
            report.kind,
            ConservationKind::IllegalTransition {
                from: SanStage::Coalesced,
                to: SanStage::Returned,
            }
        );
        assert_eq!(report.pc, Some(7));
        assert_eq!(report.san_id, id);
        let text = report.to_string();
        assert!(text.contains("illegal transition"), "{text}");
        assert!(text.contains("coalesced"), "{text}");
        assert!(text.contains("pc 7"), "{text}");
    }

    #[test]
    fn double_retire_is_a_double_response() {
        let mut led = RequestLedger::new();
        let id = led.create(info(0x80), 1);
        led.transition(id, SanStage::L1Hit, 1).unwrap();
        led.retire(id, 2).unwrap();
        let report = led.retire(id, 3).unwrap_err();
        assert!(matches!(
            report.kind,
            ConservationKind::DoubleResponse { .. }
        ));
        assert!(report.to_string().contains("double response"));
    }

    #[test]
    fn leak_reports_oldest_live_request() {
        let mut led = RequestLedger::new();
        let a = led.create(info(0x80), 1);
        let b = led.create(info(0x100), 2);
        led.transition(a, SanStage::MissQueue, 3).unwrap();
        led.transition(a, SanStage::IcntReq, 4).unwrap();
        let report = led.check_drained(1000).unwrap_err();
        assert_eq!(report.kind, ConservationKind::Leak { live: 2 });
        assert_eq!(report.san_id, a.min(b));
        assert_eq!(report.stage, SanStage::IcntReq);
        assert_eq!(report.cycle, 4);
        let text = report.to_string();
        assert!(text.contains("still live"), "{text}");
        assert!(text.contains("interconnect (request)"), "{text}");
    }

    #[test]
    fn response_without_request_renders() {
        let led = RequestLedger::new();
        let report = led.response_without_request(42, 0x1200, 3, ClassTag::Deterministic, 77);
        assert_eq!(report.kind, ConservationKind::ResponseWithoutRequest);
        let text = report.to_string();
        assert!(text.contains("no waiting request"), "{text}");
        assert!(text.contains("0x1200"), "{text}");
        assert!(text.contains("SM 3"), "{text}");
    }

    #[test]
    fn writes_retire_from_dram() {
        let mut led = RequestLedger::new();
        let w = led.create(
            ReqInfo {
                is_write: true,
                ..info(0x80)
            },
            1,
        );
        led.transition(w, SanStage::MissQueue, 1).unwrap();
        led.transition(w, SanStage::IcntReq, 2).unwrap();
        led.transition(w, SanStage::L2, 3).unwrap();
        led.transition(w, SanStage::Dram, 4).unwrap();
        led.retire(w, 110).unwrap();
        led.check_drained(200).unwrap();
    }
}
