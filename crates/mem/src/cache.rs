//! Set-associative cache with tag-array reservation, MSHR merging and a
//! bounded miss queue — the L1/L2 data cache model of the paper.
//!
//! Every access attempt consumes one cache cycle and produces one of the six
//! outcomes of the paper's Figure 3: *hit*, *hit reserved*, *miss* (issued),
//! or a reservation failure by *tags*, *MSHRs* or *interconnect* (miss-queue
//! space). Failed accesses are retried by the caller on a later cycle.

use crate::wire::{Dec, Enc, WireError};
use crate::{ClassTag, Cycle, MemRequest, Mshr};

/// Geometry and resource limits of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes. Must be a power of two.
    pub line_bytes: u32,
    /// MSHR entries.
    pub mshr_entries: usize,
    /// Maximum requests merged per MSHR entry.
    pub mshr_max_merge: usize,
    /// Miss-queue depth (models interconnect injection buffering).
    pub miss_queue_len: usize,
    /// Hit latency in cycles (pipelined).
    pub hit_latency: u32,
}

impl CacheConfig {
    /// The paper's Tesla C2050 L1: 16 KB, 128 B lines, 4-way, 64 MSHRs.
    pub fn fermi_l1() -> CacheConfig {
        CacheConfig {
            sets: 32,
            ways: 4,
            line_bytes: 128,
            mshr_entries: 64,
            mshr_max_merge: 8,
            miss_queue_len: 8,
            hit_latency: 1,
        }
    }

    /// One slice of the paper's 768 KB unified 8-way L2 (per partition,
    /// 6 partitions): 128 KB, 128 B lines, 8-way, 32 MSHRs.
    pub fn fermi_l2_slice() -> CacheConfig {
        CacheConfig {
            sets: 128,
            ways: 8,
            line_bytes: 128,
            mshr_entries: 32,
            mshr_max_merge: 8,
            miss_queue_len: 8,
            hit_latency: 4,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes as usize
    }

    /// Align an address down to its line base.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr & !u64::from(self.line_bytes - 1)
    }
}

/// Outcome of one access attempt (the categories of the paper's Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// Data present: completes after [`CacheConfig::hit_latency`].
    Hit,
    /// Line is in flight for an earlier miss; request merged into its MSHR.
    HitReserved,
    /// Miss accepted: line reserved, MSHR allocated, request queued downstream.
    MissIssued,
    /// No evictable line in the set (all reserved) — retry later.
    ReservationFailTags,
    /// No MSHR entry available (or merge limit reached) — retry later.
    ReservationFailMshr,
    /// Miss queue (interconnect injection buffer) full — retry later.
    ReservationFailIcnt,
}

impl AccessOutcome {
    /// Whether the access was accepted (no retry needed).
    pub fn accepted(self) -> bool {
        matches!(
            self,
            AccessOutcome::Hit | AccessOutcome::HitReserved | AccessOutcome::MissIssued
        )
    }

    /// Dense index for counter arrays, in Figure 3's legend order.
    pub fn index(self) -> usize {
        match self {
            AccessOutcome::Hit => 0,
            AccessOutcome::HitReserved => 1,
            AccessOutcome::MissIssued => 2,
            AccessOutcome::ReservationFailTags => 3,
            AccessOutcome::ReservationFailMshr => 4,
            AccessOutcome::ReservationFailIcnt => 5,
        }
    }

    /// All outcomes in [`index`](Self::index) order.
    pub const ALL: [AccessOutcome; 6] = [
        AccessOutcome::Hit,
        AccessOutcome::HitReserved,
        AccessOutcome::MissIssued,
        AccessOutcome::ReservationFailTags,
        AccessOutcome::ReservationFailMshr,
        AccessOutcome::ReservationFailIcnt,
    ];
}

/// Per-cache statistics: access attempts by outcome, split by load class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `attempts[outcome][class]` — access attempts (cache cycles consumed).
    pub attempts: [[u64; 3]; 6],
    /// Fills received from downstream.
    pub fills: u64,
    /// Write (write-through) accesses forwarded downstream.
    pub writes_forwarded: u64,
}

impl CacheStats {
    /// Record one access attempt.
    fn record(&mut self, outcome: AccessOutcome, class: ClassTag) {
        self.attempts[outcome.index()][class.index()] += 1;
    }

    /// Total attempts for `outcome` across classes.
    pub fn outcome_total(&self, outcome: AccessOutcome) -> u64 {
        self.attempts[outcome.index()].iter().sum()
    }

    /// Total attempts for (`outcome`, `class`).
    pub fn outcome_class(&self, outcome: AccessOutcome, class: ClassTag) -> u64 {
        self.attempts[outcome.index()][class.index()]
    }

    /// Read accesses *accepted* for `class` (hit + hit-reserved + miss).
    pub fn accepted(&self, class: ClassTag) -> u64 {
        AccessOutcome::ALL
            .iter()
            .filter(|o| o.accepted())
            .map(|o| self.outcome_class(*o, class))
            .sum()
    }

    /// Miss ratio for `class`: misses (issued or merged) over accepted
    /// accesses. Hit-reserved counts as a miss — the data was not present.
    pub fn miss_ratio(&self, class: ClassTag) -> f64 {
        let hits = self.outcome_class(AccessOutcome::Hit, class);
        let total = self.accepted(class);
        if total == 0 {
            f64::NAN
        } else {
            1.0 - hits as f64 / total as f64
        }
    }

    /// Merge another cache's stats into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        for o in 0..6 {
            for c in 0..3 {
                self.attempts[o][c] += other.attempts[o][c];
            }
        }
        self.fills += other.fills;
        self.writes_forwarded += other.writes_forwarded;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    Invalid,
    /// Tag allocated, data still in flight (the *hit reserved* state).
    Reserved,
    Valid,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    last_use: u64,
}

/// A set-associative, LRU, write-through/no-write-allocate cache with
/// reservation semantics.
///
/// The cache does not move data (the simulator executes functionally); it
/// models *timing and resource occupancy*. Misses are pulled from the miss
/// queue by the downstream component via [`Cache::pop_miss`], and completed
/// by calling [`Cache::fill`].
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    mshr: Mshr,
    miss_queue: std::collections::VecDeque<MemRequest>,
    stats: CacheStats,
    use_tick: u64,
}

impl Cache {
    /// Create a cache with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or any
    /// resource limit is zero.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways > 0 && cfg.miss_queue_len > 0);
        Cache {
            cfg,
            lines: vec![
                Line {
                    tag: 0,
                    state: LineState::Invalid,
                    last_use: 0
                };
                cfg.sets * cfg.ways
            ],
            mshr: Mshr::new(cfg.mshr_entries, cfg.mshr_max_merge),
            miss_queue: std::collections::VecDeque::new(),
            stats: CacheStats::default(),
            use_tick: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Take and reset the statistics (used when the cache persists across
    /// kernel launches but stats are reported per launch).
    pub fn take_stats(&mut self) -> CacheStats {
        std::mem::take(&mut self.stats)
    }

    fn set_of(&self, block_addr: u64) -> usize {
        ((block_addr / u64::from(self.cfg.line_bytes)) % self.cfg.sets as u64) as usize
    }

    fn set_lines(&mut self, set: usize) -> &mut [Line] {
        let w = self.cfg.ways;
        &mut self.lines[set * w..(set + 1) * w]
    }

    /// Attempt one access. Consumes a cache cycle; records stats; on
    /// `MissIssued`/`HitReserved` the request is retained internally and will
    /// be returned by a later [`fill`](Self::fill).
    ///
    /// Writes are write-through / no-write-allocate: they require miss-queue
    /// space only, invalidate a matching valid line (write-evict), and are
    /// forwarded downstream. A write to a *reserved* line fails with
    /// `ReservationFailTags` (must wait for the in-flight fill).
    pub fn access(&mut self, mut req: MemRequest, cycle: Cycle) -> AccessOutcome {
        debug_assert_eq!(
            req.block_addr,
            self.cfg.block_of(req.block_addr),
            "request address must be block-aligned"
        );
        self.use_tick += 1;
        let tick = self.use_tick;
        let set = self.set_of(req.block_addr);
        let class = req.class;

        if req.is_write {
            let outcome = self.access_write(req, set, tick);
            self.stats.record(outcome, class);
            return outcome;
        }

        // Probe tags.
        let ways = self.cfg.ways;
        let mut hit_way = None;
        let mut reserved_way = None;
        {
            let lines = self.set_lines(set);
            for (w, line) in lines.iter().enumerate().take(ways) {
                if line.tag == req.block_addr {
                    match line.state {
                        LineState::Valid => hit_way = Some(w),
                        LineState::Reserved => reserved_way = Some(w),
                        LineState::Invalid => {}
                    }
                }
            }
        }

        if let Some(w) = hit_way {
            self.set_lines(set)[w].last_use = tick;
            let _ = cycle; // hits complete locally; the caller stamps them
            self.stats.record(AccessOutcome::Hit, class);
            return AccessOutcome::Hit;
        }

        if reserved_way.is_some() {
            // Data in flight: merge into the MSHR if allowed.
            if self.mshr.can_merge(req.block_addr) {
                req.t_l1_accepted = cycle;
                self.mshr.merge(req);
                self.stats.record(AccessOutcome::HitReserved, class);
                return AccessOutcome::HitReserved;
            }
            self.stats.record(AccessOutcome::ReservationFailMshr, class);
            return AccessOutcome::ReservationFailMshr;
        }

        // True miss: need a victim line, an MSHR entry, and miss-queue space.
        // (If another block in this set is already in flight the MSHR may
        // hold an entry for it; this block needs its own.)
        let victim = {
            let lines = self.set_lines(set);
            let mut best: Option<(usize, u64, bool)> = None; // (way, last_use, invalid)
            for (w, line) in lines.iter().enumerate().take(ways) {
                match line.state {
                    LineState::Invalid => {
                        best = Some((w, 0, true));
                        break;
                    }
                    LineState::Valid => {
                        if best.is_none_or(|(_, lu, inv)| !inv && line.last_use < lu) {
                            best = Some((w, line.last_use, false));
                        }
                    }
                    LineState::Reserved => {}
                }
            }
            best.map(|(w, _, _)| w)
        };
        let Some(victim) = victim else {
            self.stats.record(AccessOutcome::ReservationFailTags, class);
            return AccessOutcome::ReservationFailTags;
        };
        if !self.mshr.can_allocate() {
            self.stats.record(AccessOutcome::ReservationFailMshr, class);
            return AccessOutcome::ReservationFailMshr;
        }
        if self.miss_queue.len() >= self.cfg.miss_queue_len {
            self.stats.record(AccessOutcome::ReservationFailIcnt, class);
            return AccessOutcome::ReservationFailIcnt;
        }

        // All three resources available: reserve and issue.
        {
            let line = &mut self.set_lines(set)[victim];
            line.tag = req.block_addr;
            line.state = LineState::Reserved;
            line.last_use = tick;
        }
        req.t_l1_accepted = cycle;
        self.mshr.allocate(req);
        self.miss_queue.push_back(req);
        self.stats.record(AccessOutcome::MissIssued, class);
        AccessOutcome::MissIssued
    }

    fn access_write(&mut self, mut req: MemRequest, set: usize, tick: u64) -> AccessOutcome {
        let ways = self.cfg.ways;
        // A reserved matching line blocks the write (would race the fill).
        let mut matching_reserved = false;
        {
            let lines = self.set_lines(set);
            for line in lines.iter().take(ways) {
                if line.tag == req.block_addr && line.state == LineState::Reserved {
                    matching_reserved = true;
                }
            }
        }
        if matching_reserved {
            return AccessOutcome::ReservationFailTags;
        }
        if self.miss_queue.len() >= self.cfg.miss_queue_len {
            return AccessOutcome::ReservationFailIcnt;
        }
        // Write-evict a matching valid line.
        {
            let lines = self.set_lines(set);
            for line in lines.iter_mut().take(ways) {
                if line.tag == req.block_addr && line.state == LineState::Valid {
                    line.state = LineState::Invalid;
                    line.last_use = tick;
                }
            }
        }
        req.t_l1_accepted = tick;
        self.miss_queue.push_back(req);
        self.stats.writes_forwarded += 1;
        AccessOutcome::MissIssued
    }

    /// Pull the next queued miss (or forwarded write) for downstream, if any.
    pub fn pop_miss(&mut self) -> Option<MemRequest> {
        self.miss_queue.pop_front()
    }

    /// Peek the next queued miss without removing it.
    pub fn peek_miss(&self) -> Option<&MemRequest> {
        self.miss_queue.front()
    }

    /// Complete an in-flight block: mark its line valid and return every
    /// request that was waiting on it (allocation + merges).
    ///
    /// Returns an empty vec if no line was reserved for `block_addr` (e.g. a
    /// write completion, which allocates nothing).
    pub fn fill(&mut self, block_addr: u64, _cycle: Cycle) -> Vec<MemRequest> {
        self.stats.fills += 1;
        let set = self.set_of(block_addr);
        let ways = self.cfg.ways;
        let tick = self.use_tick;
        let lines = self.set_lines(set);
        for line in lines.iter_mut().take(ways) {
            if line.tag == block_addr && line.state == LineState::Reserved {
                line.state = LineState::Valid;
                line.last_use = tick;
                break;
            }
        }
        self.mshr.take(block_addr)
    }

    /// Number of in-flight MSHR entries (for occupancy stats / debugging).
    pub fn inflight(&self) -> usize {
        self.mshr.len()
    }

    /// Drop the MSHR entry for `block_addr` without releasing its waiters,
    /// returning whether one existed. The reserved line is left dangling.
    ///
    /// **Fault-injection hook** (see [`Mshr::forget`]): models losing MSHR
    /// bookkeeping so sanitizer tests can assert the conservation checker
    /// reports the resulting response-without-request. Never called on the
    /// normal simulation path.
    pub fn forget_mshr(&mut self, block_addr: u64) -> bool {
        self.mshr.forget(block_addr)
    }

    /// Checkpoint-encode the full cache state: tag array (with LRU stamps),
    /// MSHRs, miss queue, statistics and the use tick.
    pub fn ckpt_encode(&self, e: &mut Enc) {
        e.seq(&self.lines, |e, line| {
            e.u64(line.tag);
            e.u8(match line.state {
                LineState::Invalid => 0,
                LineState::Reserved => 1,
                LineState::Valid => 2,
            });
            e.u64(line.last_use);
        });
        self.mshr.ckpt_encode(e);
        let mq: Vec<MemRequest> = self.miss_queue.iter().copied().collect();
        e.seq(&mq, |e, r| r.ckpt_encode(e));
        for row in &self.stats.attempts {
            for &v in row {
                e.u64(v);
            }
        }
        e.u64(self.stats.fills);
        e.u64(self.stats.writes_forwarded);
        e.u64(self.use_tick);
    }

    /// Checkpoint-decode a cache written by [`ckpt_encode`](Self::ckpt_encode)
    /// against the (already validated) configuration `cfg`.
    pub fn ckpt_decode(d: &mut Dec<'_>, cfg: CacheConfig) -> Result<Cache, WireError> {
        let lines = d.seq(|d| {
            let tag = d.u64()?;
            let state = match d.u8()? {
                0 => LineState::Invalid,
                1 => LineState::Reserved,
                2 => LineState::Valid,
                _ => return Err(WireError::Malformed("line state tag")),
            };
            let last_use = d.u64()?;
            Ok(Line {
                tag,
                state,
                last_use,
            })
        })?;
        if lines.len() != cfg.sets * cfg.ways {
            return Err(WireError::Malformed("tag array size mismatch"));
        }
        let mshr = Mshr::ckpt_decode(d, cfg.mshr_entries, cfg.mshr_max_merge)?;
        let miss_queue: std::collections::VecDeque<MemRequest> =
            d.seq(MemRequest::ckpt_decode)?.into();
        if miss_queue.len() > cfg.miss_queue_len {
            return Err(WireError::Malformed("miss queue overflow"));
        }
        let mut stats = CacheStats::default();
        for row in &mut stats.attempts {
            for v in row.iter_mut() {
                *v = d.u64()?;
            }
        }
        stats.fills = d.u64()?;
        stats.writes_forwarded = d.u64()?;
        let use_tick = d.u64()?;
        Ok(Cache {
            cfg,
            lines,
            mshr,
            miss_queue,
            stats,
            use_tick,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 128B, 2 MSHRs with merge 2, miss queue 2.
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 128,
            mshr_entries: 2,
            mshr_max_merge: 2,
            miss_queue_len: 2,
            hit_latency: 1,
        })
    }

    fn rd(id: u64, addr: u64) -> MemRequest {
        MemRequest::read(id, addr, 0, ClassTag::Deterministic, 0, id)
    }

    /// Addresses mapping to set 0 of the tiny cache: multiples of 256.
    const S0: [u64; 4] = [0, 256, 512, 768];

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(rd(1, 0), 10), AccessOutcome::MissIssued);
        let downstream = c.pop_miss().unwrap();
        assert_eq!(downstream.block_addr, 0);
        let done = c.fill(0, 50);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        assert_eq!(c.access(rd(2, 0), 60), AccessOutcome::Hit);
    }

    #[test]
    fn second_access_merges_as_hit_reserved() {
        let mut c = tiny();
        assert_eq!(c.access(rd(1, 0), 1), AccessOutcome::MissIssued);
        assert_eq!(c.access(rd(2, 0), 2), AccessOutcome::HitReserved);
        // Merge limit (2) reached: further accesses fail on MSHRs.
        assert_eq!(c.access(rd(3, 0), 3), AccessOutcome::ReservationFailMshr);
        let done = c.fill(0, 10);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn all_lines_reserved_fails_tags() {
        let mut c = tiny();
        assert_eq!(c.access(rd(1, S0[0]), 1), AccessOutcome::MissIssued);
        assert_eq!(c.access(rd(2, S0[1]), 2), AccessOutcome::MissIssued);
        // Set 0 now has both ways reserved; a third block cannot evict.
        assert_eq!(
            c.access(rd(3, S0[2]), 3),
            AccessOutcome::ReservationFailTags
        );
        let stats = c.stats();
        assert_eq!(stats.outcome_total(AccessOutcome::ReservationFailTags), 1);
    }

    #[test]
    fn mshr_exhaustion_fails_mshr() {
        // 4 ways so tags aren't the bottleneck; 2 MSHRs.
        let mut c = Cache::new(CacheConfig {
            sets: 1,
            ways: 4,
            line_bytes: 128,
            mshr_entries: 2,
            mshr_max_merge: 2,
            miss_queue_len: 4,
            hit_latency: 1,
        });
        assert_eq!(c.access(rd(1, 0), 1), AccessOutcome::MissIssued);
        assert_eq!(c.access(rd(2, 128), 2), AccessOutcome::MissIssued);
        assert_eq!(c.access(rd(3, 256), 3), AccessOutcome::ReservationFailMshr);
    }

    #[test]
    fn miss_queue_full_fails_icnt() {
        // Plenty of tags and MSHRs, miss queue of 1, nothing draining it.
        let mut c = Cache::new(CacheConfig {
            sets: 1,
            ways: 4,
            line_bytes: 128,
            mshr_entries: 4,
            mshr_max_merge: 2,
            miss_queue_len: 1,
            hit_latency: 1,
        });
        assert_eq!(c.access(rd(1, 0), 1), AccessOutcome::MissIssued);
        assert_eq!(c.access(rd(2, 128), 2), AccessOutcome::ReservationFailIcnt);
        // Draining the queue unblocks.
        let _ = c.pop_miss();
        assert_eq!(c.access(rd(3, 128), 3), AccessOutcome::MissIssued);
    }

    #[test]
    fn lru_evicts_least_recently_used_valid_line() {
        let mut c = tiny();
        for (i, &a) in S0[..2].iter().enumerate() {
            assert_eq!(
                c.access(rd(i as u64, a), i as u64),
                AccessOutcome::MissIssued
            );
            c.pop_miss();
            c.fill(a, 10 + i as u64);
        }
        // Touch S0[0] so S0[1] is LRU.
        assert_eq!(c.access(rd(10, S0[0]), 20), AccessOutcome::Hit);
        // New block evicts S0[1].
        assert_eq!(c.access(rd(11, S0[2]), 21), AccessOutcome::MissIssued);
        c.pop_miss();
        c.fill(S0[2], 30);
        assert_eq!(c.access(rd(12, S0[0]), 31), AccessOutcome::Hit);
        assert_eq!(c.access(rd(13, S0[1]), 32), AccessOutcome::MissIssued);
    }

    #[test]
    fn write_through_no_allocate_and_write_evict() {
        let mut c = tiny();
        // Fill a line.
        c.access(rd(1, 0), 1);
        c.pop_miss();
        c.fill(0, 5);
        assert_eq!(c.access(rd(2, 0), 6), AccessOutcome::Hit);
        // Write to the same block: forwarded, line evicted.
        let w = MemRequest::write(3, 0, 0, 7);
        assert_eq!(c.access(w, 7), AccessOutcome::MissIssued);
        assert_eq!(c.pop_miss().unwrap().id, 3);
        // The line is gone: next read misses.
        assert_eq!(c.access(rd(4, 0), 8), AccessOutcome::MissIssued);
        assert_eq!(c.stats().writes_forwarded, 1);
    }

    #[test]
    fn write_to_reserved_line_blocks() {
        let mut c = tiny();
        c.access(rd(1, 0), 1);
        let w = MemRequest::write(2, 0, 0, 2);
        assert_eq!(c.access(w, 2), AccessOutcome::ReservationFailTags);
    }

    #[test]
    fn stats_split_by_class() {
        let mut c = tiny();
        c.access(rd(1, 0), 1);
        let mut nreq = rd(2, 128);
        nreq.class = ClassTag::NonDeterministic;
        c.access(nreq, 2);
        let s = c.stats();
        assert_eq!(
            s.outcome_class(AccessOutcome::MissIssued, ClassTag::Deterministic),
            1
        );
        assert_eq!(
            s.outcome_class(AccessOutcome::MissIssued, ClassTag::NonDeterministic),
            1
        );
        assert_eq!(s.accepted(ClassTag::Deterministic), 1);
    }

    #[test]
    fn miss_ratio_counts_hit_reserved_as_miss() {
        let mut c = tiny();
        c.access(rd(1, 0), 1); // miss
        c.access(rd(2, 0), 2); // hit reserved
        c.pop_miss();
        c.fill(0, 5);
        c.access(rd(3, 0), 6); // hit
        let r = c.stats().miss_ratio(ClassTag::Deterministic);
        assert!((r - 2.0 / 3.0).abs() < 1e-12, "{r}");
    }

    #[test]
    fn fermi_configs_have_paper_capacities() {
        assert_eq!(CacheConfig::fermi_l1().capacity_bytes(), 16 * 1024);
        assert_eq!(CacheConfig::fermi_l2_slice().capacity_bytes(), 128 * 1024);
    }
}
