//! Property-style tests of the cache's reservation semantics under random
//! access interleavings: conservation of requests, resource bounds, and the
//! retry/fill protocol. Cases are driven by the in-tree seeded generator so
//! failures are bit-reproducible.

use gcl_mem::{AccessOutcome, Cache, CacheConfig, ClassTag, MemRequest};
use gcl_rng::{cases, Rng};

fn tiny_cfg() -> CacheConfig {
    CacheConfig {
        sets: 4,
        ways: 2,
        line_bytes: 128,
        mshr_entries: 4,
        mshr_max_merge: 2,
        miss_queue_len: 3,
        hit_latency: 1,
    }
}

#[derive(Debug, Clone)]
enum Step {
    /// Read the block with this index (scaled to a block address).
    Read(u8),
    /// Write a block.
    Write(u8),
    /// Pull one miss and complete it (downstream service).
    Service,
}

fn step(r: &mut Rng) -> Step {
    match r.u32_below(3) {
        0 => Step::Read(r.u32_below(24) as u8),
        1 => Step::Write(r.u32_below(24) as u8),
        _ => Step::Service,
    }
}

/// Every read request is eventually either completed (hit or fill) or still
/// pending as a reservation-failure retry — none are lost or duplicated.
/// Resource counters never exceed their configured bounds.
#[test]
fn conservation_and_bounds() {
    cases(0xCAC4, 256, |r| {
        let nsteps = 1 + r.usize_below(119);
        let steps: Vec<Step> = (0..nsteps).map(|_| step(r)).collect();
        let cfg = tiny_cfg();
        let mut cache = Cache::new(cfg);
        let mut issued: u64 = 0; // reads accepted (hit/merged/missed)
        let mut completed: u64 = 0; // reads that produced data
        let mut in_mshr: u64 = 0; // accepted, awaiting fill
        let mut cycle = 0u64;

        for (i, s) in steps.iter().enumerate() {
            cycle += 1;
            match s {
                Step::Read(blk) => {
                    let addr = u64::from(*blk) * 128;
                    let req =
                        MemRequest::read(i as u64, addr, 0, ClassTag::Deterministic, 0, cycle);
                    match cache.access(req, cycle) {
                        AccessOutcome::Hit => {
                            issued += 1;
                            completed += 1;
                        }
                        AccessOutcome::HitReserved | AccessOutcome::MissIssued => {
                            issued += 1;
                            in_mshr += 1;
                        }
                        AccessOutcome::ReservationFailTags
                        | AccessOutcome::ReservationFailMshr
                        | AccessOutcome::ReservationFailIcnt => {}
                    }
                }
                Step::Write(blk) => {
                    let addr = u64::from(*blk) * 128;
                    let req = MemRequest::write(i as u64, addr, 0, cycle);
                    let _ = cache.access(req, cycle);
                }
                Step::Service => {
                    if let Some(m) = cache.pop_miss() {
                        if !m.is_write {
                            let done = cache.fill(m.block_addr, cycle);
                            assert!(!done.is_empty(), "fill released nobody");
                            completed += done.len() as u64;
                            in_mshr -= done.len() as u64;
                        }
                    }
                }
            }
            assert!(cache.inflight() <= cfg.mshr_entries);
        }

        // Drain everything still in flight.
        while let Some(m) = cache.pop_miss() {
            if !m.is_write {
                let done = cache.fill(m.block_addr, cycle);
                completed += done.len() as u64;
                in_mshr -= done.len() as u64;
            }
        }
        assert_eq!(in_mshr, 0, "requests stuck in MSHRs");
        assert_eq!(issued, completed, "requests lost or duplicated");
        assert_eq!(cache.inflight(), 0);

        // Stats agree with our external accounting.
        let s = cache.stats();
        let accepted = s.accepted(ClassTag::Deterministic);
        assert_eq!(accepted, issued);
    });
}

/// After a fill, re-reading the same block hits (LRU keeps it unless
/// capacity-evicted by the interleaving — so use a single block).
#[test]
fn fill_then_hit() {
    cases(0xCAC5, 32, |r| {
        let blk = r.u32_below(32) as u8;
        let mut cache = Cache::new(tiny_cfg());
        let addr = u64::from(blk) * 128;
        let req = MemRequest::read(1, addr, 0, ClassTag::NonDeterministic, 0, 0);
        assert_eq!(cache.access(req, 0), AccessOutcome::MissIssued);
        let m = cache.pop_miss().unwrap();
        let done = cache.fill(m.block_addr, 10);
        assert_eq!(done.len(), 1);
        let r2 = MemRequest::read(2, addr, 0, ClassTag::NonDeterministic, 0, 11);
        assert_eq!(cache.access(r2, 11), AccessOutcome::Hit);
    });
}

/// A failed access leaves the cache state unchanged: retrying after
/// draining resources succeeds.
#[test]
fn failed_access_is_retryable() {
    cases(0xCAC6, 8, |r| {
        let fill_blocks = 1 + r.u32_below(7) as u8;
        let cfg = tiny_cfg();
        let mut cache = Cache::new(cfg);
        // Saturate the miss queue.
        let mut accepted = 0;
        for i in 0..16u64 {
            let addr = (u64::from(fill_blocks) + i) * 128;
            let req = MemRequest::read(i, addr, 0, ClassTag::Deterministic, 0, i);
            if cache.access(req, i).accepted() {
                accepted += 1;
            }
        }
        assert!(accepted <= cfg.miss_queue_len as u64 + 1);
        // Drain and retry one blocked request: must now be accepted.
        while cache.pop_miss().is_some() {}
        let retry = MemRequest::read(99, 0x7F00, 0, ClassTag::Deterministic, 0, 100);
        assert!(cache.access(retry, 100).accepted());
    });
}
