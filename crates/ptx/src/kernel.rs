//! Kernel container: parameters, instructions, validation.

use crate::{Instruction, Op, Type};
use std::fmt;

/// A kernel parameter declaration (`.param .u64 g_nodes`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    /// Parameter name, used by the parser and for diagnostics.
    pub name: String,
    /// Parameter type. Pointers are `u64`.
    pub ty: Type,
}

impl ParamDecl {
    /// Create a parameter declaration.
    pub fn new(name: impl Into<String>, ty: Type) -> ParamDecl {
        ParamDecl {
            name: name.into(),
            ty,
        }
    }
}

/// Errors produced when assembling a [`Kernel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A branch at instruction `pc` targets an out-of-range index.
    BranchOutOfRange {
        /// The branch instruction index.
        pc: usize,
        /// The invalid target.
        target: usize,
    },
    /// The kernel is empty.
    Empty,
    /// The final instruction can fall through past the end of the kernel.
    FallsOffEnd,
    /// A `ld.param` reads past the end of the parameter block.
    ParamOutOfRange {
        /// The load instruction index.
        pc: usize,
        /// The byte offset accessed.
        offset: i64,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BranchOutOfRange { pc, target } => {
                write!(f, "branch at pc {pc} targets out-of-range index {target}")
            }
            ValidateError::Empty => write!(f, "kernel has no instructions"),
            ValidateError::FallsOffEnd => {
                write!(f, "control can fall through past the last instruction")
            }
            ValidateError::ParamOutOfRange { pc, offset } => {
                write!(
                    f,
                    "ld.param at pc {pc} reads offset {offset} past the parameter block"
                )
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// A complete kernel in the PTX subset.
///
/// Instructions are stored flat; branch targets are instruction indices
/// ("PCs"). Build kernels with [`KernelBuilder`](crate::KernelBuilder) or
/// parse them from text with [`parse_kernel`](crate::parse_kernel).
///
/// # Examples
///
/// ```
/// use gcl_ptx::{KernelBuilder, Special, Type};
///
/// let mut b = KernelBuilder::new("copy");
/// let src = b.param("src", Type::U64);
/// let dst = b.param("dst", Type::U64);
/// let base_src = b.ld_param(Type::U64, src);
/// let base_dst = b.ld_param(Type::U64, dst);
/// let tid = b.thread_linear_id();
/// let a_src = b.index64(base_src, tid, 4);
/// let a_dst = b.index64(base_dst, tid, 4);
/// let v = b.ld_global(Type::U32, a_src);
/// b.st_global(Type::U32, a_dst, v);
/// b.exit();
/// let kernel = b.build().unwrap();
/// assert_eq!(kernel.global_load_pcs().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    params: Vec<ParamDecl>,
    shared_bytes: u32,
    insts: Vec<Instruction>,
    num_regs: u32,
}

impl Kernel {
    /// Assemble a kernel from parts, validating it.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if any branch target is out of range, the
    /// kernel is empty, control can fall off the end, or a `ld.param` reads
    /// beyond the declared parameter block.
    pub fn new(
        name: impl Into<String>,
        params: Vec<ParamDecl>,
        shared_bytes: u32,
        insts: Vec<Instruction>,
    ) -> Result<Kernel, ValidateError> {
        let num_regs = insts
            .iter()
            .flat_map(|i| i.src_regs().into_iter().chain(i.dst_reg()))
            .map(|r| r.0 + 1)
            .max()
            .unwrap_or(0);
        let k = Kernel {
            name: name.into(),
            params,
            shared_bytes,
            insts,
            num_regs,
        };
        k.validate()?;
        Ok(k)
    }

    fn validate(&self) -> Result<(), ValidateError> {
        if self.insts.is_empty() {
            return Err(ValidateError::Empty);
        }
        for (pc, inst) in self.insts.iter().enumerate() {
            if let Op::Bra { target } = inst.op {
                if target >= self.insts.len() {
                    return Err(ValidateError::BranchOutOfRange { pc, target });
                }
            }
            if let Op::Ld {
                space: crate::Space::Param,
                ty,
                addr,
                ..
            } = &inst.op
            {
                if addr.base.is_none() {
                    let end = addr.offset + i64::from(ty.size_bytes());
                    if addr.offset < 0 || end > i64::from(self.param_bytes()) {
                        return Err(ValidateError::ParamOutOfRange {
                            pc,
                            offset: addr.offset,
                        });
                    }
                }
            }
        }
        // The last instruction must not fall through: it has to be an exit or
        // an unconditional branch.
        let last = &self.insts[self.insts.len() - 1];
        let terminates = match last.op {
            Op::Exit => last.guard.is_none(),
            Op::Bra { .. } => last.guard.is_none(),
            _ => false,
        };
        if !terminates {
            return Err(ValidateError::FallsOffEnd);
        }
        Ok(())
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared parameters, in order.
    pub fn params(&self) -> &[ParamDecl] {
        &self.params
    }

    /// Statically allocated shared memory, in bytes.
    pub fn shared_bytes(&self) -> u32 {
        self.shared_bytes
    }

    /// The instruction stream. Branch targets are indices into this slice.
    pub fn insts(&self) -> &[Instruction] {
        &self.insts
    }

    /// Number of virtual registers used (max register id + 1).
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    /// Byte offset of parameter `index` within the parameter block.
    ///
    /// Parameters are laid out in declaration order, each aligned to its own
    /// size (as the CUDA ABI does).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param_offset(&self, index: usize) -> u32 {
        assert!(
            index < self.params.len(),
            "parameter index {index} out of range"
        );
        let mut off = 0u32;
        for (i, p) in self.params.iter().enumerate() {
            let sz = p.ty.size_bytes();
            off = off.div_ceil(sz) * sz;
            if i == index {
                return off;
            }
            off += sz;
        }
        unreachable!()
    }

    /// Total size of the parameter block in bytes.
    pub fn param_bytes(&self) -> u32 {
        if self.params.is_empty() {
            return 0;
        }
        let last = self.params.len() - 1;
        self.param_offset(last) + self.params[last].ty.size_bytes()
    }

    /// Look up a parameter's index by name.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Instruction indices of all global-memory loads (the loads the paper
    /// classifies as deterministic / non-deterministic).
    pub fn global_load_pcs(&self) -> Vec<usize> {
        self.insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.op.is_global_load())
            .map(|(pc, _)| pc)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, Guard, Operand, Reg, Space};

    fn exit() -> Instruction {
        Instruction::new(Op::Exit)
    }

    #[test]
    fn empty_kernel_rejected() {
        assert_eq!(
            Kernel::new("k", vec![], 0, vec![]),
            Err(ValidateError::Empty)
        );
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let insts = vec![Instruction::new(Op::Bra { target: 7 }), exit()];
        assert_eq!(
            Kernel::new("k", vec![], 0, insts),
            Err(ValidateError::BranchOutOfRange { pc: 0, target: 7 })
        );
    }

    #[test]
    fn falls_off_end_rejected() {
        let insts = vec![Instruction::new(Op::Mov {
            ty: Type::U32,
            dst: Reg(0),
            src: Operand::Imm(1),
        })];
        assert_eq!(
            Kernel::new("k", vec![], 0, insts),
            Err(ValidateError::FallsOffEnd)
        );
        // A guarded exit can also fall through.
        let insts = vec![Instruction::guarded(Guard::when(Reg(0)), Op::Exit)];
        assert_eq!(
            Kernel::new("k", vec![], 0, insts),
            Err(ValidateError::FallsOffEnd)
        );
    }

    #[test]
    fn param_layout_is_aligned() {
        let k = Kernel::new(
            "k",
            vec![
                ParamDecl::new("a", Type::U32),
                ParamDecl::new("b", Type::U64),
                ParamDecl::new("c", Type::U32),
            ],
            0,
            vec![exit()],
        )
        .unwrap();
        assert_eq!(k.param_offset(0), 0);
        assert_eq!(k.param_offset(1), 8); // aligned up from 4
        assert_eq!(k.param_offset(2), 16);
        assert_eq!(k.param_bytes(), 20);
        assert_eq!(k.param_index("b"), Some(1));
        assert_eq!(k.param_index("z"), None);
    }

    #[test]
    fn param_load_bounds_checked() {
        let insts = vec![
            Instruction::new(Op::Ld {
                space: Space::Param,
                ty: Type::U64,
                dst: Reg(0),
                addr: Address::abs(4),
            }),
            exit(),
        ];
        let err = Kernel::new("k", vec![ParamDecl::new("a", Type::U64)], 0, insts).unwrap_err();
        assert_eq!(err, ValidateError::ParamOutOfRange { pc: 0, offset: 4 });
    }

    #[test]
    fn num_regs_counts_max_plus_one() {
        let insts = vec![
            Instruction::new(Op::Mov {
                ty: Type::U32,
                dst: Reg(11),
                src: Operand::Imm(0),
            }),
            exit(),
        ];
        let k = Kernel::new("k", vec![], 0, insts).unwrap();
        assert_eq!(k.num_regs(), 12);
    }

    #[test]
    fn global_load_pcs_reports_global_backed_loads_only() {
        let insts = vec![
            Instruction::new(Op::Ld {
                space: Space::Global,
                ty: Type::U32,
                dst: Reg(0),
                addr: Address::reg(Reg(1)),
            }),
            Instruction::new(Op::Ld {
                space: Space::Shared,
                ty: Type::U32,
                dst: Reg(2),
                addr: Address::reg(Reg(1)),
            }),
            Instruction::new(Op::Ld {
                space: Space::Tex,
                ty: Type::U32,
                dst: Reg(3),
                addr: Address::reg(Reg(1)),
            }),
            exit(),
        ];
        let k = Kernel::new("k", vec![], 0, insts).unwrap();
        assert_eq!(k.global_load_pcs(), vec![0, 2]);
    }
}
