//! Scalar value types and memory spaces of the PTX subset.

use std::fmt;

/// Scalar type of a register operand or memory access.
///
/// This mirrors the PTX type suffixes (`.u32`, `.s64`, `.f32`, ...). Untyped
/// bit types (`.b32`/`.b64`) are used by moves and logical operations that do
/// not care about signedness.
///
/// # Examples
///
/// ```
/// use gcl_ptx::Type;
/// assert_eq!(Type::U32.size_bytes(), 4);
/// assert_eq!(Type::F64.size_bytes(), 8);
/// assert!(Type::S32.is_signed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 8-bit unsigned integer (`.u8`).
    U8,
    /// 16-bit unsigned integer (`.u16`).
    U16,
    /// 32-bit unsigned integer (`.u32`).
    U32,
    /// 64-bit unsigned integer (`.u64`).
    U64,
    /// 32-bit signed integer (`.s32`).
    S32,
    /// 64-bit signed integer (`.s64`).
    S64,
    /// 32-bit IEEE-754 float (`.f32`).
    F32,
    /// 64-bit IEEE-754 float (`.f64`).
    F64,
    /// Untyped 32 bits (`.b32`).
    B32,
    /// Untyped 64 bits (`.b64`).
    B64,
    /// One-bit predicate (`.pred`).
    Pred,
}

impl Type {
    /// Size of a value of this type in bytes.
    ///
    /// Predicates occupy one byte for accounting purposes (they never touch
    /// memory in the subset).
    pub fn size_bytes(self) -> u32 {
        match self {
            Type::U8 | Type::Pred => 1,
            Type::U16 => 2,
            Type::U32 | Type::S32 | Type::F32 | Type::B32 => 4,
            Type::U64 | Type::S64 | Type::F64 | Type::B64 => 8,
        }
    }

    /// Whether this is a signed integer type.
    pub fn is_signed(self) -> bool {
        matches!(self, Type::S32 | Type::S64)
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Whether this is an integer (signed, unsigned or untyped-bits) type.
    pub fn is_integer(self) -> bool {
        !self.is_float() && self != Type::Pred
    }

    /// The PTX suffix for this type, without the leading dot.
    pub fn suffix(self) -> &'static str {
        match self {
            Type::U8 => "u8",
            Type::U16 => "u16",
            Type::U32 => "u32",
            Type::U64 => "u64",
            Type::S32 => "s32",
            Type::S64 => "s64",
            Type::F32 => "f32",
            Type::F64 => "f64",
            Type::B32 => "b32",
            Type::B64 => "b64",
            Type::Pred => "pred",
        }
    }

    /// Parse a PTX type suffix (`"u32"`, `"f64"`, ...).
    pub fn from_suffix(s: &str) -> Option<Type> {
        Some(match s {
            "u8" => Type::U8,
            "u16" => Type::U16,
            "u32" => Type::U32,
            "u64" => Type::U64,
            "s32" => Type::S32,
            "s64" => Type::S64,
            "f32" => Type::F32,
            "f64" => Type::F64,
            "b32" => Type::B32,
            "b64" => Type::B64,
            "pred" => Type::Pred,
            _ => return None,
        })
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// PTX state space of a memory access.
///
/// The classification analysis in [`gcl-core`](https://docs.rs/gcl-core)
/// treats `Param` and `Const` as *parameterized* (deterministic) sources and
/// every other space as a non-deterministic source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Space {
    /// Device global memory (`.global`) — backed by DRAM through L1/L2.
    Global,
    /// Per-CTA scratchpad (`.shared`).
    Shared,
    /// Kernel parameter space (`.param`) — written once at launch by the host.
    Param,
    /// Constant memory (`.const`) — read-only, host-initialized.
    Const,
    /// Per-thread local memory (`.local`) — spill space, backed by global.
    Local,
    /// Texture memory (`.tex`) — modeled as read-only global.
    Tex,
}

impl Space {
    /// The PTX suffix for this space, without the leading dot.
    pub fn suffix(self) -> &'static str {
        match self {
            Space::Global => "global",
            Space::Shared => "shared",
            Space::Param => "param",
            Space::Const => "const",
            Space::Local => "local",
            Space::Tex => "tex",
        }
    }

    /// Parse a PTX space suffix (`"global"`, `"shared"`, ...).
    pub fn from_suffix(s: &str) -> Option<Space> {
        Some(match s {
            "global" => Space::Global,
            "shared" => Space::Shared,
            "param" => Space::Param,
            "const" => Space::Const,
            "local" => Space::Local,
            "tex" => Space::Tex,
            _ => return None,
        })
    }

    /// Whether a load from this space yields host-provided, launch-invariant
    /// data (the paper's "parameterized data").
    ///
    /// Loads whose address derives only from such sources are classified
    /// deterministic.
    pub fn is_parameterized(self) -> bool {
        matches!(self, Space::Param | Space::Const)
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Type::U8.size_bytes(), 1);
        assert_eq!(Type::U16.size_bytes(), 2);
        assert_eq!(Type::U32.size_bytes(), 4);
        assert_eq!(Type::S32.size_bytes(), 4);
        assert_eq!(Type::F32.size_bytes(), 4);
        assert_eq!(Type::B32.size_bytes(), 4);
        assert_eq!(Type::U64.size_bytes(), 8);
        assert_eq!(Type::S64.size_bytes(), 8);
        assert_eq!(Type::F64.size_bytes(), 8);
        assert_eq!(Type::B64.size_bytes(), 8);
    }

    #[test]
    fn type_predicates() {
        assert!(Type::S32.is_signed());
        assert!(!Type::U32.is_signed());
        assert!(Type::F32.is_float());
        assert!(!Type::F32.is_integer());
        assert!(Type::B64.is_integer());
        assert!(!Type::Pred.is_integer());
    }

    #[test]
    fn type_suffix_round_trip() {
        for ty in [
            Type::U8,
            Type::U16,
            Type::U32,
            Type::U64,
            Type::S32,
            Type::S64,
            Type::F32,
            Type::F64,
            Type::B32,
            Type::B64,
            Type::Pred,
        ] {
            assert_eq!(Type::from_suffix(ty.suffix()), Some(ty));
            assert_eq!(format!("{ty}"), ty.suffix());
        }
        assert_eq!(Type::from_suffix("u128"), None);
    }

    #[test]
    fn space_suffix_round_trip() {
        for sp in [
            Space::Global,
            Space::Shared,
            Space::Param,
            Space::Const,
            Space::Local,
            Space::Tex,
        ] {
            assert_eq!(Space::from_suffix(sp.suffix()), Some(sp));
        }
        assert_eq!(Space::from_suffix("generic"), None);
    }

    #[test]
    fn parameterized_spaces() {
        assert!(Space::Param.is_parameterized());
        assert!(Space::Const.is_parameterized());
        assert!(!Space::Global.is_parameterized());
        assert!(!Space::Shared.is_parameterized());
        assert!(!Space::Local.is_parameterized());
        assert!(!Space::Tex.is_parameterized());
    }
}
