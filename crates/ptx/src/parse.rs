//! Parser for the textual PTX-subset format.
//!
//! The grammar is the disassembly format produced by [`Kernel`]'s `Display`
//! impl:
//!
//! ```text
//! .entry NAME (.param .TY NAME, ...)
//! .shared BYTES            // optional
//! {
//!   LABEL:                 // optional, may repeat
//!   @%p MNEMONIC OPERANDS; // guard optional
//!   ...
//! }
//! ```
//!
//! Registers spelled `%r<N>` map to register id `N`; any other register name
//! (e.g. `%p1`, `%rd4`, `%f2`) is interned to a fresh id above all numeric
//! ones. Comments run from `//` to end of line.

use crate::{
    Address, AluOp, AtomOp, CmpOp, Guard, Instruction, Kernel, Op, Operand, ParamDecl, Reg, SfuOp,
    Space, Special, Type, UnaryOp, ValidateError,
};
use std::collections::HashMap;
use std::fmt;

/// Error produced by [`parse_kernel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the error.
    pub line: usize,
    /// 1-based column of the offending token (0 when unknown, e.g. for
    /// whole-kernel validation errors).
    pub col: usize,
    /// The offending source line, verbatim (empty when unknown).
    pub snippet: String,
    /// Human-readable description.
    pub msg: String,
}

impl ParseError {
    fn at(line: usize, col: usize, msg: impl Into<String>) -> ParseError {
        ParseError {
            line,
            col,
            snippet: String::new(),
            msg: msg.into(),
        }
    }

    /// Attach the offending source line (and thereby the caret rendering in
    /// `Display`) by looking `line` up in `src`.
    fn with_snippet(mut self, src: &str) -> ParseError {
        if self.line > 0 {
            if let Some(text) = src.lines().nth(self.line - 1) {
                self.snippet = text.trim_end().to_string();
            }
        }
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.col) {
            (0, _) => write!(f, "parse error: {}", self.msg)?,
            (_, 0) => write!(f, "parse error at line {}: {}", self.line, self.msg)?,
            _ => write!(
                f,
                "parse error at line {}:{}: {}",
                self.line, self.col, self.msg
            )?,
        }
        if !self.snippet.is_empty() {
            write!(f, "\n  | {}", self.snippet)?;
            if self.col > 0 && self.col <= self.snippet.chars().count() + 1 {
                write!(f, "\n  | {}^", " ".repeat(self.col - 1))?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

impl From<ValidateError> for ParseError {
    fn from(e: ValidateError) -> ParseError {
        ParseError::at(0, 0, format!("invalid kernel: {e}"))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Bare identifier, possibly with interior dots: `ld.global.u32`, `L3`.
    Word(String),
    /// `.entry`, `.param`, `.u64`, ...
    DotWord(String),
    /// `%r1`, `%tid.x`, `%p2`, ...
    Percent(String),
    Int(i64),
    /// f64 bits
    Float(u64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    At,
    Bang,
    Plus,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "`{w}`"),
            Tok::DotWord(w) => write!(f, "`.{w}`"),
            Tok::Percent(w) => write!(f, "`%{w}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Float(_) => write!(f, "float literal"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::At => write!(f, "`@`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Plus => write!(f, "`+`"),
        }
    }
}

/// One lexed token with its 1-based source line and column.
type Spanned = (Tok, usize, usize);

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut line_start = 0usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let n = bytes.len();
    let is_word_char = |c: char| c.is_alphanumeric() || c == '_' || c == '.';
    while i < n {
        let c = bytes[i];
        let col = i - line_start + 1;
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push((Tok::LParen, line, col));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, line, col));
                i += 1;
            }
            '{' => {
                toks.push((Tok::LBrace, line, col));
                i += 1;
            }
            '}' => {
                toks.push((Tok::RBrace, line, col));
                i += 1;
            }
            '[' => {
                toks.push((Tok::LBracket, line, col));
                i += 1;
            }
            ']' => {
                toks.push((Tok::RBracket, line, col));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, line, col));
                i += 1;
            }
            ';' => {
                toks.push((Tok::Semi, line, col));
                i += 1;
            }
            ':' => {
                toks.push((Tok::Colon, line, col));
                i += 1;
            }
            '@' => {
                toks.push((Tok::At, line, col));
                i += 1;
            }
            '!' => {
                toks.push((Tok::Bang, line, col));
                i += 1;
            }
            '+' => {
                toks.push((Tok::Plus, line, col));
                i += 1;
            }
            '%' => {
                i += 1;
                let start = i;
                while i < n && is_word_char(bytes[i]) {
                    i += 1;
                }
                if i == start {
                    return Err(ParseError::at(line, col, "dangling `%`"));
                }
                toks.push((Tok::Percent(bytes[start..i].iter().collect()), line, col));
            }
            '.' => {
                i += 1;
                let start = i;
                while i < n && is_word_char(bytes[i]) {
                    i += 1;
                }
                if i == start {
                    return Err(ParseError::at(line, col, "dangling `.`"));
                }
                toks.push((Tok::DotWord(bytes[start..i].iter().collect()), line, col));
            }
            '-' | '0'..='9' => {
                let neg = c == '-';
                if neg {
                    i += 1;
                    if i >= n || !bytes[i].is_ascii_digit() {
                        return Err(ParseError::at(line, col, "dangling `-`"));
                    }
                }
                let start = i;
                // 0F<hex> float-bits literal.
                if bytes[i] == '0' && i + 1 < n && bytes[i + 1] == 'F' {
                    i += 2;
                    let hstart = i;
                    while i < n && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let hex: String = bytes[hstart..i].iter().collect();
                    let bits = u64::from_str_radix(&hex, 16)
                        .map_err(|e| ParseError::at(line, col, format!("bad float bits: {e}")))?;
                    let bits = if neg {
                        (-f64::from_bits(bits)).to_bits()
                    } else {
                        bits
                    };
                    toks.push((Tok::Float(bits), line, col));
                    continue;
                }
                // 0x<hex> integer.
                if bytes[i] == '0' && i + 1 < n && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X') {
                    i += 2;
                    let hstart = i;
                    while i < n && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let hex: String = bytes[hstart..i].iter().collect();
                    let v = i64::from_str_radix(&hex, 16)
                        .map_err(|e| ParseError::at(line, col, format!("bad hex literal: {e}")))?;
                    toks.push((Tok::Int(if neg { -v } else { v }), line, col));
                    continue;
                }
                let mut is_float = false;
                while i < n
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '-' || bytes[i] == '+')
                            && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
                {
                    if bytes[i] == '.' || bytes[i] == 'e' || bytes[i] == 'E' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|e| ParseError::at(line, col, format!("bad float: {e}")))?;
                    toks.push((Tok::Float(if neg { -v } else { v }.to_bits()), line, col));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|e| ParseError::at(line, col, format!("bad integer: {e}")))?;
                    toks.push((Tok::Int(if neg { -v } else { v }), line, col));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && is_word_char(bytes[i]) {
                    i += 1;
                }
                toks.push((Tok::Word(bytes[start..i].iter().collect()), line, col));
            }
            other => {
                return Err(ParseError::at(
                    line,
                    col,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    regs: HashMap<String, u32>,
    next_reg: u32,
    params: Vec<ParamDecl>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    /// Line and column of the token at the current position (clamped to the
    /// last token at end of input).
    fn span(&self) -> (usize, usize) {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l, c)| (*l, *c))
            .unwrap_or((0, 0))
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.span();
        ParseError::at(line, col, msg)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|(t, _, _)| t.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.err(format!("expected {want}, found {got}")))
        }
    }

    fn expect_word(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Word(w) => Ok(w),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected identifier, found {other}")))
            }
        }
    }

    fn intern_reg(&mut self, name: &str) -> Reg {
        if let Some(&id) = self.regs.get(name) {
            return Reg(id);
        }
        // `r<digits>` claims its own number; everything else gets a fresh id.
        let id = if let Some(num) = name.strip_prefix('r').and_then(|s| s.parse::<u32>().ok()) {
            num
        } else {
            let id = self.next_reg;
            self.next_reg += 1;
            id
        };
        self.next_reg = self.next_reg.max(id + 1);
        self.regs.insert(name.to_string(), id);
        Reg(id)
    }

    fn parse_reg(&mut self) -> Result<Reg, ParseError> {
        match self.next()? {
            Tok::Percent(name) => {
                if Special::from_name(&format!("%{name}")).is_some() {
                    self.pos -= 1;
                    Err(self.err(format!("special register %{name} cannot be a destination")))
                } else {
                    Ok(self.intern_reg(&name))
                }
            }
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected register, found {other}")))
            }
        }
    }

    fn parse_operand(&mut self) -> Result<Operand, ParseError> {
        match self.next()? {
            Tok::Percent(name) => {
                if let Some(sp) = Special::from_name(&format!("%{name}")) {
                    Ok(Operand::Special(sp))
                } else {
                    Ok(Operand::Reg(self.intern_reg(&name)))
                }
            }
            Tok::Int(v) => Ok(Operand::Imm(v)),
            Tok::Float(bits) => Ok(Operand::FImm(bits)),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected operand, found {other}")))
            }
        }
    }

    /// Parse `[...]`. Returns the address; for `ld.param` by name, resolves
    /// the parameter offset.
    fn parse_address(&mut self, space: Space) -> Result<Address, ParseError> {
        self.expect(Tok::LBracket)?;
        let addr = match self.next()? {
            Tok::Percent(name) => {
                let base = self.intern_reg(&name);
                let offset = match self.peek() {
                    Some(Tok::Plus) => {
                        self.next()?;
                        match self.next()? {
                            Tok::Int(v) => v,
                            other => {
                                self.pos -= 1;
                                return Err(self.err(format!("expected offset, found {other}")));
                            }
                        }
                    }
                    Some(Tok::Int(v)) if *v < 0 => {
                        let v = *v;
                        self.next()?;
                        v
                    }
                    _ => 0,
                };
                Address::reg_offset(base, offset)
            }
            Tok::Int(v) => Address::abs(v),
            Tok::Word(name) => {
                if space != Space::Param {
                    return Err(self.err(format!("named address `{name}` only valid for ld.param")));
                }
                let idx = self
                    .params
                    .iter()
                    .position(|p| p.name == name)
                    .ok_or_else(|| self.err(format!("unknown parameter `{name}`")))?;
                let mut off = i64::from(param_offset(&self.params, idx));
                if let Some(Tok::Plus) = self.peek() {
                    self.next()?;
                    match self.next()? {
                        Tok::Int(v) => off += v,
                        other => {
                            self.pos -= 1;
                            return Err(self.err(format!("expected offset, found {other}")));
                        }
                    }
                }
                Address::abs(off)
            }
            other => {
                self.pos -= 1;
                return Err(self.err(format!("expected address, found {other}")));
            }
        };
        self.expect(Tok::RBracket)?;
        Ok(addr)
    }

    fn parse_type(&self, part: Option<&&str>) -> Result<Type, ParseError> {
        let s = part.ok_or_else(|| self.err("missing type suffix"))?;
        Type::from_suffix(s).ok_or_else(|| self.err(format!("unknown type suffix `.{s}`")))
    }
}

fn param_offset(params: &[ParamDecl], index: usize) -> u32 {
    let mut off = 0u32;
    for (i, p) in params.iter().enumerate() {
        let sz = p.ty.size_bytes();
        off = off.div_ceil(sz) * sz;
        if i == index {
            return off;
        }
        off += sz;
    }
    unreachable!()
}

/// Parse one kernel from its textual form.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, unknown mnemonics, references
/// to undeclared parameters or labels, and kernels that fail
/// [`Kernel`] validation.
///
/// # Examples
///
/// ```
/// let src = r#"
/// .entry scale (.param .u64 data, .param .u32 n)
/// {
///   ld.param.u64 %rd1, [data];
///   mov.u32 %r1, %tid.x;
///   mul.wide.u32 %rd2, %r1, 4;
///   add.u64 %rd3, %rd1, %rd2;
///   ld.global.u32 %r2, [%rd3];
///   shl.u32 %r3, %r2, 1;
///   st.global.u32 [%rd3], %r3;
///   exit;
/// }
/// "#;
/// let k = gcl_ptx::parse_kernel(src)?;
/// assert_eq!(k.name(), "scale");
/// assert_eq!(k.params().len(), 2);
/// # Ok::<(), gcl_ptx::ParseError>(())
/// ```
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    let kernels = parse_module(src)?;
    match kernels.len() {
        1 => Ok(kernels.into_iter().next().unwrap()),
        n => Err(ParseError::at(
            0,
            0,
            format!("expected one kernel, found {n}"),
        )),
    }
}

/// Parse a module containing one or more kernels (as real PTX files do).
///
/// An optional `.visible` qualifier before each `.entry` is accepted and
/// ignored.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or an empty module.
///
/// # Examples
///
/// ```
/// let kernels = gcl_ptx::parse_module(
///     ".visible .entry a () { exit; }\n.entry b () { exit; }",
/// )?;
/// assert_eq!(kernels.len(), 2);
/// assert_eq!(kernels[1].name(), "b");
/// # Ok::<(), gcl_ptx::ParseError>(())
/// ```
pub fn parse_module(src: &str) -> Result<Vec<Kernel>, ParseError> {
    parse_module_inner(src).map_err(|e| e.with_snippet(src))
}

fn parse_module_inner(src: &str) -> Result<Vec<Kernel>, ParseError> {
    let toks = lex(src)?;
    let mut kernels = Vec::new();
    let mut pos = 0;
    while pos < toks.len() {
        let (kernel, next) = parse_one_kernel(&toks, pos)?;
        kernels.push(kernel);
        pos = next;
    }
    if kernels.is_empty() {
        return Err(ParseError::at(0, 0, "module contains no kernels"));
    }
    Ok(kernels)
}

fn parse_one_kernel(all_toks: &[Spanned], start: usize) -> Result<(Kernel, usize), ParseError> {
    let toks = all_toks[start..].to_vec();
    // Numeric registers (`%rN`) claim their own ids; pre-scan them so that
    // named registers (`%p1`, `%rd3`, ...) are interned above every numeric
    // id and can never collide.
    let max_numeric = toks
        .iter()
        .filter_map(|(t, _, _)| match t {
            Tok::Percent(name) => name.strip_prefix('r').and_then(|s| s.parse::<u32>().ok()),
            _ => None,
        })
        .max();
    let next_reg = max_numeric.map_or(0, |m| m + 1);
    let mut p = Parser {
        toks,
        pos: 0,
        regs: HashMap::new(),
        next_reg,
        params: Vec::new(),
    };

    // Header: optional `.visible`, then `.entry`.
    if let Some(Tok::DotWord(w)) = p.peek() {
        if w == "visible" {
            p.next()?;
        }
    }
    match p.next()? {
        Tok::DotWord(w) if w == "entry" => {}
        other => {
            p.pos -= 1;
            return Err(p.err(format!("expected `.entry`, found {other}")));
        }
    }
    let name = p.expect_word()?;
    p.expect(Tok::LParen)?;
    if p.peek() != Some(&Tok::RParen) {
        loop {
            match p.next()? {
                Tok::DotWord(w) if w == "param" => {}
                other => {
                    p.pos -= 1;
                    return Err(p.err(format!("expected `.param`, found {other}")));
                }
            }
            let ty = match p.next()? {
                Tok::DotWord(t) => Type::from_suffix(&t)
                    .ok_or_else(|| p.err(format!("unknown param type `.{t}`")))?,
                other => {
                    p.pos -= 1;
                    return Err(p.err(format!("expected param type, found {other}")));
                }
            };
            let pname = p.expect_word()?;
            p.params.push(ParamDecl::new(pname, ty));
            match p.next()? {
                Tok::Comma => continue,
                Tok::RParen => break,
                other => {
                    p.pos -= 1;
                    return Err(p.err(format!("expected `,` or `)`, found {other}")));
                }
            }
        }
    } else {
        p.next()?;
    }

    let mut shared_bytes = 0u32;
    if let Some(Tok::DotWord(w)) = p.peek() {
        if w == "shared" {
            p.next()?;
            match p.next()? {
                Tok::Int(v) if v >= 0 => shared_bytes = v as u32,
                other => {
                    p.pos -= 1;
                    return Err(p.err(format!("expected shared size, found {other}")));
                }
            }
        }
    }

    p.expect(Tok::LBrace)?;

    // Body: instructions with symbolic labels, resolved afterwards.
    let mut insts: Vec<Instruction> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    // (pc, label, line, col) of every `bra` awaiting label resolution.
    let mut branch_fixups: Vec<(usize, String, usize, usize)> = Vec::new();

    loop {
        match p.peek() {
            Some(Tok::RBrace) => {
                p.next()?;
                break;
            }
            None => return Err(p.err("missing closing `}`")),
            _ => {}
        }

        // Label? `IDENT :`
        if let Some(Tok::Word(w)) = p.peek() {
            if p.toks.get(p.pos + 1).map(|(t, _, _)| t) == Some(&Tok::Colon) {
                let w = w.clone();
                p.next()?;
                p.next()?;
                if labels.insert(w.clone(), insts.len()).is_some() {
                    return Err(p.err(format!("label `{w}` defined twice")));
                }
                continue;
            }
        }

        // Optional guard.
        let mut guard = None;
        if p.peek() == Some(&Tok::At) {
            p.next()?;
            let negate = if p.peek() == Some(&Tok::Bang) {
                p.next()?;
                true
            } else {
                false
            };
            let pred = p.parse_reg()?;
            guard = Some(Guard { pred, negate });
        }

        let (line, col) = p.span();
        let mnemonic = p.expect_word()?;
        let parts: Vec<&str> = mnemonic.split('.').collect();
        let op = parse_op(&mut p, &parts, (line, col), &mut branch_fixups, insts.len())?;
        p.expect(Tok::Semi)?;
        insts.push(Instruction { op, guard });
    }

    // Resolve labels.
    for (pc, label, line, col) in branch_fixups {
        let target = *labels
            .get(&label)
            .ok_or_else(|| ParseError::at(line, col, format!("undefined label `{label}`")))?;
        if let Op::Bra { target: t } = &mut insts[pc].op {
            *t = target;
        }
    }

    let consumed = start + p.pos;
    Kernel::new(name, p.params.clone(), shared_bytes, insts)
        .map(|k| (k, consumed))
        .map_err(ParseError::from)
}

fn parse_op(
    p: &mut Parser,
    parts: &[&str],
    (line, col): (usize, usize),
    branch_fixups: &mut Vec<(usize, String, usize, usize)>,
    pc: usize,
) -> Result<Op, ParseError> {
    let head = parts[0];
    match head {
        "ld" => {
            let space = Space::from_suffix(parts.get(1).copied().unwrap_or(""))
                .ok_or_else(|| p.err("ld: missing/unknown space"))?;
            let ty = p.parse_type(parts.get(2))?;
            let dst = p.parse_reg()?;
            p.expect(Tok::Comma)?;
            let addr = p.parse_address(space)?;
            Ok(Op::Ld {
                space,
                ty,
                dst,
                addr,
            })
        }
        "st" => {
            let space = Space::from_suffix(parts.get(1).copied().unwrap_or(""))
                .ok_or_else(|| p.err("st: missing/unknown space"))?;
            let ty = p.parse_type(parts.get(2))?;
            let addr = p.parse_address(space)?;
            p.expect(Tok::Comma)?;
            let src = p.parse_operand()?;
            Ok(Op::St {
                space,
                ty,
                addr,
                src,
            })
        }
        "mov" => {
            let ty = p.parse_type(parts.get(1))?;
            let dst = p.parse_reg()?;
            p.expect(Tok::Comma)?;
            let src = p.parse_operand()?;
            Ok(Op::Mov { ty, dst, src })
        }
        "cvt" => {
            let dst_ty = p.parse_type(parts.get(1))?;
            let src_ty = p.parse_type(parts.get(2))?;
            let dst = p.parse_reg()?;
            p.expect(Tok::Comma)?;
            let src = p.parse_operand()?;
            Ok(Op::Cvt {
                dst_ty,
                src_ty,
                dst,
                src,
            })
        }
        "mul" => {
            // mul.lo.ty / mul.hi.ty / mul.wide.ty / mul.f32
            let (op, ty_idx) = match parts.get(1) {
                Some(&"lo") => (AluOp::Mul, 2),
                Some(&"hi") => (AluOp::MulHi, 2),
                Some(&"wide") => (AluOp::MulWide, 2),
                _ => (AluOp::Mul, 1),
            };
            let ty = p.parse_type(parts.get(ty_idx))?;
            alu(p, op, ty)
        }
        "add" | "sub" | "div" | "rem" | "min" | "max" | "and" | "or" | "xor" | "shl" | "shr" => {
            let op = match head {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "div" => AluOp::Div,
                "rem" => AluOp::Rem,
                "min" => AluOp::Min,
                "max" => AluOp::Max,
                "and" => AluOp::And,
                "or" => AluOp::Or,
                "xor" => AluOp::Xor,
                "shl" => AluOp::Shl,
                _ => AluOp::Shr,
            };
            // Skip optional rounding/approx modifiers like `add.rn.f32`.
            let ty = last_type(p, parts)?;
            alu(p, op, ty)
        }
        "mad" | "fma" => {
            let wide = parts.get(1) == Some(&"wide");
            let ty = last_type(p, parts)?;
            let dst = p.parse_reg()?;
            p.expect(Tok::Comma)?;
            let a = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let b = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let c = p.parse_operand()?;
            Ok(Op::Mad {
                ty,
                dst,
                a,
                b,
                c,
                wide,
            })
        }
        "neg" | "not" | "abs" | "popc" | "clz" => {
            let op = match head {
                "neg" => UnaryOp::Neg,
                "not" => UnaryOp::Not,
                "abs" => UnaryOp::Abs,
                "popc" => UnaryOp::Popc,
                _ => UnaryOp::Clz,
            };
            let ty = last_type(p, parts)?;
            let dst = p.parse_reg()?;
            p.expect(Tok::Comma)?;
            let a = p.parse_operand()?;
            Ok(Op::Unary { op, ty, dst, a })
        }
        "sin" | "cos" | "sqrt" | "rsqrt" | "rcp" | "ex2" | "lg2" => {
            let op = match head {
                "sin" => SfuOp::Sin,
                "cos" => SfuOp::Cos,
                "sqrt" => SfuOp::Sqrt,
                "rsqrt" => SfuOp::Rsqrt,
                "rcp" => SfuOp::Rcp,
                "ex2" => SfuOp::Ex2,
                _ => SfuOp::Lg2,
            };
            let ty = last_type(p, parts)?;
            let dst = p.parse_reg()?;
            p.expect(Tok::Comma)?;
            let a = p.parse_operand()?;
            Ok(Op::Sfu { op, ty, dst, a })
        }
        "setp" => {
            let cmp = match parts.get(1) {
                Some(&"eq") => CmpOp::Eq,
                Some(&"ne") => CmpOp::Ne,
                Some(&"lt") => CmpOp::Lt,
                Some(&"le") => CmpOp::Le,
                Some(&"gt") => CmpOp::Gt,
                Some(&"ge") => CmpOp::Ge,
                other => {
                    return Err(ParseError::at(
                        line,
                        col,
                        format!("setp: unknown comparison {other:?}"),
                    ))
                }
            };
            let ty = p.parse_type(parts.get(2))?;
            let dst = p.parse_reg()?;
            p.expect(Tok::Comma)?;
            let a = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let b = p.parse_operand()?;
            Ok(Op::Setp { cmp, ty, dst, a, b })
        }
        "selp" => {
            let ty = p.parse_type(parts.get(1))?;
            let dst = p.parse_reg()?;
            p.expect(Tok::Comma)?;
            let a = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let b = p.parse_operand()?;
            p.expect(Tok::Comma)?;
            let pred = p.parse_reg()?;
            Ok(Op::Selp {
                ty,
                dst,
                a,
                b,
                pred,
            })
        }
        "bra" => {
            let label = p.expect_word()?;
            branch_fixups.push((pc, label, line, col));
            Ok(Op::Bra { target: usize::MAX })
        }
        "bar" => {
            // `bar.sync id` (the id defaults to 0 when omitted)
            let mut id = 0u32;
            if let Some(Tok::Int(v)) = p.peek() {
                id = *v as u32;
                p.next()?;
            }
            Ok(Op::Bar { id })
        }
        "atom" => {
            // atom.global.add.u32 %d, [a], b
            let op = match parts.get(2) {
                Some(&"add") => AtomOp::Add,
                Some(&"min") => AtomOp::Min,
                Some(&"max") => AtomOp::Max,
                Some(&"exch") => AtomOp::Exch,
                Some(&"and") => AtomOp::And,
                Some(&"or") => AtomOp::Or,
                other => {
                    return Err(ParseError::at(
                        line,
                        col,
                        format!("atom: unknown op {other:?}"),
                    ))
                }
            };
            let ty = p.parse_type(parts.get(3))?;
            let dst = p.parse_reg()?;
            p.expect(Tok::Comma)?;
            let addr = p.parse_address(Space::Global)?;
            p.expect(Tok::Comma)?;
            let src = p.parse_operand()?;
            Ok(Op::Atom {
                op,
                ty,
                dst,
                addr,
                src,
            })
        }
        "exit" | "ret" => Ok(Op::Exit),
        other => Err(ParseError::at(
            line,
            col,
            format!("unknown mnemonic `{other}`"),
        )),
    }
}

fn alu(p: &mut Parser, op: AluOp, ty: Type) -> Result<Op, ParseError> {
    let dst = p.parse_reg()?;
    p.expect(Tok::Comma)?;
    let a = p.parse_operand()?;
    p.expect(Tok::Comma)?;
    let b = p.parse_operand()?;
    Ok(Op::Alu { op, ty, dst, a, b })
}

/// The last dot-part that parses as a type (skips `.rn`, `.approx`, ...).
fn last_type(p: &Parser, parts: &[&str]) -> Result<Type, ParseError> {
    parts
        .iter()
        .rev()
        .find_map(|s| Type::from_suffix(s))
        .ok_or_else(|| p.err(format!("missing type suffix in `{}`", parts.join("."))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_quickstart_kernel() {
        let src = r#"
        // doubles every element
        .entry scale (.param .u64 data, .param .u32 n)
        {
          ld.param.u64 %rd1, [data];
          ld.param.u32 %r9, [n];
          mov.u32 %r1, %tid.x;
          setp.ge.u32 %p1, %r1, %r9;
          @%p1 bra DONE;
          mul.wide.u32 %rd2, %r1, 4;
          add.u64 %rd3, %rd1, %rd2;
          ld.global.u32 %r2, [%rd3];
          shl.u32 %r3, %r2, 1;
          st.global.u32 [%rd3], %r3;
        DONE:
          exit;
        }
        "#;
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.name(), "scale");
        assert_eq!(k.params().len(), 2);
        assert_eq!(k.global_load_pcs().len(), 1);
        // Guarded branch resolved to the exit.
        let bra_pc = 4;
        match k.insts()[bra_pc].op {
            Op::Bra { target } => assert_eq!(target, k.insts().len() - 1),
            ref o => panic!("expected bra, got {o:?}"),
        }
        assert!(k.insts()[bra_pc].guard.is_some());
    }

    #[test]
    fn numeric_registers_keep_their_ids() {
        let src = ".entry k () { mov.u32 %r7, 1; st.global.u32 [%r7], %r7; exit; }";
        let k = parse_kernel(src).unwrap();
        match k.insts()[0].op {
            Op::Mov { dst, .. } => assert_eq!(dst, Reg(7)),
            ref o => panic!("{o:?}"),
        }
    }

    #[test]
    fn named_registers_do_not_collide_with_numeric() {
        let src = ".entry k () { mov.u32 %p1, 1; mov.u32 %r0, 2; mov.u32 %r1, 3; exit; }";
        let k = parse_kernel(src).unwrap();
        let dsts: Vec<Reg> = k.insts().iter().filter_map(|i| i.dst_reg()).collect();
        // All three destinations must be distinct registers.
        let mut ids: Vec<u32> = dsts.iter().map(|r| r.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3, "{dsts:?}");
    }

    #[test]
    fn unknown_label_is_an_error() {
        let src = ".entry k () { bra NOWHERE; exit; }";
        let err = parse_kernel(src).unwrap_err();
        assert!(err.msg.contains("NOWHERE"), "{err}");
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let src = ".entry k () { A: mov.u32 %r0, 1; A: exit; }";
        let err = parse_kernel(src).unwrap_err();
        assert!(err.msg.contains("defined twice"), "{err}");
    }

    #[test]
    fn unknown_param_name_is_an_error() {
        let src = ".entry k (.param .u64 a) { ld.param.u64 %r0, [b]; exit; }";
        let err = parse_kernel(src).unwrap_err();
        assert!(err.msg.contains("unknown parameter"), "{err}");
    }

    #[test]
    fn param_offsets_resolved_by_name() {
        let src = r#"
        .entry k (.param .u32 a, .param .u64 b)
        { ld.param.u64 %r0, [b]; exit; }
        "#;
        let k = parse_kernel(src).unwrap();
        match k.insts()[0].op {
            Op::Ld { addr, .. } => assert_eq!(addr.offset, 8), // aligned past a
            ref o => panic!("{o:?}"),
        }
    }

    #[test]
    fn negative_offsets_and_hex_literals() {
        let src = ".entry k () { mov.u32 %r1, 0x10; ld.global.u32 %r0, [%r1-4]; exit; }";
        let k = parse_kernel(src).unwrap();
        match k.insts()[0].op {
            Op::Mov { src, .. } => assert_eq!(src, Operand::Imm(16)),
            ref o => panic!("{o:?}"),
        }
        match k.insts()[1].op {
            Op::Ld { addr, .. } => assert_eq!(addr.offset, -4),
            ref o => panic!("{o:?}"),
        }
    }

    #[test]
    fn float_literals() {
        let src = ".entry k () { mov.f32 %f1, 1.5; mov.f64 %fd1, 0F3FF0000000000000; exit; }";
        let k = parse_kernel(src).unwrap();
        match k.insts()[0].op {
            Op::Mov { src, .. } => assert_eq!(src.as_f64(), Some(1.5)),
            ref o => panic!("{o:?}"),
        }
        match k.insts()[1].op {
            Op::Mov { src, .. } => assert_eq!(src.as_f64(), Some(1.0)),
            ref o => panic!("{o:?}"),
        }
    }

    #[test]
    fn guards_parse_both_polarities() {
        let src = r#"
        .entry k ()
        {
          setp.eq.u32 %p1, %tid.x, 0;
          @%p1 mov.u32 %r1, 1;
          @!%p1 mov.u32 %r2, 2;
          exit;
        }
        "#;
        let k = parse_kernel(src).unwrap();
        let g1 = k.insts()[1].guard.unwrap();
        let g2 = k.insts()[2].guard.unwrap();
        assert!(!g1.negate);
        assert!(g2.negate);
        assert_eq!(g1.pred, g2.pred);
    }

    #[test]
    fn atom_and_bar_parse() {
        let src = r#"
        .entry k (.param .u64 ctr)
        {
          ld.param.u64 %rd1, [ctr];
          atom.global.add.u32 %r1, [%rd1], 1;
          bar.sync 0;
          exit;
        }
        "#;
        let k = parse_kernel(src).unwrap();
        assert!(matches!(
            k.insts()[1].op,
            Op::Atom {
                op: AtomOp::Add,
                ..
            }
        ));
        assert!(matches!(k.insts()[2].op, Op::Bar { id: 0 }));
    }

    #[test]
    fn unary_ops_parse() {
        let src = ".entry k () { mov.u32 %r1, 5; neg.s32 %r2, %r1; not.b32 %r3, %r2; \
                   abs.s32 %r4, %r3; popc.u32 %r5, %r4; clz.u32 %r6, %r5; exit; }";
        let k = parse_kernel(src).unwrap();
        let unaries = k
            .insts()
            .iter()
            .filter(|i| matches!(i.op, Op::Unary { .. }))
            .count();
        assert_eq!(unaries, 5);
        // Round trip.
        let again = parse_kernel(&k.to_string()).unwrap();
        assert_eq!(again, k);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let src = r#"
        .entry rt (.param .u64 a, .param .u32 n)
        .shared 256
        {
          ld.param.u64 %rd1, [a];
          mov.u32 %r1, %ctaid.x;
          mad.lo.u32 %r2, %r1, 32, %r1;
          setp.lt.u32 %p1, %r2, 100;
          @!%p1 bra OUT;
          mul.wide.u32 %rd2, %r2, 8;
          add.u64 %rd3, %rd1, %rd2;
          ld.global.f64 %fd1, [%rd3];
          sqrt.approx.f64 %fd2, %fd1;
          st.global.f64 [%rd3], %fd2;
        OUT:
          exit;
        }
        "#;
        let k1 = parse_kernel(src).unwrap();
        let text = format!("{k1}");
        let k2 = parse_kernel(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(k1, k2, "round trip changed the kernel:\n{text}");
    }

    #[test]
    fn modules_parse_multiple_kernels() {
        let src = r#"
        .visible .entry first (.param .u64 a)
        { ld.param.u64 %rd1, [a]; exit; }
        .entry second ()
        { mov.u32 %r1, 7; exit; }
        "#;
        let kernels = parse_module(src).unwrap();
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].name(), "first");
        assert_eq!(kernels[1].name(), "second");
        assert_eq!(kernels[0].params().len(), 1);
        // parse_kernel rejects multi-kernel sources.
        let err = parse_kernel(src).unwrap_err();
        assert!(err.msg.contains("expected one kernel"), "{err}");
    }

    #[test]
    fn empty_module_is_an_error() {
        assert!(parse_module("// nothing here").is_err());
    }

    #[test]
    fn error_reports_line_numbers() {
        let src = ".entry k ()\n{\n  mov.u32 %r1, 1;\n  bogus.u32 %r2, 2;\n  exit;\n}";
        let err = parse_kernel(src).unwrap_err();
        assert_eq!(err.line, 4);
    }

    /// The rendered error carries line:column, the offending source line,
    /// and a caret pointing at the offending token.
    #[test]
    fn error_renders_column_and_snippet() {
        let src = ".entry k ()\n{\n  mov.u32 %r1, 1;\n  bogus.u32 %r2, 2;\n  exit;\n}";
        let err = parse_kernel(src).unwrap_err();
        assert_eq!((err.line, err.col), (4, 3));
        assert_eq!(err.snippet, "  bogus.u32 %r2, 2;");
        let rendered = err.to_string();
        assert_eq!(
            rendered,
            "parse error at line 4:3: unknown mnemonic `bogus`\n\
             \x20 |   bogus.u32 %r2, 2;\n\
             \x20 |   ^"
        );
        // Mid-line errors point at the offending token, not the mnemonic.
        let src = ".entry k ()\n{\n  mov.u32 %r1, ];\n  exit;\n}";
        let err = parse_kernel(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.col, 16, "column of the `]`: {err}");
        assert!(err.snippet.contains("mov.u32"), "{err}");
    }
}
