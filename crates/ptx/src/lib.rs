//! # gcl-ptx — a PTX subset for GPU load analysis
//!
//! This crate defines the instruction set, kernel representation, textual
//! parser and control-flow analyses used throughout the `gcl` toolkit, a
//! reproduction of *"Revealing Critical Loads and Hidden Data Locality in
//! GPGPU Applications"* (IISWC 2015).
//!
//! The subset mirrors how NVCC lowers CUDA: kernel parameters are read with
//! `ld.param`, thread identity comes from special registers (`%tid`,
//! `%ctaid`, ...), array indexing is `mul.wide` + `add`, and control flow is
//! predicated branches. This is exactly the vocabulary the paper's backward
//! dataflow analysis needs to distinguish *deterministic* loads (addresses
//! from parameterized data) from *non-deterministic* loads (addresses from
//! prior loads).
//!
//! ## Building kernels
//!
//! Programmatically, with [`KernelBuilder`]:
//!
//! ```
//! use gcl_ptx::{KernelBuilder, Type};
//!
//! let mut b = KernelBuilder::new("saxpy_ish");
//! let x = b.param("x", Type::U64);
//! let base = b.ld_param(Type::U64, x);
//! let tid = b.thread_linear_id();
//! let addr = b.index64(base, tid, 4);
//! let v = b.ld_global(Type::F32, addr);
//! b.st_global(Type::F32, addr, v);
//! b.exit();
//! let kernel = b.build()?;
//! assert_eq!(kernel.global_load_pcs().len(), 1);
//! # Ok::<(), gcl_ptx::ValidateError>(())
//! ```
//!
//! Or from text, with [`parse_kernel`]:
//!
//! ```
//! let k = gcl_ptx::parse_kernel(
//!     ".entry noop () { exit; }",
//! )?;
//! assert_eq!(k.name(), "noop");
//! # Ok::<(), gcl_ptx::ParseError>(())
//! ```
//!
//! ## Control flow
//!
//! [`Cfg`] builds basic blocks and computes immediate post-dominators, which
//! the simulator uses as SIMT reconvergence points and the classifier uses
//! for reaching-definitions dataflow.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod cfg;
mod fmt;
mod inst;
mod kernel;
mod loops;
mod parse;
mod reg;
mod types;

pub use builder::{KernelBuilder, Label, ParamRef};
pub use cfg::{BasicBlock, BlockId, Cfg, RECONV_EXIT};
pub use inst::{
    Address, AluOp, AtomOp, CmpOp, Guard, Instruction, Op, Operand, SfuOp, UnaryOp, Unit,
};
pub use kernel::{Kernel, ParamDecl, ValidateError};
pub use loops::{Loop, LoopForest};
pub use parse::{parse_kernel, parse_module, ParseError};
pub use reg::{Reg, Special};
pub use types::{Space, Type};
