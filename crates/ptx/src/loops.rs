//! Natural-loop analysis: forward dominators, back edges, and the loop
//! nesting forest.
//!
//! The footprint analysis of `gcl-analyze` needs to know, for every load,
//! which loops enclose it, where each loop's induction variables are
//! initialized and stepped, and through which edges the loop exits (the
//! guard comparisons there bound the trip count). All of that starts from
//! the classical construction implemented here: immediate dominators via
//! the Cooper–Harvey–Kennedy iteration (the forward twin of
//! [`Cfg::immediate_post_dominators`]), back edges `t -> h` where `h`
//! dominates `t`, and the natural loop of each back edge (reverse flood
//! from the latch that stops at the header). Loops sharing a header are
//! merged; nesting is containment of the merged bodies.
//!
//! Only blocks reachable from the entry participate: unreachable code has
//! no dominator and therefore belongs to no loop.

use crate::cfg::{BlockId, Cfg};
use std::collections::BTreeSet;

/// One natural loop (after merging all back edges that share a header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The unique entry block of the loop.
    pub header: BlockId,
    /// Sources of the back edges into `header`, in ascending order.
    pub latches: Vec<BlockId>,
    /// Every block of the loop body, including `header` and the latches.
    pub blocks: BTreeSet<BlockId>,
    /// Edges leaving the loop: `(from, to)` with `from` inside and `to`
    /// outside, in ascending order.
    pub exit_edges: Vec<(BlockId, BlockId)>,
    /// Index (into [`LoopForest::loops`]) of the innermost enclosing loop.
    pub parent: Option<usize>,
    /// Nesting depth: 1 for outermost loops, 2 for loops inside them, ...
    pub depth: usize,
}

impl Loop {
    /// Whether block `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of one kernel, with their nesting relation.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop of each block, if any.
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// The loops, ordered by header block. Indexes into this slice are the
    /// loop ids used by [`LoopForest::innermost_of`] and [`Loop::parent`].
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The innermost loop containing block `b`, if any.
    pub fn innermost_of(&self, b: BlockId) -> Option<usize> {
        self.innermost.get(b).copied().flatten()
    }

    /// The chain of loops containing block `b`, innermost first.
    pub fn loops_of(&self, b: BlockId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.innermost_of(b);
        while let Some(l) = cur {
            out.push(l);
            cur = self.loops[l].parent;
        }
        out
    }
}

/// Whether `a` dominates `b` under the immediate-dominator map `idom`
/// (entry maps to itself; unreachable blocks map to `None`).
fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

impl Cfg {
    /// Immediate dominator of each block: the entry dominates itself;
    /// blocks unreachable from the entry have no dominator.
    ///
    /// Cooper–Harvey–Kennedy iteration over the forward CFG — the mirror of
    /// [`Cfg::immediate_post_dominators`].
    pub fn immediate_dominators(&self) -> Vec<Option<BlockId>> {
        let n = self.blocks().len();
        let rpo = self.reverse_post_order();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }

        let mut idom = vec![usize::MAX; n];
        if n > 0 {
            idom[0] = 0;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &self.blocks()[b].preds {
                    if idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect_fwd(&idom, &rpo_index, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        idom.into_iter()
            .map(|d| if d == usize::MAX { None } else { Some(d) })
            .collect()
    }

    /// The natural-loop nesting forest of this CFG.
    pub fn loop_forest(&self) -> LoopForest {
        let n = self.blocks().len();
        let idom = self.immediate_dominators();

        // Back edges t -> h (h dominates t), grouped by header.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for t in 0..n {
            if idom[t].is_none() {
                continue; // unreachable
            }
            for &h in &self.blocks()[t].succs {
                if dominates(&idom, h, t) {
                    match by_header.iter_mut().find(|(hh, _)| *hh == h) {
                        Some((_, latches)) => latches.push(t),
                        None => by_header.push((h, vec![t])),
                    }
                }
            }
        }
        by_header.sort_by_key(|(h, _)| *h);

        // Natural loop body: header plus everything that reaches a latch
        // backwards without passing through the header.
        let mut loops: Vec<Loop> = Vec::new();
        for (header, mut latches) in by_header {
            latches.sort_unstable();
            latches.dedup();
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if blocks.insert(l) {
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in &self.blocks()[b].preds {
                    if idom[p].is_some() && blocks.insert(p) {
                        stack.push(p);
                    }
                }
            }
            let mut exit_edges: Vec<(BlockId, BlockId)> = Vec::new();
            for &b in &blocks {
                for &s in &self.blocks()[b].succs {
                    if !blocks.contains(&s) {
                        exit_edges.push((b, s));
                    }
                }
            }
            exit_edges.sort_unstable();
            exit_edges.dedup();
            loops.push(Loop {
                header,
                latches,
                blocks,
                exit_edges,
                parent: None,
                depth: 1,
            });
        }

        // Nesting: the parent of L is the smallest other loop whose body
        // contains L's header (bodies of natural loops sharing no header
        // are either disjoint or nested for reducible CFGs).
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..loops.len()).collect();
            idx.sort_by_key(|&i| loops[i].blocks.len());
            idx
        };
        for (pos, &i) in order.iter().enumerate() {
            for &j in &order[pos + 1..] {
                if j != i && loops[j].blocks.contains(&loops[i].header) {
                    loops[i].parent = Some(j);
                    break;
                }
            }
        }
        // Depths, outermost-in: parents always have strictly larger bodies,
        // so resolving in ascending body order terminates.
        for &i in order.iter().rev() {
            loops[i].depth = match loops[i].parent {
                Some(p) => loops[p].depth + 1,
                None => 1,
            };
        }

        // Innermost loop per block: the smallest body containing it.
        let mut innermost: Vec<Option<usize>> = vec![None; n];
        for &i in order.iter().rev() {
            for &b in &loops[i].blocks {
                innermost[b] = Some(i);
            }
        }

        LoopForest { loops, innermost }
    }
}

/// CHK intersection walk on the forward dominator tree.
fn intersect_fwd(idom: &[usize], rpo_index: &[usize], a: usize, b: usize) -> usize {
    let mut f1 = a;
    let mut f2 = b;
    while f1 != f2 {
        while rpo_index[f1] > rpo_index[f2] {
            f1 = idom[f1];
        }
        while rpo_index[f2] > rpo_index[f1] {
            f2 = idom[f2];
        }
    }
    f1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Kernel, KernelBuilder, Op, Special, Type};

    /// for (i = 0; i < 7; i++) { body }
    fn counted_loop() -> Kernel {
        let mut b = KernelBuilder::new("k");
        let i = b.reg();
        b.push(Op::Mov {
            ty: Type::U32,
            dst: i,
            src: 0i64.into(),
        });
        let head = b.new_label();
        let done = b.new_label();
        b.place(head);
        let p = b.setp(CmpOp::Ge, Type::U32, i, 7i64);
        b.bra_if(p, done);
        b.imm32(1); // body
        b.push(Op::Alu {
            op: crate::AluOp::Add,
            ty: Type::U32,
            dst: i,
            a: i.into(),
            b: 1i64.into(),
        });
        b.bra(head);
        b.place(done);
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn dominators_of_counted_loop() {
        let k = counted_loop();
        let cfg = Cfg::build(&k);
        let idom = cfg.immediate_dominators();
        assert_eq!(idom[0], Some(0));
        // Every reachable block is dominated by the entry.
        for b in 1..cfg.blocks().len() {
            assert!(dominates(&idom, 0, b), "entry must dominate block {b}");
        }
    }

    #[test]
    fn counted_loop_is_one_loop() {
        let k = counted_loop();
        let cfg = Cfg::build(&k);
        let forest = cfg.loop_forest();
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.depth, 1);
        assert_eq!(l.parent, None);
        assert_eq!(l.latches.len(), 1);
        // Header is the guard block (contains the setp at pc 1).
        assert_eq!(l.header, cfg.block_of(1));
        assert!(l.contains(cfg.block_of(2))); // body
        assert_eq!(l.exit_edges.len(), 1);
        let (from, to) = l.exit_edges[0];
        assert_eq!(from, l.header);
        assert!(!l.contains(to));
        assert_eq!(forest.innermost_of(cfg.block_of(2)), Some(0));
        assert_eq!(forest.innermost_of(cfg.block_of(0)), None);
    }

    #[test]
    fn nested_loops_have_depths() {
        // for i { for j { body } }
        let mut b = KernelBuilder::new("k");
        let i = b.reg();
        let j = b.reg();
        b.push(Op::Mov {
            ty: Type::U32,
            dst: i,
            src: 0i64.into(),
        });
        let ihead = b.new_label();
        let idone = b.new_label();
        b.place(ihead);
        let pi = b.setp(CmpOp::Ge, Type::U32, i, 4i64);
        b.bra_if(pi, idone);
        b.push(Op::Mov {
            ty: Type::U32,
            dst: j,
            src: 0i64.into(),
        });
        let jhead = b.new_label();
        let jdone = b.new_label();
        b.place(jhead);
        let pj = b.setp(CmpOp::Ge, Type::U32, j, 4i64);
        b.bra_if(pj, jdone);
        let body = b.imm32(1);
        let _ = b.add(Type::U32, body, 1i64);
        b.push(Op::Alu {
            op: crate::AluOp::Add,
            ty: Type::U32,
            dst: j,
            a: j.into(),
            b: 1i64.into(),
        });
        b.bra(jhead);
        b.place(jdone);
        b.push(Op::Alu {
            op: crate::AluOp::Add,
            ty: Type::U32,
            dst: i,
            a: i.into(),
            b: 1i64.into(),
        });
        b.bra(ihead);
        b.place(idone);
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        let forest = cfg.loop_forest();
        assert_eq!(forest.loops().len(), 2);
        let outer = forest
            .loops()
            .iter()
            .position(|l| l.depth == 1)
            .expect("outer loop");
        let inner = forest
            .loops()
            .iter()
            .position(|l| l.depth == 2)
            .expect("inner loop");
        assert_eq!(forest.loops()[inner].parent, Some(outer));
        assert!(forest.loops()[outer]
            .blocks
            .is_superset(&forest.loops()[inner].blocks));
        // A body block of the inner loop reports the inner loop innermost,
        // with the chain [inner, outer].
        let body_block = forest.loops()[inner]
            .blocks
            .iter()
            .copied()
            .find(|&b| b != forest.loops()[inner].header)
            .unwrap_or(forest.loops()[inner].header);
        let chain = forest.loops_of(body_block);
        assert_eq!(chain, vec![inner, outer]);
    }

    #[test]
    fn do_while_latch_loop() {
        // do { i-- } while (i > 0): single block loops to itself.
        let mut b = KernelBuilder::new("k");
        let i = b.reg();
        b.push(Op::Mov {
            ty: Type::U32,
            dst: i,
            src: 8i64.into(),
        });
        let head = b.new_label();
        b.place(head);
        b.push(Op::Alu {
            op: crate::AluOp::Sub,
            ty: Type::U32,
            dst: i,
            a: i.into(),
            b: 1i64.into(),
        });
        let p = b.setp(CmpOp::Gt, Type::U32, i, 0i64);
        b.bra_if(p, head);
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        let forest = cfg.loop_forest();
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, cfg.block_of(1));
        assert_eq!(l.latches, vec![l.header]);
        assert_eq!(l.blocks.len(), 1);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = KernelBuilder::new("k");
        let p = b.setp(CmpOp::Eq, Type::U32, Special::TidX, 0i64);
        let l = b.new_label();
        b.bra_if(p, l);
        b.imm32(1);
        b.place(l);
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        assert!(cfg.loop_forest().loops().is_empty());
    }

    #[test]
    fn unreachable_block_is_loopless_and_undominated() {
        // entry -> exit; then an unreachable self-loop after it.
        let mut b = KernelBuilder::new("k");
        let skip = b.new_label();
        b.bra(skip);
        let dead = b.new_label();
        b.place(dead);
        b.imm32(1);
        b.bra(dead);
        b.place(skip);
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        let idom = cfg.immediate_dominators();
        let dead_block = cfg.block_of(1);
        assert_eq!(idom[dead_block], None);
        let forest = cfg.loop_forest();
        assert!(forest.loops().is_empty());
        assert_eq!(forest.innermost_of(dead_block), None);
    }
}
