//! Instructions of the PTX subset: operands, addressing, opcodes.

use crate::{Reg, Space, Special, Type};
use std::fmt;

/// A source operand: register, immediate, or special register.
///
/// Floating-point immediates are stored as raw `f64` bits so that `Operand`
/// can implement `Eq`/`Hash`; use [`Operand::f32`]/[`Operand::f64`] to build
/// them and [`Operand::as_f64`] to read them back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A virtual register.
    Reg(Reg),
    /// An integer immediate (sign-extended to 64 bits).
    Imm(i64),
    /// A floating-point immediate, stored as the raw bits of an `f64`.
    FImm(u64),
    /// A special register such as `%tid.x`.
    Special(Special),
}

impl Operand {
    /// Build a floating-point immediate from an `f32` value.
    pub fn f32(v: f32) -> Operand {
        Operand::FImm((v as f64).to_bits())
    }

    /// Build a floating-point immediate from an `f64` value.
    pub fn f64(v: f64) -> Operand {
        Operand::FImm(v.to_bits())
    }

    /// The floating-point value of an [`Operand::FImm`], if this is one.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Operand::FImm(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// The register, if this operand is one.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Whether this operand reads launch-invariant state (immediate or
    /// special register) rather than a register.
    pub fn is_launch_invariant(self) -> bool {
        !matches!(self, Operand::Reg(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<Special> for Operand {
    fn from(s: Special) -> Operand {
        Operand::Special(s)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::FImm(bits) => write!(f, "0F{bits:016x}"),
            Operand::Special(s) => write!(f, "{s}"),
        }
    }
}

/// A memory address expression: optional base register plus byte offset.
///
/// `ld.param` addresses usually have no base (the offset selects the
/// parameter); global/shared accesses usually have a register base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Address {
    /// Base register, added to `offset` if present.
    pub base: Option<Reg>,
    /// Constant byte offset.
    pub offset: i64,
}

impl Address {
    /// Address that is a register plus zero offset.
    pub fn reg(base: Reg) -> Address {
        Address {
            base: Some(base),
            offset: 0,
        }
    }

    /// Address that is a register plus a byte offset.
    pub fn reg_offset(base: Reg, offset: i64) -> Address {
        Address {
            base: Some(base),
            offset,
        }
    }

    /// Absolute address (no base register).
    pub fn abs(offset: i64) -> Address {
        Address { base: None, offset }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.base, self.offset) {
            (Some(r), 0) => write!(f, "[{r}]"),
            (Some(r), o) if o >= 0 => write!(f, "[{r}+{o}]"),
            (Some(r), o) => write!(f, "[{r}{o}]"),
            (None, o) => write!(f, "[{o}]"),
        }
    }
}

/// Two-source integer/float ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `add`
    Add,
    /// `sub`
    Sub,
    /// `mul.lo` / floating `mul`
    Mul,
    /// `mul.hi` — upper half of the full product (integer only).
    MulHi,
    /// `mul.wide` — full product, result twice the operand width (integer only).
    MulWide,
    /// `div`
    Div,
    /// `rem` (integer only)
    Rem,
    /// `min`
    Min,
    /// `max`
    Max,
    /// `and` (integer/bits only)
    And,
    /// `or`
    Or,
    /// `xor`
    Xor,
    /// `shl`
    Shl,
    /// `shr`
    Shr,
}

impl AluOp {
    /// PTX mnemonic body (without type suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul.lo",
            AluOp::MulHi => "mul.hi",
            AluOp::MulWide => "mul.wide",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        }
    }
}

/// One-source ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `neg` — arithmetic negation (integer two's complement or float sign).
    Neg,
    /// `not` — bitwise complement (integer only).
    Not,
    /// `abs` — absolute value.
    Abs,
    /// `popc` — population count (integer only; result is u32).
    Popc,
    /// `clz` — count leading zeros (integer only; result is u32).
    Clz,
}

impl UnaryOp {
    /// PTX mnemonic body.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Not => "not",
            UnaryOp::Abs => "abs",
            UnaryOp::Popc => "popc",
            UnaryOp::Clz => "clz",
        }
    }
}

/// Transcendental / special-function-unit operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuOp {
    /// `sin.approx`
    Sin,
    /// `cos.approx`
    Cos,
    /// `sqrt.approx`
    Sqrt,
    /// `rsqrt.approx`
    Rsqrt,
    /// `rcp.approx`
    Rcp,
    /// `ex2.approx` (2^x)
    Ex2,
    /// `lg2.approx` (log2 x)
    Lg2,
}

impl SfuOp {
    /// PTX mnemonic body.
    pub fn mnemonic(self) -> &'static str {
        match self {
            SfuOp::Sin => "sin.approx",
            SfuOp::Cos => "cos.approx",
            SfuOp::Sqrt => "sqrt.approx",
            SfuOp::Rsqrt => "rsqrt.approx",
            SfuOp::Rcp => "rcp.approx",
            SfuOp::Ex2 => "ex2.approx",
            SfuOp::Lg2 => "lg2.approx",
        }
    }
}

/// Comparison operators for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `eq`
    Eq,
    /// `ne`
    Ne,
    /// `lt`
    Lt,
    /// `le`
    Le,
    /// `gt`
    Gt,
    /// `ge`
    Ge,
}

impl CmpOp {
    /// PTX mnemonic body.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// The comparison with swapped operand order (`a op b` == `b swap(op) a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of this comparison.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Atomic read-modify-write operations on global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// `atom.add`
    Add,
    /// `atom.min`
    Min,
    /// `atom.max`
    Max,
    /// `atom.exch`
    Exch,
    /// `atom.and`
    And,
    /// `atom.or`
    Or,
}

impl AtomOp {
    /// PTX mnemonic body.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AtomOp::Add => "add",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::Exch => "exch",
            AtomOp::And => "and",
            AtomOp::Or => "or",
        }
    }
}

/// The execution unit an instruction occupies inside an SM.
///
/// Used by the simulator for Figure 4 of the paper (idle fraction of the
/// first pipeline stage of SP / SFU / LD-ST units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Stream processor (integer/float ALU).
    Sp,
    /// Special function unit (transcendentals).
    Sfu,
    /// Load/store unit (all memory operations).
    LdSt,
    /// Control: branches, barriers, exit — handled at issue, no unit.
    Ctrl,
}

/// Opcode plus operands of one instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Load `ty` from `addr` in `space` into `dst`.
    Ld {
        /// State space read.
        space: Space,
        /// Element type.
        ty: Type,
        /// Destination register.
        dst: Reg,
        /// Effective address expression.
        addr: Address,
    },
    /// Store `src` of `ty` to `addr` in `space`.
    St {
        /// State space written.
        space: Space,
        /// Element type.
        ty: Type,
        /// Effective address expression.
        addr: Address,
        /// Value stored.
        src: Operand,
    },
    /// Register move / immediate or special-register materialization.
    Mov {
        /// Value type.
        ty: Type,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Convert `src` from `src_ty` to `dst_ty`.
    Cvt {
        /// Destination type.
        dst_ty: Type,
        /// Source type.
        src_ty: Type,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// One-source ALU operation `dst = op a`.
    Unary {
        /// The operation.
        op: UnaryOp,
        /// Operand type.
        ty: Type,
        /// Destination register.
        dst: Reg,
        /// Source.
        a: Operand,
    },
    /// Two-source ALU operation `dst = a op b`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Operand type.
        ty: Type,
        /// Destination register.
        dst: Reg,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// Multiply-add `dst = a * b + c`. With `wide`, the product (and `c`) are
    /// at twice the operand width (`mad.wide`).
    Mad {
        /// Operand type of `a` and `b`.
        ty: Type,
        /// Destination register.
        dst: Reg,
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
        /// `mad.wide` (integer only): result twice the operand width.
        wide: bool,
    },
    /// Special-function operation `dst = op(a)`.
    Sfu {
        /// The operation.
        op: SfuOp,
        /// Operand type (F32 or F64).
        ty: Type,
        /// Destination register.
        dst: Reg,
        /// Source.
        a: Operand,
    },
    /// Set predicate `dst = (a cmp b)`.
    Setp {
        /// Comparison operator.
        cmp: CmpOp,
        /// Operand type.
        ty: Type,
        /// Destination predicate register.
        dst: Reg,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// Select `dst = pred ? a : b`.
    Selp {
        /// Value type.
        ty: Type,
        /// Destination register.
        dst: Reg,
        /// Value when `pred` is true.
        a: Operand,
        /// Value when `pred` is false.
        b: Operand,
        /// Predicate register.
        pred: Reg,
    },
    /// Branch to instruction index `target`. A guarded `Bra` is a conditional
    /// branch; an unguarded one is unconditional.
    Bra {
        /// Destination instruction index within the kernel.
        target: usize,
    },
    /// CTA-wide barrier (`bar.sync id`). Warps of a CTA waiting on
    /// different barrier ids never release each other — the classic named-
    /// barrier deadlock.
    Bar {
        /// Named barrier index.
        id: u32,
    },
    /// Atomic read-modify-write: `dst = [addr]; [addr] = dst op src`.
    Atom {
        /// The read-modify-write operation.
        op: AtomOp,
        /// Element type.
        ty: Type,
        /// Destination register (receives the old value).
        dst: Reg,
        /// Effective address (global space).
        addr: Address,
        /// Operation source value.
        src: Operand,
    },
    /// Terminate this thread.
    Exit,
}

impl Op {
    /// Destination register written by this instruction, if any.
    pub fn dst_reg(&self) -> Option<Reg> {
        match *self {
            Op::Ld { dst, .. }
            | Op::Mov { dst, .. }
            | Op::Cvt { dst, .. }
            | Op::Unary { dst, .. }
            | Op::Alu { dst, .. }
            | Op::Mad { dst, .. }
            | Op::Sfu { dst, .. }
            | Op::Setp { dst, .. }
            | Op::Selp { dst, .. }
            | Op::Atom { dst, .. } => Some(dst),
            Op::St { .. } | Op::Bra { .. } | Op::Bar { .. } | Op::Exit => None,
        }
    }

    /// All registers read by this instruction (excluding the guard predicate,
    /// which lives on [`Instruction`]).
    pub fn src_regs(&self) -> Vec<Reg> {
        fn push_op(out: &mut Vec<Reg>, o: &Operand) {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        }
        fn push_addr(out: &mut Vec<Reg>, a: &Address) {
            if let Some(r) = a.base {
                out.push(r);
            }
        }
        let mut out = Vec::with_capacity(3);
        match self {
            Op::Ld { addr, .. } => push_addr(&mut out, addr),
            Op::St { addr, src, .. } => {
                push_addr(&mut out, addr);
                push_op(&mut out, src);
            }
            Op::Mov { src, .. } | Op::Cvt { src, .. } => push_op(&mut out, src),
            Op::Unary { a, .. } => push_op(&mut out, a),
            Op::Alu { a, b, .. } | Op::Setp { a, b, .. } => {
                push_op(&mut out, a);
                push_op(&mut out, b);
            }
            Op::Mad { a, b, c, .. } => {
                push_op(&mut out, a);
                push_op(&mut out, b);
                push_op(&mut out, c);
            }
            Op::Sfu { a, .. } => push_op(&mut out, a),
            Op::Selp { a, b, pred, .. } => {
                push_op(&mut out, a);
                push_op(&mut out, b);
                out.push(*pred);
            }
            Op::Atom { addr, src, .. } => {
                push_addr(&mut out, addr);
                push_op(&mut out, src);
            }
            Op::Bra { .. } | Op::Bar { .. } | Op::Exit => {}
        }
        out
    }

    /// Whether this is a load (any space). Atomics count as loads: they
    /// return memory data into a register.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Ld { .. } | Op::Atom { .. })
    }

    /// Whether this is a load from global memory (including local/tex, which
    /// are global-backed). This is the set of loads the paper classifies.
    pub fn is_global_load(&self) -> bool {
        match self {
            Op::Ld { space, .. } => {
                matches!(space, Space::Global | Space::Local | Space::Tex)
            }
            Op::Atom { .. } => true,
            _ => false,
        }
    }

    /// The state space this instruction accesses, if it is a memory op.
    pub fn space(&self) -> Option<Space> {
        match self {
            Op::Ld { space, .. } | Op::St { space, .. } => Some(*space),
            Op::Atom { .. } => Some(Space::Global),
            _ => None,
        }
    }

    /// The memory address expression, if this is a memory op.
    pub fn addr(&self) -> Option<Address> {
        match self {
            Op::Ld { addr, .. } | Op::St { addr, .. } | Op::Atom { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// The access size in bytes, if this is a memory op.
    pub fn access_bytes(&self) -> Option<u32> {
        match self {
            Op::Ld { ty, .. } | Op::St { ty, .. } | Op::Atom { ty, .. } => Some(ty.size_bytes()),
            _ => None,
        }
    }

    /// Which SM execution unit this instruction occupies.
    pub fn unit(&self) -> Unit {
        match self {
            Op::Ld { .. } | Op::St { .. } | Op::Atom { .. } => Unit::LdSt,
            Op::Sfu { .. } => Unit::Sfu,
            Op::Bra { .. } | Op::Bar { .. } | Op::Exit => Unit::Ctrl,
            // Divides and remainders are iterative and execute on the SFU
            // path in Fermi-class hardware.
            Op::Alu {
                op: AluOp::Div | AluOp::Rem,
                ..
            } => Unit::Sfu,
            _ => Unit::Sp,
        }
    }

    /// Whether this op ends a basic block (transfers or terminates control).
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Bra { .. } | Op::Exit)
    }
}

/// An optional guard predicate: `@%p` executes when the predicate is true,
/// `@!%p` when it is false.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// The predicate register consulted.
    pub pred: Reg,
    /// If true, the instruction executes when the predicate is *false*.
    pub negate: bool,
}

impl Guard {
    /// Guard that fires when `pred` is true (`@%p`).
    pub fn when(pred: Reg) -> Guard {
        Guard {
            pred,
            negate: false,
        }
    }

    /// Guard that fires when `pred` is false (`@!%p`).
    pub fn unless(pred: Reg) -> Guard {
        Guard { pred, negate: true }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "@!{}", self.pred)
        } else {
            write!(f, "@{}", self.pred)
        }
    }
}

/// One (optionally guarded) instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The operation.
    pub op: Op,
    /// Optional guard predicate.
    pub guard: Option<Guard>,
}

impl Instruction {
    /// An unguarded instruction.
    pub fn new(op: Op) -> Instruction {
        Instruction { op, guard: None }
    }

    /// A guarded instruction.
    pub fn guarded(guard: Guard, op: Op) -> Instruction {
        Instruction {
            op,
            guard: Some(guard),
        }
    }

    /// All registers this instruction reads, including the guard predicate.
    pub fn src_regs(&self) -> Vec<Reg> {
        let mut regs = self.op.src_regs();
        if let Some(g) = self.guard {
            regs.push(g.pred);
        }
        regs
    }

    /// The register this instruction writes, if any.
    pub fn dst_reg(&self) -> Option<Reg> {
        self.op.dst_reg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ld_global(dst: u32, base: u32) -> Op {
        Op::Ld {
            space: Space::Global,
            ty: Type::U32,
            dst: Reg(dst),
            addr: Address::reg(Reg(base)),
        }
    }

    #[test]
    fn dst_and_src_regs() {
        let op = Op::Mad {
            ty: Type::U32,
            dst: Reg(5),
            a: Operand::Reg(Reg(1)),
            b: Operand::Imm(4),
            c: Operand::Reg(Reg(2)),
            wide: true,
        };
        assert_eq!(op.dst_reg(), Some(Reg(5)));
        assert_eq!(op.src_regs(), vec![Reg(1), Reg(2)]);

        let st = Op::St {
            space: Space::Global,
            ty: Type::U32,
            addr: Address::reg_offset(Reg(3), 8),
            src: Operand::Reg(Reg(4)),
        };
        assert_eq!(st.dst_reg(), None);
        assert_eq!(st.src_regs(), vec![Reg(3), Reg(4)]);
    }

    #[test]
    fn guard_pred_is_a_source() {
        let inst = Instruction::guarded(Guard::when(Reg(9)), Op::Bra { target: 0 });
        assert_eq!(inst.src_regs(), vec![Reg(9)]);
        assert_eq!(inst.dst_reg(), None);
    }

    #[test]
    fn load_classification_helpers() {
        assert!(ld_global(0, 1).is_load());
        assert!(ld_global(0, 1).is_global_load());
        let sh = Op::Ld {
            space: Space::Shared,
            ty: Type::F32,
            dst: Reg(0),
            addr: Address::reg(Reg(1)),
        };
        assert!(sh.is_load());
        assert!(!sh.is_global_load());
        let atom = Op::Atom {
            op: AtomOp::Add,
            ty: Type::U32,
            dst: Reg(0),
            addr: Address::reg(Reg(1)),
            src: Operand::Imm(1),
        };
        assert!(atom.is_load());
        assert!(atom.is_global_load());
    }

    #[test]
    fn units() {
        assert_eq!(ld_global(0, 1).unit(), Unit::LdSt);
        assert_eq!(
            Op::Sfu {
                op: SfuOp::Sin,
                ty: Type::F32,
                dst: Reg(0),
                a: Operand::f32(1.0)
            }
            .unit(),
            Unit::Sfu
        );
        assert_eq!(Op::Bar { id: 0 }.unit(), Unit::Ctrl);
        assert_eq!(
            Op::Alu {
                op: AluOp::Add,
                ty: Type::U32,
                dst: Reg(0),
                a: Operand::Imm(1),
                b: Operand::Imm(2)
            }
            .unit(),
            Unit::Sp
        );
    }

    #[test]
    fn cmp_op_algebra() {
        for c in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(c.negated().negated(), c);
            assert_eq!(c.swapped().swapped(), c);
        }
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
    }

    #[test]
    fn operand_float_round_trip() {
        let o = Operand::f64(3.25);
        assert_eq!(o.as_f64(), Some(3.25));
        assert_eq!(Operand::Imm(3).as_f64(), None);
        assert!(Operand::Imm(0).is_launch_invariant());
        assert!(Operand::Special(Special::TidX).is_launch_invariant());
        assert!(!Operand::Reg(Reg(0)).is_launch_invariant());
    }

    #[test]
    fn address_display() {
        assert_eq!(format!("{}", Address::reg(Reg(1))), "[%r1]");
        assert_eq!(format!("{}", Address::reg_offset(Reg(1), 4)), "[%r1+4]");
        assert_eq!(format!("{}", Address::reg_offset(Reg(1), -4)), "[%r1-4]");
        assert_eq!(format!("{}", Address::abs(16)), "[16]");
    }
}
