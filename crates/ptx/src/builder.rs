//! Ergonomic programmatic construction of kernels.

use crate::{
    Address, AluOp, AtomOp, CmpOp, Guard, Instruction, Kernel, Op, Operand, ParamDecl, Reg, SfuOp,
    Space, Special, Type, UnaryOp, ValidateError,
};

/// Handle to a declared kernel parameter, returned by [`KernelBuilder::param`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamRef(usize);

/// Handle to a not-yet-placed branch destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental builder for [`Kernel`] values.
///
/// The builder hands out fresh virtual registers, resolves forward branch
/// labels, and provides convenience emitters for the address-computation
/// patterns NVCC produces (e.g. [`thread_linear_id`](Self::thread_linear_id),
/// [`index64`](Self::index64)).
///
/// # Examples
///
/// ```
/// use gcl_ptx::{CmpOp, KernelBuilder, Type};
///
/// let mut b = KernelBuilder::new("clamp");
/// let data = b.param("data", Type::U64);
/// let n = b.param("n", Type::U32);
/// let base = b.ld_param(Type::U64, data);
/// let n = b.ld_param(Type::U32, n);
/// let tid = b.thread_linear_id();
/// let in_range = b.setp(CmpOp::Lt, Type::U32, tid, n);
/// let done = b.new_label();
/// b.bra_unless(in_range, done);
/// let addr = b.index64(base, tid, 4);
/// let v = b.ld_global(Type::U32, addr);
/// b.st_global(Type::U32, addr, v);
/// b.place(done);
/// b.exit();
/// let kernel = b.build()?;
/// assert_eq!(kernel.name(), "clamp");
/// # Ok::<(), gcl_ptx::ValidateError>(())
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    params: Vec<ParamDecl>,
    shared_bytes: u32,
    insts: Vec<Instruction>,
    next_reg: u32,
    labels: Vec<Option<usize>>,
    /// (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, Label)>,
    guard: Option<Guard>,
}

impl KernelBuilder {
    /// Start building a kernel with the given name.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            params: Vec::new(),
            shared_bytes: 0,
            insts: Vec::new(),
            next_reg: 0,
            labels: Vec::new(),
            fixups: Vec::new(),
            guard: None,
        }
    }

    /// Declare a kernel parameter. Parameters must be declared before the
    /// first `ld_param` that reads them.
    pub fn param(&mut self, name: impl Into<String>, ty: Type) -> ParamRef {
        self.params.push(ParamDecl::new(name, ty));
        ParamRef(self.params.len() - 1)
    }

    /// Declare `bytes` of statically-allocated shared memory.
    pub fn shared(&mut self, bytes: u32) {
        self.shared_bytes = bytes;
    }

    /// Allocate a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Current instruction index (the pc the next emitted instruction gets).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Create a label to branch to; place it later with [`place`](Self::place).
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Pin `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.insts.len());
    }

    /// Apply a guard (`@%p` if `negate` is false, `@!%p` otherwise) to the
    /// *next* emitted instruction only.
    pub fn guard_next(&mut self, pred: Reg, negate: bool) {
        self.guard = Some(Guard { pred, negate });
    }

    /// Emit a raw op, consuming any pending guard. Returns its pc.
    pub fn push(&mut self, op: Op) -> usize {
        let guard = self.guard.take();
        let pc = self.insts.len();
        self.insts.push(Instruction { op, guard });
        pc
    }

    // ---- moves & conversions -------------------------------------------

    /// `mov ty dst, src` into a fresh register.
    pub fn mov(&mut self, ty: Type, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Op::Mov {
            ty,
            dst,
            src: src.into(),
        });
        dst
    }

    /// Materialize a special register (`%tid.x`, ...) as a `u32` value.
    pub fn sreg(&mut self, s: Special) -> Reg {
        self.mov(Type::U32, s)
    }

    /// Materialize a 32-bit unsigned immediate.
    pub fn imm32(&mut self, v: u32) -> Reg {
        self.mov(Type::U32, i64::from(v))
    }

    /// Materialize a 64-bit unsigned immediate.
    pub fn imm64(&mut self, v: u64) -> Reg {
        self.mov(Type::U64, v as i64)
    }

    /// Materialize an `f32` immediate.
    pub fn immf32(&mut self, v: f32) -> Reg {
        self.mov(Type::F32, Operand::f32(v))
    }

    /// `cvt dst_ty src_ty` into a fresh register.
    pub fn cvt(&mut self, dst_ty: Type, src_ty: Type, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Op::Cvt {
            dst_ty,
            src_ty,
            dst,
            src: src.into(),
        });
        dst
    }

    // ---- ALU -------------------------------------------------------------

    /// Generic two-source ALU op into a fresh register.
    pub fn alu(
        &mut self,
        op: AluOp,
        ty: Type,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Reg {
        let dst = self.reg();
        self.push(Op::Alu {
            op,
            ty,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// `add`
    pub fn add(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Add, ty, a, b)
    }

    /// `sub`
    pub fn sub(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Sub, ty, a, b)
    }

    /// `mul.lo` (or floating multiply)
    pub fn mul(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Mul, ty, a, b)
    }

    /// `mul.wide` — product at twice the operand width.
    pub fn mul_wide(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::MulWide, ty, a, b)
    }

    /// `div`
    pub fn div(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Div, ty, a, b)
    }

    /// `rem`
    pub fn rem(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Rem, ty, a, b)
    }

    /// `min`
    pub fn min(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Min, ty, a, b)
    }

    /// `max`
    pub fn max(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Max, ty, a, b)
    }

    /// `and`
    pub fn and(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::And, ty, a, b)
    }

    /// `or`
    pub fn or(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Or, ty, a, b)
    }

    /// `xor`
    pub fn xor(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Xor, ty, a, b)
    }

    /// `shl`
    pub fn shl(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Shl, ty, a, b)
    }

    /// `shr`
    pub fn shr(&mut self, ty: Type, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Shr, ty, a, b)
    }

    /// `mad.lo ty dst, a, b, c` (dst = a*b + c).
    pub fn mad(
        &mut self,
        ty: Type,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        let dst = self.reg();
        self.push(Op::Mad {
            ty,
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
            wide: false,
        });
        dst
    }

    /// `mad.wide ty dst, a, b, c` — product and sum at twice the width.
    pub fn mad_wide(
        &mut self,
        ty: Type,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        let dst = self.reg();
        self.push(Op::Mad {
            ty,
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
            wide: true,
        });
        dst
    }

    /// One-source ALU op into a fresh register.
    pub fn unary(&mut self, op: UnaryOp, ty: Type, a: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Op::Unary {
            op,
            ty,
            dst,
            a: a.into(),
        });
        dst
    }

    /// `neg`
    pub fn neg(&mut self, ty: Type, a: impl Into<Operand>) -> Reg {
        self.unary(UnaryOp::Neg, ty, a)
    }

    /// `not`
    pub fn not(&mut self, ty: Type, a: impl Into<Operand>) -> Reg {
        self.unary(UnaryOp::Not, ty, a)
    }

    /// `abs`
    pub fn abs(&mut self, ty: Type, a: impl Into<Operand>) -> Reg {
        self.unary(UnaryOp::Abs, ty, a)
    }

    /// `popc`
    pub fn popc(&mut self, ty: Type, a: impl Into<Operand>) -> Reg {
        self.unary(UnaryOp::Popc, ty, a)
    }

    /// Special-function op (`sin`, `sqrt`, ...) into a fresh register.
    pub fn sfu(&mut self, op: SfuOp, ty: Type, a: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Op::Sfu {
            op,
            ty,
            dst,
            a: a.into(),
        });
        dst
    }

    // ---- predicates & control -------------------------------------------

    /// `setp.cmp.ty p, a, b` into a fresh predicate register.
    pub fn setp(
        &mut self,
        cmp: CmpOp,
        ty: Type,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Reg {
        let dst = self.reg();
        self.push(Op::Setp {
            cmp,
            ty,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// `selp ty dst, a, b, pred` into a fresh register.
    pub fn selp(
        &mut self,
        ty: Type,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        pred: Reg,
    ) -> Reg {
        let dst = self.reg();
        self.push(Op::Selp {
            ty,
            dst,
            a: a.into(),
            b: b.into(),
            pred,
        });
        dst
    }

    /// Unconditional branch to `label`.
    pub fn bra(&mut self, label: Label) {
        let pc = self.push(Op::Bra { target: usize::MAX });
        self.fixups.push((pc, label));
    }

    /// Branch to `label` when `pred` is true (`@%p bra`).
    pub fn bra_if(&mut self, pred: Reg, label: Label) {
        self.guard_next(pred, false);
        self.bra(label);
    }

    /// Branch to `label` when `pred` is false (`@!%p bra`).
    pub fn bra_unless(&mut self, pred: Reg, label: Label) {
        self.guard_next(pred, true);
        self.bra(label);
    }

    /// CTA barrier (`bar.sync 0`).
    pub fn bar(&mut self) {
        self.push(Op::Bar { id: 0 });
    }

    /// Named CTA barrier (`bar.sync id`). Warps waiting on different ids do
    /// not release each other.
    pub fn bar_id(&mut self, id: u32) {
        self.push(Op::Bar { id });
    }

    /// Thread exit.
    pub fn exit(&mut self) {
        self.push(Op::Exit);
    }

    // ---- memory -----------------------------------------------------------

    /// Load a declared parameter value (`ld.param`).
    pub fn ld_param(&mut self, ty: Type, p: ParamRef) -> Reg {
        let offset = param_offset(&self.params, p.0);
        let dst = self.reg();
        self.push(Op::Ld {
            space: Space::Param,
            ty,
            dst,
            addr: Address::abs(i64::from(offset)),
        });
        dst
    }

    /// Generic load into a fresh register.
    pub fn ld(&mut self, space: Space, ty: Type, addr: Address) -> Reg {
        let dst = self.reg();
        self.push(Op::Ld {
            space,
            ty,
            dst,
            addr,
        });
        dst
    }

    /// `ld.global ty dst, [addr]`.
    pub fn ld_global(&mut self, ty: Type, addr: Reg) -> Reg {
        self.ld(Space::Global, ty, Address::reg(addr))
    }

    /// `ld.global` with a byte offset.
    pub fn ld_global_off(&mut self, ty: Type, addr: Reg, offset: i64) -> Reg {
        self.ld(Space::Global, ty, Address::reg_offset(addr, offset))
    }

    /// `ld.shared ty dst, [addr]`.
    pub fn ld_shared(&mut self, ty: Type, addr: Reg) -> Reg {
        self.ld(Space::Shared, ty, Address::reg(addr))
    }

    /// Generic store.
    pub fn st(&mut self, space: Space, ty: Type, addr: Address, src: impl Into<Operand>) {
        self.push(Op::St {
            space,
            ty,
            addr,
            src: src.into(),
        });
    }

    /// `st.global ty [addr], src`.
    pub fn st_global(&mut self, ty: Type, addr: Reg, src: impl Into<Operand>) {
        self.st(Space::Global, ty, Address::reg(addr), src);
    }

    /// `st.shared ty [addr], src`.
    pub fn st_shared(&mut self, ty: Type, addr: Reg, src: impl Into<Operand>) {
        self.st(Space::Shared, ty, Address::reg(addr), src);
    }

    /// Atomic RMW on global memory; returns the register holding the old value.
    pub fn atom(&mut self, op: AtomOp, ty: Type, addr: Reg, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Op::Atom {
            op,
            ty,
            dst,
            addr: Address::reg(addr),
            src: src.into(),
        });
        dst
    }

    // ---- NVCC-style composite helpers -------------------------------------

    /// The canonical global thread id:
    /// `%ctaid.x * %ntid.x + %tid.x`, as a `u32` register.
    pub fn thread_linear_id(&mut self) -> Reg {
        let ctaid = self.sreg(Special::CtaIdX);
        let ntid = self.sreg(Special::NTidX);
        let tid = self.sreg(Special::TidX);
        self.mad(Type::U32, ctaid, ntid, tid)
    }

    /// Compute `base + index * elem_size` as a 64-bit address, the way NVCC
    /// lowers array indexing (`mul.wide.u32` + `add.u64`).
    pub fn index64(&mut self, base: Reg, index: Reg, elem_size: u32) -> Reg {
        let byte_off = self.mul_wide(Type::U32, index, i64::from(elem_size));
        self.add(Type::U64, base, byte_off)
    }

    /// Finish the kernel, resolving labels.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if the kernel fails validation (see
    /// [`Kernel::new`]).
    ///
    /// # Panics
    ///
    /// Panics if a branched-to label was never [`place`](Self::place)d.
    pub fn build(mut self) -> Result<Kernel, ValidateError> {
        for (pc, label) in self.fixups.drain(..) {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("label {label:?} branched to but never placed"));
            if let Op::Bra { target: t } = &mut self.insts[pc].op {
                *t = target;
            }
        }
        Kernel::new(self.name, self.params, self.shared_bytes, self.insts)
    }
}

fn param_offset(params: &[ParamDecl], index: usize) -> u32 {
    let mut off = 0u32;
    for (i, p) in params.iter().enumerate() {
        let sz = p.ty.size_bytes();
        off = off.div_ceil(sz) * sz;
        if i == index {
            return off;
        }
        off += sz;
    }
    panic!("parameter index {index} out of range");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_kernel() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("data", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.thread_linear_id();
        let addr = b.index64(base, tid, 4);
        let v = b.ld_global(Type::U32, addr);
        b.st_global(Type::U32, addr, v);
        b.exit();
        let k = b.build().unwrap();
        assert_eq!(k.name(), "k");
        assert_eq!(k.global_load_pcs().len(), 1);
        assert!(k.num_regs() >= 6);
    }

    #[test]
    fn forward_labels_resolve() {
        let mut b = KernelBuilder::new("k");
        let p = b.setp(CmpOp::Eq, Type::U32, Special::TidX, 0i64);
        let skip = b.new_label();
        b.bra_if(p, skip);
        b.imm32(1);
        b.place(skip);
        b.exit();
        let k = b.build().unwrap();
        // bra is pc 1 (after setp), target should be the exit at pc 3.
        match k.insts()[1].op {
            Op::Bra { target } => assert_eq!(target, 3),
            ref other => panic!("expected bra, got {other:?}"),
        }
        assert!(k.insts()[1].guard.is_some());
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn unplaced_label_panics() {
        let mut b = KernelBuilder::new("k");
        let l = b.new_label();
        b.bra(l);
        b.exit();
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "label placed twice")]
    fn double_place_panics() {
        let mut b = KernelBuilder::new("k");
        let l = b.new_label();
        b.place(l);
        b.place(l);
    }

    #[test]
    fn guard_applies_to_next_instruction_only() {
        let mut b = KernelBuilder::new("k");
        let p = b.setp(CmpOp::Ne, Type::U32, Special::TidX, 0i64);
        b.guard_next(p, false);
        b.imm32(5);
        b.imm32(6);
        b.exit();
        let k = b.build().unwrap();
        assert!(k.insts()[1].guard.is_some());
        assert!(k.insts()[2].guard.is_none());
    }

    #[test]
    fn backward_branch_builds_loop() {
        let mut b = KernelBuilder::new("loop");
        let i0 = b.imm32(0);
        let head = b.new_label();
        b.place(head);
        let i1 = b.add(Type::U32, i0, 1i64);
        // Not a real loop body; just checks backward target resolution.
        let p = b.setp(CmpOp::Lt, Type::U32, i1, 10i64);
        b.bra_if(p, head);
        b.exit();
        let k = b.build().unwrap();
        match k.insts()[3].op {
            Op::Bra { target } => assert_eq!(target, 1),
            ref other => panic!("expected bra, got {other:?}"),
        }
    }

    #[test]
    fn shared_bytes_recorded() {
        let mut b = KernelBuilder::new("k");
        b.shared(4096);
        b.exit();
        assert_eq!(b.build().unwrap().shared_bytes(), 4096);
    }
}
