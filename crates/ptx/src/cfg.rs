//! Control-flow graph construction and post-dominator analysis.
//!
//! The simulator uses immediate post-dominators as SIMT reconvergence points
//! (the standard "ipdom stack" scheme); the classifier uses the CFG for
//! reaching-definitions dataflow.

use crate::{Kernel, Op};
use std::collections::HashMap;

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// Sentinel "reconverge at thread exit" program counter.
///
/// Returned by [`Cfg::reconvergence_pcs`] for branches whose immediate
/// post-dominator is the virtual exit node.
pub const RECONV_EXIT: usize = usize::MAX;

/// A basic block: a maximal straight-line instruction range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index (inclusive).
    pub start: usize,
    /// One past the last instruction index (exclusive).
    pub end: usize,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

impl BasicBlock {
    /// Index of the block's terminator instruction.
    pub fn terminator_pc(&self) -> usize {
        self.end - 1
    }

    /// Iterate over the instruction indices in this block.
    pub fn pcs(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Control-flow graph of one kernel.
///
/// # Examples
///
/// ```
/// use gcl_ptx::{Cfg, CmpOp, KernelBuilder, Type};
///
/// let mut b = KernelBuilder::new("diamond");
/// let p = b.setp(CmpOp::Eq, Type::U32, gcl_ptx::Special::TidX, 0i64);
/// let merge = b.new_label();
/// b.bra_if(p, merge);
/// b.imm32(1);
/// b.place(merge);
/// b.exit();
/// let k = b.build()?;
/// let cfg = Cfg::build(&k);
/// assert!(cfg.blocks().len() >= 2);
/// # Ok::<(), gcl_ptx::ValidateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    block_of_pc: Vec<BlockId>,
}

impl Cfg {
    /// Build the CFG of `kernel`.
    ///
    /// Blocks are created in program order; block 0 is the entry. A guarded
    /// branch ends its block with two successors (target, fall-through); an
    /// unguarded branch or `exit` ends it with one or zero. Guarded `exit`
    /// and other guarded non-branch instructions are treated as straight-line
    /// predication and do not end blocks.
    pub fn build(kernel: &Kernel) -> Cfg {
        let insts = kernel.insts();
        let n = insts.len();

        // Mark leaders.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, inst) in insts.iter().enumerate() {
            match inst.op {
                Op::Bra { target } => {
                    leader[target] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Op::Exit if inst.guard.is_none() && pc + 1 < n => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }

        // Carve blocks.
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of_pc = vec![0usize; n];
        let mut start = 0usize;
        for (pc, &lead) in leader.iter().enumerate() {
            if pc > start && lead {
                blocks.push(BasicBlock {
                    start,
                    end: pc,
                    succs: vec![],
                    preds: vec![],
                });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(BasicBlock {
                start,
                end: n,
                succs: vec![],
                preds: vec![],
            });
        }
        for (id, b) in blocks.iter().enumerate() {
            for pc in b.pcs() {
                block_of_pc[pc] = id;
            }
        }

        // Successors.
        let nb = blocks.len();
        for b in blocks.iter_mut() {
            let term = b.terminator_pc();
            let inst = &insts[term];
            let mut succs = Vec::new();
            match inst.op {
                Op::Bra { target } => {
                    succs.push(block_of_pc[target]);
                    if inst.guard.is_some() && term + 1 < n {
                        succs.push(block_of_pc[term + 1]);
                    }
                }
                Op::Exit if inst.guard.is_none() => {}
                _ => {
                    if term + 1 < n {
                        succs.push(block_of_pc[term + 1]);
                    }
                }
            }
            succs.dedup();
            b.succs = succs;
        }

        // Predecessors.
        for id in 0..nb {
            let succs = blocks[id].succs.clone();
            for s in succs {
                blocks[s].preds.push(id);
            }
        }

        Cfg {
            blocks,
            block_of_pc,
        }
    }

    /// The blocks, in program order. Block 0 is the entry.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing instruction `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn block_of(&self, pc: usize) -> BlockId {
        self.block_of_pc[pc]
    }

    /// Reverse post-order of blocks reachable from the entry.
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with explicit state to get a true post-order.
        let mut stack: Vec<(BlockId, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Immediate post-dominator of each block, or `None` for blocks that do
    /// not reach an exit and for blocks whose ipdom is the virtual exit node.
    ///
    /// Uses the Cooper–Harvey–Kennedy iterative algorithm on the reverse CFG
    /// with a single virtual exit joining every `exit`-terminated block.
    pub fn immediate_post_dominators(&self) -> Vec<Option<BlockId>> {
        let n = self.blocks.len();
        // Virtual exit has index `n`.
        let exit = n;
        // Reverse-graph edges: preds of reverse graph = succs of CFG.
        // Exit-terminated blocks have the virtual exit as reverse-predecessor.
        let rev_preds = |b: BlockId| -> Vec<BlockId> {
            if b == exit {
                // The virtual exit's "reverse preds" (i.e. CFG succs) are none.
                return vec![];
            }
            let mut v = self.blocks[b].succs.clone();
            if self.blocks[b].succs.is_empty() {
                v.push(exit);
            }
            v
        };

        // Post-order of the reverse graph starting from the virtual exit ==
        // an order where each node's reverse-preds come later. We compute a
        // DFS post-order of the reverse graph (edges from exit backwards via
        // CFG preds).
        let mut order = Vec::with_capacity(n + 1);
        let mut visited = vec![false; n + 1];
        let rev_succs = |b: BlockId| -> Vec<BlockId> {
            if b == exit {
                (0..n)
                    .filter(|&x| self.blocks[x].succs.is_empty())
                    .collect()
            } else {
                self.blocks[b].preds.clone()
            }
        };
        let mut stack: Vec<(BlockId, usize)> = vec![(exit, 0)];
        visited[exit] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = rev_succs(b);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
        // `order` is a post-order of the reverse graph; processing in reverse
        // gives reverse post-order, as CHK requires.
        let mut rpo_index = vec![usize::MAX; n + 1];
        for (i, &b) in order.iter().rev().enumerate() {
            rpo_index[b] = i;
        }

        let mut idom = vec![usize::MAX; n + 1]; // usize::MAX = undefined
        idom[exit] = exit;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().rev() {
                if b == exit {
                    continue;
                }
                let preds = rev_preds(b);
                let mut new_idom = usize::MAX;
                for &p in &preds {
                    if idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &rpo_index, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        (0..n)
            .map(|b| {
                let d = idom[b];
                if d == usize::MAX || d == exit {
                    None
                } else {
                    Some(d)
                }
            })
            .collect()
    }

    /// Reconvergence pc for every *guarded* (conditional) branch.
    ///
    /// The reconvergence point of a branch is the first instruction of the
    /// immediate post-dominator of its block, or [`RECONV_EXIT`] when the
    /// paths only rejoin at thread exit.
    pub fn reconvergence_pcs(&self, kernel: &Kernel) -> HashMap<usize, usize> {
        let ipdom = self.immediate_post_dominators();
        let mut out = HashMap::new();
        for (pc, inst) in kernel.insts().iter().enumerate() {
            if matches!(inst.op, Op::Bra { .. }) && inst.guard.is_some() {
                let b = self.block_of(pc);
                let reconv = match ipdom[b] {
                    Some(d) => self.blocks[d].start,
                    None => RECONV_EXIT,
                };
                out.insert(pc, reconv);
            }
        }
        out
    }
}

/// CHK intersection walk: climb the dominator tree until the fingers meet.
fn intersect(idom: &[usize], rpo_index: &[usize], a: usize, b: usize) -> usize {
    let mut f1 = a;
    let mut f2 = b;
    while f1 != f2 {
        while rpo_index[f1] > rpo_index[f2] {
            f1 = idom[f1];
        }
        while rpo_index[f2] > rpo_index[f1] {
            f2 = idom[f2];
        }
    }
    f1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, KernelBuilder, Special, Type};

    /// if (tid == 0) { x } ; merge ; exit
    fn diamondish() -> Kernel {
        let mut b = KernelBuilder::new("d");
        let p = b.setp(CmpOp::Eq, Type::U32, Special::TidX, 0i64); // pc 0
        let merge = b.new_label();
        b.bra_if(p, merge); // pc 1
        b.imm32(1); // pc 2 (then side)
        b.place(merge);
        b.imm32(2); // pc 3 (merge)
        b.exit(); // pc 4
        b.build().unwrap()
    }

    #[test]
    fn blocks_and_succs() {
        let k = diamondish();
        let cfg = Cfg::build(&k);
        // Blocks: [0..2) branch, [2..3) then, [3..5) merge+exit
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[0].succs, vec![2, 1]);
        assert_eq!(cfg.blocks()[1].succs, vec![2]);
        assert!(cfg.blocks()[2].succs.is_empty());
        assert_eq!(cfg.block_of(0), 0);
        assert_eq!(cfg.block_of(2), 1);
        assert_eq!(cfg.block_of(4), 2);
        // preds
        assert_eq!(cfg.blocks()[2].preds.len(), 2);
    }

    #[test]
    fn reconvergence_at_merge() {
        let k = diamondish();
        let cfg = Cfg::build(&k);
        let reconv = cfg.reconvergence_pcs(&k);
        assert_eq!(reconv.len(), 1);
        assert_eq!(reconv[&1], 3); // branch at pc 1 reconverges at merge pc 3
    }

    #[test]
    fn reverse_post_order_starts_at_entry() {
        let k = diamondish();
        let cfg = Cfg::build(&k);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 3);
        // Every successor appears after its predecessor in RPO for this
        // acyclic CFG.
        let pos: Vec<_> = (0..3)
            .map(|b| rpo.iter().position(|&x| x == b).unwrap())
            .collect();
        assert!(pos[0] < pos[1]);
        assert!(pos[1] < pos[2]);
    }

    #[test]
    fn loop_cfg() {
        // i = 0; do { i++ } while (i < 3); exit
        let mut b = KernelBuilder::new("l");
        let i0 = b.imm32(0); // pc 0
        let head = b.new_label();
        b.place(head);
        let i1 = b.add(Type::U32, i0, 1i64); // pc 1
        let p = b.setp(CmpOp::Lt, Type::U32, i1, 3i64); // pc 2
        b.bra_if(p, head); // pc 3
        b.exit(); // pc 4
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.blocks().len(), 3);
        // Loop block succs: itself (head) and exit block.
        let loop_block = cfg.block_of(1);
        assert!(cfg.blocks()[loop_block].succs.contains(&loop_block));
        let reconv = cfg.reconvergence_pcs(&k);
        // Back-branch reconverges at the loop exit (pc 4).
        assert_eq!(reconv[&3], 4);
    }

    #[test]
    fn branch_to_exit_reconverges_at_exit_sentinel() {
        // @p exit-as-branch: both paths end in different exits.
        let mut b = KernelBuilder::new("e");
        let p = b.setp(CmpOp::Eq, Type::U32, Special::TidX, 0i64); // 0
        let other = b.new_label();
        b.bra_if(p, other); // 1
        b.exit(); // 2
        b.place(other);
        b.exit(); // 3
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        let reconv = cfg.reconvergence_pcs(&k);
        assert_eq!(reconv[&1], RECONV_EXIT);
    }

    #[test]
    fn guarded_exit_is_predication_not_terminator() {
        let mut b = KernelBuilder::new("ge");
        let p = b.setp(CmpOp::Eq, Type::U32, Special::TidX, 0i64); // 0
        b.guard_next(p, false);
        b.exit(); // 1 — guarded: predication
        b.imm32(1); // 2
        b.exit(); // 3
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.blocks().len(), 1);
    }

    #[test]
    fn straight_line_single_block() {
        let mut b = KernelBuilder::new("s");
        b.imm32(1);
        b.imm32(2);
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].pcs(), 0..3);
        assert_eq!(cfg.immediate_post_dominators(), vec![None]);
    }

    #[test]
    fn nested_if_reconvergence() {
        // if (p) { if (q) { a } b } c
        let mut b = KernelBuilder::new("n");
        let p = b.setp(CmpOp::Eq, Type::U32, Special::TidX, 0i64); // 0
        let outer = b.new_label();
        b.bra_unless(p, outer); // 1
        let q = b.setp(CmpOp::Eq, Type::U32, Special::TidY, 0i64); // 2
        let inner = b.new_label();
        b.bra_unless(q, inner); // 3
        b.imm32(10); // 4 (a)
        b.place(inner);
        b.imm32(11); // 5 (b)
        b.place(outer);
        b.imm32(12); // 6 (c)
        b.exit(); // 7
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        let reconv = cfg.reconvergence_pcs(&k);
        assert_eq!(reconv[&3], 5); // inner reconverges at b
        assert_eq!(reconv[&1], 6); // outer reconverges at c
    }
}
