//! Virtual registers and special (read-only, thread-identity) registers.

use std::fmt;

/// A virtual register identifier within one kernel.
///
/// Registers are untyped storage; the instruction supplies the interpretation
/// (as real PTX does through its type suffixes). The register file of a
/// kernel is dense: ids run from `0` to [`Kernel::num_regs`] `- 1`.
///
/// [`Kernel::num_regs`]: crate::Kernel::num_regs
///
/// # Examples
///
/// ```
/// use gcl_ptx::Reg;
/// let r = Reg(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(format!("{r}"), "%r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl Reg {
    /// The register id as a usize index into a register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

/// Special read-only registers holding thread/CTA identity and geometry.
///
/// These are the paper's "parameterized data" sources together with
/// `ld.param`: their values are fixed when the kernel launches, so an address
/// computed only from them is *deterministic*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Special {
    /// `%tid.x` — thread index within the CTA, x dimension.
    TidX,
    /// `%tid.y`
    TidY,
    /// `%tid.z`
    TidZ,
    /// `%ntid.x` — CTA size, x dimension.
    NTidX,
    /// `%ntid.y`
    NTidY,
    /// `%ntid.z`
    NTidZ,
    /// `%ctaid.x` — CTA index within the grid, x dimension.
    CtaIdX,
    /// `%ctaid.y`
    CtaIdY,
    /// `%ctaid.z`
    CtaIdZ,
    /// `%nctaid.x` — grid size in CTAs, x dimension.
    NCtaIdX,
    /// `%nctaid.y`
    NCtaIdY,
    /// `%nctaid.z`
    NCtaIdZ,
    /// `%laneid` — lane within the warp (0..32).
    LaneId,
    /// `%warpid` — warp index within the CTA.
    WarpId,
}

impl Special {
    /// All special registers, in a fixed order.
    pub const ALL: [Special; 14] = [
        Special::TidX,
        Special::TidY,
        Special::TidZ,
        Special::NTidX,
        Special::NTidY,
        Special::NTidZ,
        Special::CtaIdX,
        Special::CtaIdY,
        Special::CtaIdZ,
        Special::NCtaIdX,
        Special::NCtaIdY,
        Special::NCtaIdZ,
        Special::LaneId,
        Special::WarpId,
    ];

    /// The PTX spelling, including the leading `%`.
    pub fn name(self) -> &'static str {
        match self {
            Special::TidX => "%tid.x",
            Special::TidY => "%tid.y",
            Special::TidZ => "%tid.z",
            Special::NTidX => "%ntid.x",
            Special::NTidY => "%ntid.y",
            Special::NTidZ => "%ntid.z",
            Special::CtaIdX => "%ctaid.x",
            Special::CtaIdY => "%ctaid.y",
            Special::CtaIdZ => "%ctaid.z",
            Special::NCtaIdX => "%nctaid.x",
            Special::NCtaIdY => "%nctaid.y",
            Special::NCtaIdZ => "%nctaid.z",
            Special::LaneId => "%laneid",
            Special::WarpId => "%warpid",
        }
    }

    /// Parse a PTX special-register spelling (with the leading `%`).
    pub fn from_name(s: &str) -> Option<Special> {
        Special::ALL.iter().copied().find(|sp| sp.name() == s)
    }
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_index() {
        assert_eq!(format!("{}", Reg(0)), "%r0");
        assert_eq!(format!("{}", Reg(42)), "%r42");
        assert_eq!(Reg(7).index(), 7);
    }

    #[test]
    fn special_name_round_trip() {
        for sp in Special::ALL {
            assert_eq!(Special::from_name(sp.name()), Some(sp));
        }
        assert_eq!(Special::from_name("%tid.w"), None);
        assert_eq!(Special::from_name("tid.x"), None);
    }

    #[test]
    fn special_all_is_exhaustive_and_unique() {
        let mut names: Vec<_> = Special::ALL.iter().map(|s| s.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Special::ALL.len());
    }
}
