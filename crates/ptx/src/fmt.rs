//! Textual (disassembly) form of instructions and kernels.
//!
//! The output round-trips through [`parse_kernel`](crate::parse_kernel);
//! see the property tests in the crate's test suite.

use crate::{Instruction, Kernel, Op, Space};
use std::collections::BTreeSet;
use std::fmt;

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Ld {
                space,
                ty,
                dst,
                addr,
            } => write!(f, "ld.{space}.{ty} {dst}, {addr}"),
            Op::St {
                space,
                ty,
                addr,
                src,
            } => write!(f, "st.{space}.{ty} {addr}, {src}"),
            Op::Mov { ty, dst, src } => write!(f, "mov.{ty} {dst}, {src}"),
            Op::Cvt {
                dst_ty,
                src_ty,
                dst,
                src,
            } => {
                write!(f, "cvt.{dst_ty}.{src_ty} {dst}, {src}")
            }
            Op::Unary { op, ty, dst, a } => {
                write!(f, "{}.{ty} {dst}, {a}", op.mnemonic())
            }
            Op::Alu { op, ty, dst, a, b } => {
                write!(f, "{}.{ty} {dst}, {a}, {b}", op.mnemonic())
            }
            Op::Mad {
                ty,
                dst,
                a,
                b,
                c,
                wide,
            } => {
                let m = if *wide { "mad.wide" } else { "mad.lo" };
                write!(f, "{m}.{ty} {dst}, {a}, {b}, {c}")
            }
            Op::Sfu { op, ty, dst, a } => write!(f, "{}.{ty} {dst}, {a}", op.mnemonic()),
            Op::Setp { cmp, ty, dst, a, b } => {
                write!(f, "setp.{}.{ty} {dst}, {a}, {b}", cmp.mnemonic())
            }
            Op::Selp {
                ty,
                dst,
                a,
                b,
                pred,
            } => {
                write!(f, "selp.{ty} {dst}, {a}, {b}, {pred}")
            }
            Op::Bra { target } => write!(f, "bra L{target}"),
            Op::Bar { id } => write!(f, "bar.sync {id}"),
            Op::Atom {
                op,
                ty,
                dst,
                addr,
                src,
            } => {
                write!(f, "atom.global.{}.{ty} {dst}, {addr}, {src}", op.mnemonic())
            }
            Op::Exit => write!(f, "exit"),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "{g} ")?;
        }
        write!(f, "{};", self.op)
    }
}

impl fmt::Display for Kernel {
    /// Disassemble the kernel into the textual form accepted by
    /// [`parse_kernel`](crate::parse_kernel).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".entry {} (", self.name())?;
        for (i, p) in self.params().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, ".param .{} {}", p.ty, p.name)?;
        }
        writeln!(f, ")")?;
        if self.shared_bytes() > 0 {
            writeln!(f, ".shared {}", self.shared_bytes())?;
        }
        writeln!(f, "{{")?;

        // Collect branch targets so we can emit labels.
        let targets: BTreeSet<usize> = self
            .insts()
            .iter()
            .filter_map(|i| match i.op {
                Op::Bra { target } => Some(target),
                _ => None,
            })
            .collect();

        for (pc, inst) in self.insts().iter().enumerate() {
            if targets.contains(&pc) {
                writeln!(f, "L{pc}:")?;
            }
            // Param loads with a resolvable offset are printed by name for
            // readability; the parser accepts both forms.
            if let Op::Ld {
                space: Space::Param,
                ty,
                dst,
                addr,
            } = &inst.op
            {
                if addr.base.is_none() {
                    if let Some(idx) = (0..self.params().len())
                        .find(|&i| i64::from(self.param_offset(i)) == addr.offset)
                    {
                        if let Some(g) = inst.guard {
                            write!(f, "  {g} ")?;
                        } else {
                            write!(f, "  ")?;
                        }
                        writeln!(f, "ld.param.{ty} {dst}, [{}];", self.params()[idx].name)?;
                        continue;
                    }
                }
            }
            writeln!(f, "  {inst}")?;
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, AluOp, AtomOp, CmpOp, Guard, Operand, Reg, SfuOp, Type};

    #[test]
    fn op_display_forms() {
        let cases: Vec<(Op, &str)> = vec![
            (
                Op::Ld {
                    space: Space::Global,
                    ty: Type::U32,
                    dst: Reg(1),
                    addr: Address::reg_offset(Reg(2), 8),
                },
                "ld.global.u32 %r1, [%r2+8]",
            ),
            (
                Op::St {
                    space: Space::Shared,
                    ty: Type::F32,
                    addr: Address::reg(Reg(3)),
                    src: Operand::Reg(Reg(4)),
                },
                "st.shared.f32 [%r3], %r4",
            ),
            (
                Op::Alu {
                    op: AluOp::MulWide,
                    ty: Type::U32,
                    dst: Reg(5),
                    a: Operand::Reg(Reg(6)),
                    b: Operand::Imm(4),
                },
                "mul.wide.u32 %r5, %r6, 4",
            ),
            (
                Op::Mad {
                    ty: Type::U32,
                    dst: Reg(0),
                    a: Operand::Reg(Reg(1)),
                    b: Operand::Reg(Reg(2)),
                    c: Operand::Reg(Reg(3)),
                    wide: false,
                },
                "mad.lo.u32 %r0, %r1, %r2, %r3",
            ),
            (
                Op::Sfu {
                    op: SfuOp::Rsqrt,
                    ty: Type::F32,
                    dst: Reg(1),
                    a: Operand::Reg(Reg(2)),
                },
                "rsqrt.approx.f32 %r1, %r2",
            ),
            (
                Op::Setp {
                    cmp: CmpOp::Ge,
                    ty: Type::S32,
                    dst: Reg(7),
                    a: Operand::Reg(Reg(8)),
                    b: Operand::Imm(-1),
                },
                "setp.ge.s32 %r7, %r8, -1",
            ),
            (Op::Bra { target: 12 }, "bra L12"),
            (Op::Bar { id: 0 }, "bar.sync 0"),
            (
                Op::Atom {
                    op: AtomOp::Add,
                    ty: Type::U32,
                    dst: Reg(1),
                    addr: Address::reg(Reg(2)),
                    src: Operand::Imm(1),
                },
                "atom.global.add.u32 %r1, [%r2], 1",
            ),
            (Op::Exit, "exit"),
        ];
        for (op, want) in cases {
            assert_eq!(format!("{op}"), want);
        }
    }

    #[test]
    fn guarded_instruction_display() {
        let i = Instruction::guarded(Guard::unless(Reg(3)), Op::Exit);
        assert_eq!(format!("{i}"), "@!%r3 exit;");
        let i = Instruction::guarded(Guard::when(Reg(3)), Op::Bra { target: 0 });
        assert_eq!(format!("{i}"), "@%r3 bra L0;");
    }

    #[test]
    fn kernel_display_contains_labels_and_params() {
        use crate::KernelBuilder;
        let mut b = KernelBuilder::new("k");
        let p = b.param("data", Type::U64);
        let _base = b.ld_param(Type::U64, p);
        let c = b.setp(CmpOp::Eq, Type::U32, crate::Special::TidX, 0i64);
        let l = b.new_label();
        b.bra_if(c, l);
        b.imm32(1);
        b.place(l);
        b.exit();
        let k = b.build().unwrap();
        let text = format!("{k}");
        assert!(text.contains(".entry k (.param .u64 data)"));
        assert!(text.contains("ld.param.u64 %r0, [data];"));
        assert!(text.contains("L4:"));
        assert!(text.contains("bra L4"));
    }
}
