//! Property tests: randomly generated kernels survive a
//! disassemble→parse round trip unchanged, and the CFG analyses uphold
//! their structural invariants on arbitrary control flow.

use gcl_ptx::{
    parse_kernel, Address, AluOp, Cfg, CmpOp, Guard, Instruction, Kernel, Op, Operand, Reg,
    SfuOp, Space, Type, UnaryOp, RECONV_EXIT,
};
use proptest::prelude::*;

const NREGS: u32 = 12;

fn reg() -> impl Strategy<Value = Reg> {
    (0..NREGS).prop_map(Reg)
}

fn int_type() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::U32),
        Just(Type::U64),
        Just(Type::S32),
        Just(Type::S64),
        Just(Type::B32),
    ]
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg().prop_map(Operand::Reg),
        (-1000i64..1000).prop_map(Operand::Imm),
        Just(Operand::Special(gcl_ptx::Special::TidX)),
        Just(Operand::Special(gcl_ptx::Special::CtaIdX)),
    ]
}

fn address() -> impl Strategy<Value = Address> {
    (reg(), -64i64..64).prop_map(|(base, offset)| Address::reg_offset(base, offset))
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::MulHi),
        Just(AluOp::MulWide),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::Min),
        Just(AluOp::Max),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

fn unary_op() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Neg),
        Just(UnaryOp::Not),
        Just(UnaryOp::Abs),
        Just(UnaryOp::Popc),
        Just(UnaryOp::Clz),
    ]
}

fn straight_line_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (int_type(), reg(), operand()).prop_map(|(ty, dst, src)| Op::Mov { ty, dst, src }),
        (unary_op(), int_type(), reg(), operand())
            .prop_map(|(op, ty, dst, a)| Op::Unary { op, ty, dst, a }),
        (alu_op(), int_type(), reg(), operand(), operand())
            .prop_map(|(op, ty, dst, a, b)| Op::Alu { op, ty, dst, a, b }),
        (int_type(), reg(), operand(), operand(), operand(), any::<bool>())
            .prop_map(|(ty, dst, a, b, c, wide)| Op::Mad { ty, dst, a, b, c, wide }),
        (reg(), operand()).prop_map(|(dst, a)| Op::Sfu {
            op: SfuOp::Sqrt,
            ty: Type::F32,
            dst,
            a
        }),
        (int_type(), reg(), operand(), operand()).prop_map(|(ty, dst, a, b)| Op::Setp {
            cmp: CmpOp::Lt,
            ty,
            dst,
            a,
            b
        }),
        (int_type(), reg(), operand(), operand(), reg())
            .prop_map(|(ty, dst, a, b, pred)| Op::Selp { ty, dst, a, b, pred }),
        (reg(), address()).prop_map(|(dst, addr)| Op::Ld {
            space: Space::Global,
            ty: Type::U32,
            dst,
            addr
        }),
        (address(), operand()).prop_map(|(addr, src)| Op::St {
            space: Space::Global,
            ty: Type::U32,
            addr,
            src
        }),
        Just(Op::Bar),
    ]
}

/// A random structured kernel: straight-line body with optional guarded
/// forward branches (targets resolved to valid indices), always terminated
/// by `exit`.
fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    (
        proptest::collection::vec((straight_line_op(), proptest::option::of(0..NREGS)), 1..24),
        proptest::collection::vec((1usize..24, 0..NREGS), 0..4),
    )
        .prop_map(|(body, branches)| {
            let mut insts: Vec<Instruction> = body
                .into_iter()
                .map(|(op, guard)| Instruction {
                    op,
                    guard: guard.map(|p| Guard::when(Reg(p))),
                })
                .collect();
            // Insert guarded forward branches at deterministic positions.
            for (target_seed, pred) in branches {
                let pos = target_seed % insts.len();
                // Forward target: somewhere in [pos, len] (len = the exit).
                let target = pos + (target_seed % (insts.len() - pos + 1));
                insts.insert(
                    pos,
                    Instruction::guarded(Guard::when(Reg(pred)), Op::Bra { target: target + 1 }),
                );
            }
            let exit_pc = insts.len();
            // Clamp any branch target beyond the exit to the exit.
            for inst in &mut insts {
                if let Op::Bra { target } = &mut inst.op {
                    *target = (*target).min(exit_pc);
                }
            }
            insts.push(Instruction::new(Op::Exit));
            Kernel::new("prop", vec![], 0, insts).expect("constructed kernel is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Disassembly re-parses to the identical kernel.
    #[test]
    fn display_parse_round_trip(kernel in kernel_strategy()) {
        let text = kernel.to_string();
        let reparsed = parse_kernel(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(reparsed, kernel);
    }

    /// CFG structural invariants hold for arbitrary control flow.
    #[test]
    fn cfg_invariants(kernel in kernel_strategy()) {
        let cfg = Cfg::build(&kernel);
        let blocks = cfg.blocks();
        // Blocks tile the instruction stream exactly.
        let mut covered = 0usize;
        for b in blocks {
            prop_assert_eq!(b.start, covered);
            prop_assert!(b.end > b.start);
            covered = b.end;
        }
        prop_assert_eq!(covered, kernel.insts().len());
        // Successor/pred lists are consistent.
        for (id, b) in blocks.iter().enumerate() {
            for &s in &b.succs {
                prop_assert!(blocks[s].preds.contains(&id));
            }
            for &p in &b.preds {
                prop_assert!(blocks[p].succs.contains(&id));
            }
        }
        // Reconvergence pcs are either the exit sentinel or real pcs that
        // start a block.
        for (_, reconv) in cfg.reconvergence_pcs(&kernel) {
            if reconv != RECONV_EXIT {
                prop_assert!(reconv < kernel.insts().len());
                let b = cfg.block_of(reconv);
                prop_assert_eq!(blocks[b].start, reconv);
            }
        }
    }

    /// Register bookkeeping: every register an instruction names is below
    /// `num_regs`.
    #[test]
    fn num_regs_covers_all_registers(kernel in kernel_strategy()) {
        for inst in kernel.insts() {
            for r in inst.src_regs().into_iter().chain(inst.dst_reg()) {
                prop_assert!(r.0 < kernel.num_regs());
            }
        }
    }
}
