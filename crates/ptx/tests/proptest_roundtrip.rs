//! Property-style tests: randomly generated kernels survive a
//! disassemble→parse round trip unchanged, and the CFG analyses uphold
//! their structural invariants on arbitrary control flow. Cases are driven
//! by the in-tree seeded generator so failures are bit-reproducible.

use gcl_ptx::{
    parse_kernel, Address, AluOp, Cfg, CmpOp, Guard, Instruction, Kernel, Op, Operand, Reg, SfuOp,
    Space, Type, UnaryOp, RECONV_EXIT,
};
use gcl_rng::{cases, Rng};

const NREGS: u32 = 12;

fn reg(r: &mut Rng) -> Reg {
    Reg(r.u32_below(NREGS))
}

fn int_type(r: &mut Rng) -> Type {
    *r.pick(&[Type::U32, Type::U64, Type::S32, Type::S64, Type::B32])
}

fn operand(r: &mut Rng) -> Operand {
    match r.u32_below(4) {
        0 => Operand::Reg(reg(r)),
        1 => Operand::Imm(i64::from(r.u32_below(2000)) - 1000),
        2 => Operand::Special(gcl_ptx::Special::TidX),
        _ => Operand::Special(gcl_ptx::Special::CtaIdX),
    }
}

fn address(r: &mut Rng) -> Address {
    let offset = i64::from(r.u32_below(128)) - 64;
    Address::reg_offset(reg(r), offset)
}

fn alu_op(r: &mut Rng) -> AluOp {
    *r.pick(&[
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::MulHi,
        AluOp::MulWide,
        AluOp::Div,
        AluOp::Rem,
        AluOp::Min,
        AluOp::Max,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
    ])
}

fn unary_op(r: &mut Rng) -> UnaryOp {
    *r.pick(&[
        UnaryOp::Neg,
        UnaryOp::Not,
        UnaryOp::Abs,
        UnaryOp::Popc,
        UnaryOp::Clz,
    ])
}

fn straight_line_op(r: &mut Rng) -> Op {
    match r.u32_below(10) {
        0 => Op::Mov {
            ty: int_type(r),
            dst: reg(r),
            src: operand(r),
        },
        1 => Op::Unary {
            op: unary_op(r),
            ty: int_type(r),
            dst: reg(r),
            a: operand(r),
        },
        2 => Op::Alu {
            op: alu_op(r),
            ty: int_type(r),
            dst: reg(r),
            a: operand(r),
            b: operand(r),
        },
        3 => Op::Mad {
            ty: int_type(r),
            dst: reg(r),
            a: operand(r),
            b: operand(r),
            c: operand(r),
            wide: r.chance(0.5),
        },
        4 => Op::Sfu {
            op: SfuOp::Sqrt,
            ty: Type::F32,
            dst: reg(r),
            a: operand(r),
        },
        5 => Op::Setp {
            cmp: CmpOp::Lt,
            ty: int_type(r),
            dst: reg(r),
            a: operand(r),
            b: operand(r),
        },
        6 => Op::Selp {
            ty: int_type(r),
            dst: reg(r),
            a: operand(r),
            b: operand(r),
            pred: reg(r),
        },
        7 => Op::Ld {
            space: Space::Global,
            ty: Type::U32,
            dst: reg(r),
            addr: address(r),
        },
        8 => Op::St {
            space: Space::Global,
            ty: Type::U32,
            addr: address(r),
            src: operand(r),
        },
        _ => Op::Bar { id: r.u32_below(4) },
    }
}

/// A random structured kernel: straight-line body with optional guarded
/// forward branches (targets resolved to valid indices), always terminated
/// by `exit`.
fn random_kernel(r: &mut Rng) -> Kernel {
    let body_len = 1 + r.usize_below(23);
    let mut insts: Vec<Instruction> = (0..body_len)
        .map(|_| {
            let op = straight_line_op(r);
            let guard = if r.chance(0.3) {
                Some(Guard::when(Reg(r.u32_below(NREGS))))
            } else {
                None
            };
            Instruction { op, guard }
        })
        .collect();
    // Insert guarded forward branches at deterministic positions.
    let nbranches = r.usize_below(4);
    for _ in 0..nbranches {
        let target_seed = 1 + r.usize_below(23);
        let pred = r.u32_below(NREGS);
        let pos = target_seed % insts.len();
        // Forward target: somewhere in [pos, len] (len = the exit).
        let target = pos + (target_seed % (insts.len() - pos + 1));
        insts.insert(
            pos,
            Instruction::guarded(Guard::when(Reg(pred)), Op::Bra { target: target + 1 }),
        );
    }
    let exit_pc = insts.len();
    // Clamp any branch target beyond the exit to the exit.
    for inst in &mut insts {
        if let Op::Bra { target } = &mut inst.op {
            *target = (*target).min(exit_pc);
        }
    }
    insts.push(Instruction::new(Op::Exit));
    Kernel::new("prop", vec![], 0, insts).expect("constructed kernel is valid")
}

/// Disassembly re-parses to the identical kernel.
#[test]
fn display_parse_round_trip() {
    cases(0x9164, 128, |r| {
        let kernel = random_kernel(r);
        let text = kernel.to_string();
        let reparsed =
            parse_kernel(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(reparsed, kernel);
    });
}

/// CFG structural invariants hold for arbitrary control flow.
#[test]
fn cfg_invariants() {
    cases(0x9165, 128, |r| {
        let kernel = random_kernel(r);
        let cfg = Cfg::build(&kernel);
        let blocks = cfg.blocks();
        // Blocks tile the instruction stream exactly.
        let mut covered = 0usize;
        for b in blocks {
            assert_eq!(b.start, covered);
            assert!(b.end > b.start);
            covered = b.end;
        }
        assert_eq!(covered, kernel.insts().len());
        // Successor/pred lists are consistent.
        for (id, b) in blocks.iter().enumerate() {
            for &s in &b.succs {
                assert!(blocks[s].preds.contains(&id));
            }
            for &p in &b.preds {
                assert!(blocks[p].succs.contains(&id));
            }
        }
        // Reconvergence pcs are either the exit sentinel or real pcs that
        // start a block.
        for (_, reconv) in cfg.reconvergence_pcs(&kernel) {
            if reconv != RECONV_EXIT {
                assert!(reconv < kernel.insts().len());
                let b = cfg.block_of(reconv);
                assert_eq!(blocks[b].start, reconv);
            }
        }
    });
}

/// Register bookkeeping: every register an instruction names is below
/// `num_regs`.
#[test]
fn num_regs_covers_all_registers() {
    cases(0x9166, 128, |r| {
        let kernel = random_kernel(r);
        for inst in kernel.insts() {
            for reg in inst.src_regs().into_iter().chain(inst.dst_reg()) {
                assert!(reg.0 < kernel.num_regs());
            }
        }
    });
}
