//! Property-style tests of the load classifier: soundness of the taint
//! rules on randomly generated dependence chains, driven by the in-tree
//! seeded generator so failures are bit-reproducible.

use gcl_core::{classify, LoadClass};
use gcl_ptx::{Address, AluOp, Instruction, Kernel, Op, Operand, Reg, Space, Type};
use gcl_rng::{cases, Rng};

/// A random arithmetic chain: each step combines two earlier registers (or
/// launch-invariant sources). Register 0 starts as a parameter value;
/// whether register 1 starts from a load is the controlled taint source.
#[derive(Debug, Clone)]
struct Chain {
    taint_origin: bool,
    /// (lhs, rhs) choices per step, as indices into prior registers.
    steps: Vec<(u8, u8)>,
}

fn chain(r: &mut Rng) -> Chain {
    let taint_origin = r.chance(0.5);
    let nsteps = 1 + r.usize_below(11);
    let steps = (0..nsteps)
        .map(|_| (r.u32_below(256) as u8, r.u32_below(256) as u8))
        .collect();
    Chain {
        taint_origin,
        steps,
    }
}

/// Build the kernel for a chain. Returns (kernel, final load pc, whether any
/// step can see the tainted register).
fn build(c: &Chain) -> (Kernel, usize, bool) {
    let mut insts: Vec<Instruction> = Vec::new();
    let base = Reg(0); // pointer parameter
    insts.push(Instruction::new(Op::Ld {
        space: Space::Param,
        ty: Type::U64,
        dst: base,
        addr: Address::abs(0),
    }));
    // r1: the controlled origin — parameter-derived or load-derived.
    let origin = Reg(1);
    if c.taint_origin {
        insts.push(Instruction::new(Op::Ld {
            space: Space::Global,
            ty: Type::U32,
            dst: origin,
            addr: Address::reg(base),
        }));
    } else {
        insts.push(Instruction::new(Op::Mov {
            ty: Type::U32,
            dst: origin,
            src: Operand::Special(gcl_ptx::Special::TidX),
        }));
    }
    // Arithmetic chain over registers 2..: each step picks two earlier regs.
    let mut tainted = vec![false, c.taint_origin];
    let mut next = 2u32;
    for &(a_pick, b_pick) in &c.steps {
        let a = Reg(u32::from(a_pick) % next);
        let b = Reg(u32::from(b_pick) % next);
        insts.push(Instruction::new(Op::Alu {
            op: AluOp::Add,
            ty: Type::U32,
            dst: Reg(next),
            a: Operand::Reg(a),
            b: Operand::Reg(b),
        }));
        let t = tainted[a.index()] || tainted[b.index()];
        tainted.push(t);
        next += 1;
    }
    // Final: a load whose address mixes the base pointer and the last chain
    // register.
    let last = Reg(next - 1);
    let addr_reg = Reg(next);
    insts.push(Instruction::new(Op::Alu {
        op: AluOp::Add,
        ty: Type::U64,
        dst: addr_reg,
        a: Operand::Reg(base),
        b: Operand::Reg(last),
    }));
    let load_pc = insts.len();
    insts.push(Instruction::new(Op::Ld {
        space: Space::Global,
        ty: Type::U32,
        dst: Reg(next + 1),
        addr: Address::reg(addr_reg),
    }));
    insts.push(Instruction::new(Op::Exit));
    let expect_taint = *tainted.last().unwrap();
    let kernel = Kernel::new(
        "chain",
        vec![gcl_ptx::ParamDecl::new("p", Type::U64)],
        0,
        insts,
    )
    .unwrap();
    (kernel, load_pc, expect_taint)
}

/// The classifier's verdict on the final load matches exact taint
/// propagation through the chain.
#[test]
fn classifier_matches_exact_taint() {
    cases(0xC1A5, 512, |r| {
        let c = chain(r);
        let (kernel, load_pc, tainted) = build(&c);
        let classes = classify(&kernel);
        let got = classes.class_of(load_pc).expect("final load classified");
        let want = if tainted {
            LoadClass::NonDeterministic
        } else {
            LoadClass::Deterministic
        };
        assert_eq!(got, want, "chain {c:?}");
    });
}

/// Non-deterministic verdicts always come with a witness chain that starts
/// at the load and ends at a memory-read instruction.
#[test]
fn witnesses_are_well_formed() {
    cases(0xC1A6, 512, |r| {
        let c = chain(r);
        let (kernel, load_pc, _) = build(&c);
        let classes = classify(&kernel);
        let info = classes.load(load_pc).unwrap();
        if info.class == LoadClass::NonDeterministic {
            assert!(!info.witness.is_empty());
            assert_eq!(info.witness[0], load_pc);
            let last = *info.witness.last().unwrap();
            let op = &kernel.insts()[last].op;
            assert!(
                matches!(op, Op::Ld { space, .. } if !space.is_parameterized())
                    || matches!(op, Op::Atom { .. }),
                "witness terminal {op}"
            );
        } else {
            assert!(info.witness.is_empty());
        }
    });
}

/// Classification is idempotent and source sets are non-empty.
#[test]
fn classification_is_stable() {
    cases(0xC1A7, 256, |r| {
        let c = chain(r);
        let (kernel, load_pc, _) = build(&c);
        let a = classify(&kernel);
        let b = classify(&kernel);
        assert_eq!(a, b);
        assert!(!a.load(load_pc).unwrap().sources.is_empty());
    });
}
