//! Reaching-definitions dataflow over a kernel CFG.
//!
//! This is the flow-sensitive foundation of the load classifier: for every
//! register *use* we need the set of definitions that may reach it, so that
//! a register that first holds a loaded value and is later overwritten with
//! parameter-derived data is not spuriously tainted.

use gcl_ptx::{Cfg, Kernel, Reg};
use std::collections::HashMap;

/// A definition site: the instruction at `pc` writes register `reg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DefSite {
    /// Instruction index of the definition.
    pub pc: usize,
    /// The register defined.
    pub reg: Reg,
}

/// Reaching-definition sets for one kernel.
///
/// Built once per kernel by [`ReachingDefs::compute`]; queried per use with
/// [`ReachingDefs::defs_reaching_use`].
///
/// Guarded (predicated) instructions are *may*-definitions: they do not kill
/// earlier definitions of the same register, because at runtime the guard
/// may be false for some threads.
#[derive(Debug)]
pub struct ReachingDefs {
    /// All definition sites, indexed by def id.
    defs: Vec<DefSite>,
    /// Def ids per register.
    defs_of_reg: HashMap<Reg, Vec<usize>>,
    /// Bitset (as `Vec<u64>` words) of defs live at entry of each block.
    block_in: Vec<Vec<u64>>,
    /// Block boundaries for per-use resolution.
    cfg: Cfg,
}

fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 == 1
}

fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

fn bit_clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1 << (i % 64));
}

impl ReachingDefs {
    /// Run the reaching-definitions analysis for `kernel`.
    pub fn compute(kernel: &Kernel) -> ReachingDefs {
        let cfg = Cfg::build(kernel);
        let insts = kernel.insts();

        // Enumerate definition sites.
        let mut defs = Vec::new();
        let mut defs_of_reg: HashMap<Reg, Vec<usize>> = HashMap::new();
        for (pc, inst) in insts.iter().enumerate() {
            if let Some(reg) = inst.dst_reg() {
                let id = defs.len();
                defs.push(DefSite { pc, reg });
                defs_of_reg.entry(reg).or_default().push(id);
            }
        }
        let nd = defs.len();
        let words = nd.div_ceil(64).max(1);
        let nb = cfg.blocks().len();

        // GEN/KILL per block. A guarded def generates but does not kill.
        let mut gen = vec![vec![0u64; words]; nb];
        let mut kill = vec![vec![0u64; words]; nb];
        let mut def_id_at_pc: HashMap<usize, usize> = HashMap::new();
        for (id, d) in defs.iter().enumerate() {
            def_id_at_pc.insert(d.pc, id);
        }
        for (bid, block) in cfg.blocks().iter().enumerate() {
            for pc in block.pcs() {
                let Some(&id) = def_id_at_pc.get(&pc) else {
                    continue;
                };
                let reg = defs[id].reg;
                let unconditional = insts[pc].guard.is_none();
                if unconditional {
                    // Kill every other def of this register.
                    for &other in &defs_of_reg[&reg] {
                        if other != id {
                            bit_set(&mut kill[bid], other);
                            bit_clear(&mut gen[bid], other);
                        }
                    }
                }
                bit_set(&mut gen[bid], id);
                bit_clear(&mut kill[bid], id);
            }
        }

        // Forward fixpoint: IN = union of preds' OUT; OUT = GEN | (IN & !KILL).
        let mut block_in = vec![vec![0u64; words]; nb];
        let mut block_out = vec![vec![0u64; words]; nb];
        let rpo = cfg.reverse_post_order();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let mut inset = vec![0u64; words];
                for &p in &cfg.blocks()[b].preds {
                    for w in 0..words {
                        inset[w] |= block_out[p][w];
                    }
                }
                let mut outset = vec![0u64; words];
                for w in 0..words {
                    outset[w] = gen[b][w] | (inset[w] & !kill[b][w]);
                }
                if inset != block_in[b] || outset != block_out[b] {
                    block_in[b] = inset;
                    block_out[b] = outset;
                    changed = true;
                }
            }
        }

        ReachingDefs {
            defs,
            defs_of_reg,
            block_in,
            cfg,
        }
    }

    /// All definition sites in the kernel.
    pub fn defs(&self) -> &[DefSite] {
        &self.defs
    }

    /// Definitions of `reg` that may reach the *use* at instruction `use_pc`.
    ///
    /// Resolution is flow-sensitive within the block: an unguarded
    /// definition of `reg` earlier in the same block kills everything that
    /// reached the block entry.
    pub fn defs_reaching_use(&self, kernel: &Kernel, use_pc: usize, reg: Reg) -> Vec<DefSite> {
        let Some(ids) = self.defs_of_reg.get(&reg) else {
            return Vec::new();
        };
        let bid = self.cfg.block_of(use_pc);
        let block = &self.cfg.blocks()[bid];
        let insts = kernel.insts();

        // Walk the block up to (not including) use_pc, tracking the live set
        // of this register's defs.
        let mut live: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&id| bit_get(&self.block_in[bid], id))
            .collect();
        for (pc, inst) in insts.iter().enumerate().take(use_pc).skip(block.start) {
            if inst.dst_reg() == Some(reg) {
                let id = ids
                    .iter()
                    .copied()
                    .find(|&id| self.defs[id].pc == pc)
                    .unwrap();
                if inst.guard.is_none() {
                    live.clear();
                }
                if !live.contains(&id) {
                    live.push(id);
                }
            }
        }
        live.sort_unstable();
        live.into_iter().map(|id| self.defs[id]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_ptx::{CmpOp, KernelBuilder, Special, Type};

    #[test]
    fn straight_line_latest_def_wins() {
        let mut b = KernelBuilder::new("k");
        let r = b.reg();
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: r,
            src: 1i64.into(),
        }); // pc 0
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: r,
            src: 2i64.into(),
        }); // pc 1
        b.st_global(Type::U32, r, r); // pc 2 uses r
        b.exit();
        let k = b.build().unwrap();
        let rd = ReachingDefs::compute(&k);
        let reaching = rd.defs_reaching_use(&k, 2, r);
        assert_eq!(reaching, vec![DefSite { pc: 1, reg: r }]);
    }

    #[test]
    fn guarded_def_does_not_kill() {
        let mut b = KernelBuilder::new("k");
        let r = b.reg();
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: r,
            src: 1i64.into(),
        }); // pc 0
        let p = b.setp(CmpOp::Eq, Type::U32, Special::TidX, 0i64); // pc 1
        b.guard_next(p, false);
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: r,
            src: 2i64.into(),
        }); // pc 2, guarded
        b.st_global(Type::U32, r, r); // pc 3
        b.exit();
        let k = b.build().unwrap();
        let rd = ReachingDefs::compute(&k);
        let reaching = rd.defs_reaching_use(&k, 3, r);
        let pcs: Vec<usize> = reaching.iter().map(|d| d.pc).collect();
        assert_eq!(pcs, vec![0, 2]);
    }

    #[test]
    fn defs_merge_across_branches() {
        // if tid==0 { r = 1 } else { r = 2 }; use r
        let mut b = KernelBuilder::new("k");
        let r = b.reg();
        let p = b.setp(CmpOp::Eq, Type::U32, Special::TidX, 0i64); // pc 0
        let else_l = b.new_label();
        let merge = b.new_label();
        b.bra_unless(p, else_l); // pc 1
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: r,
            src: 1i64.into(),
        }); // pc 2
        b.bra(merge); // pc 3
        b.place(else_l);
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: r,
            src: 2i64.into(),
        }); // pc 4
        b.place(merge);
        b.st_global(Type::U32, r, r); // pc 5
        b.exit();
        let k = b.build().unwrap();
        let rd = ReachingDefs::compute(&k);
        let pcs: Vec<usize> = rd
            .defs_reaching_use(&k, 5, r)
            .iter()
            .map(|d| d.pc)
            .collect();
        assert_eq!(pcs, vec![2, 4]);
    }

    #[test]
    fn loop_carried_defs_reach_loop_head() {
        // r = 0; L: r = r + 1; if (r < 10) goto L
        let mut b = KernelBuilder::new("k");
        let r = b.reg();
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: r,
            src: 0i64.into(),
        }); // pc 0
        let head = b.new_label();
        b.place(head);
        b.push(gcl_ptx::Op::Alu {
            op: gcl_ptx::AluOp::Add,
            ty: Type::U32,
            dst: r,
            a: r.into(),
            b: 1i64.into(),
        }); // pc 1, uses r
        let p = b.setp(CmpOp::Lt, Type::U32, r, 10i64); // pc 2
        b.bra_if(p, head); // pc 3
        b.exit();
        let k = b.build().unwrap();
        let rd = ReachingDefs::compute(&k);
        // The use of r inside the loop (pc 1) sees both the init (pc 0) and
        // the loop-carried def (pc 1 itself).
        let pcs: Vec<usize> = rd
            .defs_reaching_use(&k, 1, r)
            .iter()
            .map(|d| d.pc)
            .collect();
        assert_eq!(pcs, vec![0, 1]);
    }

    #[test]
    fn unwritten_register_has_no_defs() {
        let mut b = KernelBuilder::new("k");
        let ghost = b.reg();
        b.st_global(Type::U32, ghost, 0i64); // pc 0 uses unwritten reg
        b.exit();
        let k = b.build().unwrap();
        let rd = ReachingDefs::compute(&k);
        assert!(rd.defs_reaching_use(&k, 0, ghost).is_empty());
    }

    #[test]
    fn use_in_same_instruction_as_def_sees_prior_defs() {
        // r = 5; r = r + 1 — the use of r in pc 1 must see pc 0, not pc 1.
        let mut b = KernelBuilder::new("k");
        let r = b.reg();
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: r,
            src: 5i64.into(),
        }); // pc 0
        b.push(gcl_ptx::Op::Alu {
            op: gcl_ptx::AluOp::Add,
            ty: Type::U32,
            dst: r,
            a: r.into(),
            b: 1i64.into(),
        }); // pc 1
        b.exit();
        let k = b.build().unwrap();
        let rd = ReachingDefs::compute(&k);
        let pcs: Vec<usize> = rd
            .defs_reaching_use(&k, 1, r)
            .iter()
            .map(|d| d.pc)
            .collect();
        assert_eq!(pcs, vec![0]);
    }
}
