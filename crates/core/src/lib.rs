//! # gcl-core — deterministic / non-deterministic load classification
//!
//! The primary contribution of *"Revealing Critical Loads and Hidden Data
//! Locality in GPGPU Applications"* (Koo, Jeon, Annavaram — IISWC 2015) is
//! the observation that GPU global loads split into two classes with very
//! different memory behavior, and a **backward dataflow analysis** that
//! separates them:
//!
//! * **Deterministic loads** compute their effective address only from
//!   *parameterized data*: thread/CTA ids (special registers), kernel
//!   parameters (`ld.param`), and constants. They are known at launch time
//!   and tend to generate coalesced accesses.
//! * **Non-deterministic loads** compute their address (transitively) from
//!   values produced by *prior loads* (`ld.global/local/shared/tex`,
//!   atomics) — data-dependent indexing. They tend to be uncoalesced and
//!   dominate memory-system bottlenecks.
//!
//! [`classify`] runs the analysis on a [`gcl_ptx::Kernel`]: it computes
//! flow-sensitive reaching definitions over the CFG, then traces each load's
//! address register backwards to its terminal [`AddressSource`]s, with
//! loop-safe memoization so that induction variables (`i = i + 1`) inherit
//! the class of their initialization rather than diverging.
//!
//! ```
//! use gcl_core::{classify, LoadClass};
//! use gcl_ptx::{KernelBuilder, Type};
//!
//! let mut b = KernelBuilder::new("gather");
//! let idx = b.param("idx", Type::U64);
//! let data = b.param("data", Type::U64);
//! let idx_base = b.ld_param(Type::U64, idx);
//! let data_base = b.ld_param(Type::U64, data);
//! let tid = b.thread_linear_id();
//! let ia = b.index64(idx_base, tid, 4);
//! let i = b.ld_global(Type::U32, ia);      // idx[tid]   — deterministic
//! let da = b.index64(data_base, i, 4);
//! let v = b.ld_global(Type::U32, da);      // data[idx[tid]] — non-deterministic
//! b.st_global(Type::U32, da, v);
//! b.exit();
//! let k = b.build()?;
//!
//! let c = classify(&k);
//! assert_eq!(c.global_load_counts(), (1, 1));
//! # Ok::<(), gcl_ptx::ValidateError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod classify;
mod reaching;

pub use classify::{address_sources, classify, AddressSource, Classification, LoadClass, LoadInfo};
pub use reaching::{DefSite, ReachingDefs};
