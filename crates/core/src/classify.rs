//! Backward-dataflow classification of loads into deterministic and
//! non-deterministic classes.
//!
//! This module implements Section V of the paper: starting from each load's
//! address register, trace the definition chains backwards until every
//! terminal source is known. If every terminal is *parameterized data*
//! (`ld.param`, `ld.const`, special registers, immediates) the load is
//! **deterministic**; if any terminal is a prior memory load
//! (`ld.global/local/shared/tex` or an atomic result) the load is
//! **non-deterministic**.

use crate::reaching::{DefSite, ReachingDefs};
use gcl_ptx::{Kernel, Op, Operand, Reg, Space, Special};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// The two load classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LoadClass {
    /// Address derives only from parameterized data (thread/CTA ids, kernel
    /// parameters, constants). Tends to coalesce.
    Deterministic,
    /// Address derives (transitively) from data produced by prior loads or
    /// other non-parameterized values. Tends not to coalesce.
    NonDeterministic,
}

impl LoadClass {
    /// One-letter label used in the paper's figures (`D` / `N`).
    pub fn letter(self) -> char {
        match self {
            LoadClass::Deterministic => 'D',
            LoadClass::NonDeterministic => 'N',
        }
    }
}

impl fmt::Display for LoadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadClass::Deterministic => write!(f, "deterministic"),
            LoadClass::NonDeterministic => write!(f, "non-deterministic"),
        }
    }
}

/// A terminal source reached by the backward trace of an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddressSource {
    /// `ld.param` at `pc` — parameterized.
    Param {
        /// The defining `ld.param` instruction.
        pc: usize,
    },
    /// `ld.const` at `pc` — parameterized (host-initialized constant bank).
    Const {
        /// The defining `ld.const` instruction.
        pc: usize,
    },
    /// A special register (`%tid.x`, `%ctaid.x`, ...) — parameterized.
    Special(Special),
    /// An immediate operand — parameterized.
    Immediate,
    /// A memory load at `pc` from `space` — **not** parameterized.
    MemoryLoad {
        /// The defining load instruction.
        pc: usize,
        /// The space it reads.
        space: Space,
    },
    /// The result of an atomic RMW at `pc` — **not** parameterized.
    AtomicResult {
        /// The defining atomic instruction.
        pc: usize,
    },
    /// A register read with no reaching definition — treated as
    /// non-parameterized (and worth a diagnostic).
    Uninitialized {
        /// The register that was read undefined.
        reg: Reg,
    },
}

impl AddressSource {
    /// Whether this source is parameterized (launch-invariant).
    pub fn is_parameterized(self) -> bool {
        match self {
            AddressSource::Param { .. }
            | AddressSource::Const { .. }
            | AddressSource::Special(_)
            | AddressSource::Immediate => true,
            AddressSource::MemoryLoad { .. }
            | AddressSource::AtomicResult { .. }
            | AddressSource::Uninitialized { .. } => false,
        }
    }
}

impl fmt::Display for AddressSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressSource::Param { pc } => write!(f, "param@{pc}"),
            AddressSource::Const { pc } => write!(f, "const@{pc}"),
            AddressSource::Special(sp) => write!(f, "{sp}"),
            AddressSource::Immediate => write!(f, "imm"),
            AddressSource::MemoryLoad { pc, space } => write!(f, "load.{space}@{pc}"),
            AddressSource::AtomicResult { pc } => write!(f, "atom@{pc}"),
            AddressSource::Uninitialized { reg } => write!(f, "uninit:{reg}"),
        }
    }
}

/// Classification result for one load instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadInfo {
    /// Instruction index of the load.
    pub pc: usize,
    /// The space the load reads.
    pub space: Space,
    /// Deterministic / non-deterministic verdict.
    pub class: LoadClass,
    /// Every terminal source the backward trace reached.
    pub sources: BTreeSet<AddressSource>,
    /// For non-deterministic loads: one witness def-chain from the load's
    /// address register back to a non-parameterized source (instruction
    /// indices, load first). Empty for deterministic loads.
    pub witness: Vec<usize>,
}

/// Classification of every load in one kernel.
///
/// # Examples
///
/// Code 1 of the paper (`bfs`): `g_graph_mask[tid]` is deterministic,
/// `g_graph_visited[id]` with `id` loaded from `g_graph_edges` is not.
///
/// ```
/// use gcl_core::{classify, LoadClass};
///
/// let k = gcl_ptx::parse_kernel(r#"
/// .entry bfs_like (.param .u64 mask, .param .u64 edges, .param .u64 visited)
/// {
///   ld.param.u64 %rd1, [mask];
///   ld.param.u64 %rd2, [edges];
///   ld.param.u64 %rd3, [visited];
///   mov.u32 %r1, %ctaid.x;
///   mov.u32 %r2, %ntid.x;
///   mov.u32 %r3, %tid.x;
///   mad.lo.u32 %r4, %r1, %r2, %r3;      // tid
///   mul.wide.u32 %rd4, %r4, 4;
///   add.u64 %rd5, %rd1, %rd4;
///   ld.global.u32 %r5, [%rd5];          // mask[tid]     -> D
///   add.u64 %rd6, %rd2, %rd4;
///   ld.global.u32 %r6, [%rd6];          // id = edges[i] -> D
///   mul.wide.u32 %rd7, %r6, 4;
///   add.u64 %rd8, %rd3, %rd7;
///   ld.global.u32 %r7, [%rd8];          // visited[id]   -> N
///   exit;
/// }
/// "#).unwrap();
/// let c = classify(&k);
/// assert_eq!(c.class_of(9), Some(LoadClass::Deterministic));
/// assert_eq!(c.class_of(11), Some(LoadClass::Deterministic));
/// assert_eq!(c.class_of(14), Some(LoadClass::NonDeterministic));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    kernel_name: String,
    loads: BTreeMap<usize, LoadInfo>,
}

impl Classification {
    /// Name of the classified kernel.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// The class of the load at `pc`, or `None` if `pc` is not a load.
    pub fn class_of(&self, pc: usize) -> Option<LoadClass> {
        self.loads.get(&pc).map(|l| l.class)
    }

    /// Full info for the load at `pc`.
    pub fn load(&self, pc: usize) -> Option<&LoadInfo> {
        self.loads.get(&pc)
    }

    /// All classified loads, in pc order.
    pub fn loads(&self) -> impl Iterator<Item = &LoadInfo> {
        self.loads.values()
    }

    /// Only the global-memory loads (the set the paper reports on).
    pub fn global_loads(&self) -> impl Iterator<Item = &LoadInfo> {
        self.loads
            .values()
            .filter(|l| matches!(l.space, Space::Global | Space::Local | Space::Tex))
    }

    /// Static counts of (deterministic, non-deterministic) global loads.
    pub fn global_load_counts(&self) -> (usize, usize) {
        let mut d = 0;
        let mut n = 0;
        for l in self.global_loads() {
            match l.class {
                LoadClass::Deterministic => d += 1,
                LoadClass::NonDeterministic => n += 1,
            }
        }
        (d, n)
    }
}

/// Classify every load instruction of `kernel`.
///
/// Atomics are classified too (their address is traced the same way); shared
/// and other non-global loads appear in the result but are excluded from
/// [`Classification::global_loads`].
pub fn classify(kernel: &Kernel) -> Classification {
    Classifier::new(kernel).run()
}

/// Terminal provenance sources of `reg` as used at `use_pc`: the same
/// backward def-chain trace [`classify`] runs for load addresses, exposed
/// for downstream analyses (e.g. the static coalescing predictor of
/// `gcl-analyze`, which bails to "unknown" as soon as a non-parameterized
/// terminal appears).
///
/// An empty reaching-definition set yields `{Uninitialized}`, exactly as in
/// classification.
pub fn address_sources(kernel: &Kernel, use_pc: usize, reg: Reg) -> BTreeSet<AddressSource> {
    Classifier::new(kernel).sources_of_use(use_pc, reg)
}

struct Classifier<'k> {
    kernel: &'k Kernel,
    reaching: ReachingDefs,
    /// Memoized terminal-source sets per definition site.
    memo: HashMap<DefSite, BTreeSet<AddressSource>>,
    /// Cycle guard: definition sites on the current DFS stack.
    in_progress: BTreeSet<DefSite>,
}

impl<'k> Classifier<'k> {
    fn new(kernel: &'k Kernel) -> Classifier<'k> {
        Classifier {
            kernel,
            reaching: ReachingDefs::compute(kernel),
            memo: HashMap::new(),
            in_progress: BTreeSet::new(),
        }
    }

    fn run(mut self) -> Classification {
        let mut loads = BTreeMap::new();
        for (pc, inst) in self.kernel.insts().iter().enumerate() {
            let (space, addr) = match &inst.op {
                Op::Ld { space, addr, .. } => (*space, *addr),
                Op::Atom { addr, .. } => (Space::Global, *addr),
                _ => continue,
            };
            // `ld.param`/`ld.const` themselves are parameterized reads; they
            // are sources for other loads, not classification subjects.
            if space.is_parameterized() {
                continue;
            }
            let sources = match addr.base {
                Some(base) => self.sources_of_use(pc, base),
                // Absolute address: launch-invariant.
                None => BTreeSet::from([AddressSource::Immediate]),
            };
            let class = if sources.iter().all(|s| s.is_parameterized()) {
                LoadClass::Deterministic
            } else {
                LoadClass::NonDeterministic
            };
            let witness = if class == LoadClass::NonDeterministic {
                addr.base
                    .map(|b| self.witness_path(pc, b))
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            loads.insert(
                pc,
                LoadInfo {
                    pc,
                    space,
                    class,
                    sources,
                    witness,
                },
            );
        }
        Classification {
            kernel_name: self.kernel.name().to_string(),
            loads,
        }
    }

    /// Terminal sources of register `reg` as used at `use_pc`.
    fn sources_of_use(&mut self, use_pc: usize, reg: Reg) -> BTreeSet<AddressSource> {
        let defs = self.reaching.defs_reaching_use(self.kernel, use_pc, reg);
        if defs.is_empty() {
            return BTreeSet::from([AddressSource::Uninitialized { reg }]);
        }
        let mut out = BTreeSet::new();
        for def in defs {
            out.extend(self.sources_of_def(def));
        }
        out
    }

    /// Terminal sources contributed by one definition site.
    fn sources_of_def(&mut self, def: DefSite) -> BTreeSet<AddressSource> {
        if let Some(cached) = self.memo.get(&def) {
            return cached.clone();
        }
        // A definition currently being traced is a loop-carried dependence
        // on itself; the cycle contributes nothing beyond its entry values
        // (e.g. `i = i + 1` is as deterministic as `i`'s initialization).
        if !self.in_progress.insert(def) {
            return BTreeSet::new();
        }

        let inst = &self.kernel.insts()[def.pc];
        let mut out = BTreeSet::new();
        match &inst.op {
            Op::Ld { space, addr, .. } => match space {
                Space::Param => {
                    out.insert(AddressSource::Param { pc: def.pc });
                }
                Space::Const => {
                    out.insert(AddressSource::Const { pc: def.pc });
                }
                _ => {
                    out.insert(AddressSource::MemoryLoad {
                        pc: def.pc,
                        space: *space,
                    });
                    // The load's own address chain is irrelevant: the loaded
                    // *value* is what taints.
                    let _ = addr;
                }
            },
            Op::Atom { .. } => {
                out.insert(AddressSource::AtomicResult { pc: def.pc });
            }
            Op::Mov { src, .. }
            | Op::Cvt { src, .. }
            | Op::Sfu { a: src, .. }
            | Op::Unary { a: src, .. } => {
                out.extend(self.sources_of_operand(def.pc, *src));
            }
            Op::Alu { a, b, .. } | Op::Setp { a, b, .. } => {
                out.extend(self.sources_of_operand(def.pc, *a));
                out.extend(self.sources_of_operand(def.pc, *b));
            }
            Op::Mad { a, b, c, .. } => {
                out.extend(self.sources_of_operand(def.pc, *a));
                out.extend(self.sources_of_operand(def.pc, *b));
                out.extend(self.sources_of_operand(def.pc, *c));
            }
            Op::Selp { a, b, pred, .. } => {
                out.extend(self.sources_of_operand(def.pc, *a));
                out.extend(self.sources_of_operand(def.pc, *b));
                // The predicate is a data dependence of the selected value.
                out.extend(self.sources_of_use(def.pc, *pred));
            }
            Op::St { .. } | Op::Bra { .. } | Op::Bar { .. } | Op::Exit => {
                // These never define registers; unreachable for a DefSite.
                debug_assert!(false, "definition site at non-defining instruction");
            }
        }

        self.in_progress.remove(&def);
        self.memo.insert(def, out.clone());
        out
    }

    fn sources_of_operand(&mut self, pc: usize, op: Operand) -> BTreeSet<AddressSource> {
        match op {
            Operand::Reg(r) => self.sources_of_use(pc, r),
            Operand::Imm(_) | Operand::FImm(_) => BTreeSet::from([AddressSource::Immediate]),
            Operand::Special(s) => BTreeSet::from([AddressSource::Special(s)]),
        }
    }

    /// A shortest-found def-chain from the use of `reg` at `use_pc` to any
    /// non-parameterized source, as instruction indices starting with
    /// `use_pc`. Best-effort (DFS order), for diagnostics.
    fn witness_path(&mut self, use_pc: usize, reg: Reg) -> Vec<usize> {
        let mut path = vec![use_pc];
        let mut visited = BTreeSet::new();
        if self.witness_dfs(use_pc, reg, &mut path, &mut visited) {
            path
        } else {
            Vec::new()
        }
    }

    fn witness_dfs(
        &mut self,
        use_pc: usize,
        reg: Reg,
        path: &mut Vec<usize>,
        visited: &mut BTreeSet<DefSite>,
    ) -> bool {
        let defs = self.reaching.defs_reaching_use(self.kernel, use_pc, reg);
        if defs.is_empty() {
            return true; // uninitialized register: the path ends here
        }
        for def in defs {
            if !visited.insert(def) {
                continue;
            }
            // Does this def lead to a non-parameterized source at all?
            if self
                .sources_of_def(def)
                .iter()
                .all(|s| s.is_parameterized())
            {
                continue;
            }
            path.push(def.pc);
            let inst = &self.kernel.insts()[def.pc];
            match &inst.op {
                Op::Ld { space, .. } if !space.is_parameterized() => return true,
                Op::Atom { .. } => return true,
                _ => {
                    let mut operand_regs: Vec<Reg> = inst.op.src_regs();
                    // Selp's pred is already in src_regs.
                    operand_regs.dedup();
                    for r in operand_regs {
                        if self.witness_dfs(def.pc, r, path, visited) {
                            return true;
                        }
                    }
                }
            }
            path.pop();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_ptx::{AtomOp, CmpOp, KernelBuilder, Type};

    fn classify_built(b: KernelBuilder) -> Classification {
        classify(&b.build().unwrap())
    }

    /// Deterministic: address = param + f(tid).
    #[test]
    fn param_indexed_load_is_deterministic() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("data", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.thread_linear_id();
        let addr = b.index64(base, tid, 4);
        let _ = b.ld_global(Type::U32, addr);
        b.exit();
        let c = classify_built(b);
        let (d, n) = c.global_load_counts();
        assert_eq!((d, n), (1, 0));
        let info = c.global_loads().next().unwrap();
        assert!(info.witness.is_empty());
        assert!(info.sources.contains(&AddressSource::Param { pc: 0 }));
    }

    /// Non-deterministic: address uses a value loaded from global memory.
    #[test]
    fn load_fed_address_is_non_deterministic() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("idx", Type::U64);
        let q = b.param("data", Type::U64);
        let idx_base = b.ld_param(Type::U64, p);
        let data_base = b.ld_param(Type::U64, q);
        let tid = b.thread_linear_id();
        let idx_addr = b.index64(idx_base, tid, 4);
        let idx = b.ld_global(Type::U32, idx_addr); // D
        let data_addr = b.index64(data_base, idx, 4);
        let _ = b.ld_global(Type::U32, data_addr); // N
        b.exit();
        let c = classify_built(b);
        assert_eq!(c.global_load_counts(), (1, 1));
        let nd = c
            .global_loads()
            .find(|l| l.class == LoadClass::NonDeterministic)
            .unwrap();
        assert!(!nd.witness.is_empty());
        // The witness chain must end at the feeding load's pc.
        let feeder = c
            .global_loads()
            .find(|l| l.class == LoadClass::Deterministic)
            .unwrap();
        assert_eq!(*nd.witness.last().unwrap(), feeder.pc);
    }

    /// Loop induction variables derived from parameters stay deterministic.
    #[test]
    fn param_derived_loop_induction_is_deterministic() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("data", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let i = b.reg();
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: i,
            src: 0i64.into(),
        });
        let head = b.new_label();
        b.place(head);
        let addr = b.index64(base, i, 4);
        let _ = b.ld_global(Type::U32, addr);
        b.push(gcl_ptx::Op::Alu {
            op: gcl_ptx::AluOp::Add,
            ty: Type::U32,
            dst: i,
            a: i.into(),
            b: 1i64.into(),
        });
        let pr = b.setp(CmpOp::Lt, Type::U32, i, 16i64);
        b.bra_if(pr, head);
        b.exit();
        let c = classify_built(b);
        assert_eq!(c.global_load_counts(), (1, 0));
    }

    /// A loop that accumulates loaded values taints the address.
    #[test]
    fn load_carried_loop_variable_is_non_deterministic() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("data", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let i = b.reg();
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: i,
            src: 0i64.into(),
        });
        let head = b.new_label();
        b.place(head);
        let addr = b.index64(base, i, 4);
        let v = b.ld_global(Type::U32, addr);
        // i = v (pointer chasing)
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: i,
            src: v.into(),
        });
        let pr = b.setp(CmpOp::Ne, Type::U32, i, 0i64);
        b.bra_if(pr, head);
        b.exit();
        let c = classify_built(b);
        // The single static load is reached with i=0 (D path) and i=v (N
        // path); the merged verdict must be non-deterministic.
        assert_eq!(c.global_load_counts(), (0, 1));
    }

    /// Flow-sensitivity: a register that held a loaded value but is
    /// unconditionally overwritten with parameterized data is clean.
    #[test]
    fn overwritten_register_is_not_tainted() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("data", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let r = b.reg();
        let tid = b.thread_linear_id();
        let addr0 = b.index64(base, tid, 4);
        let loaded = b.ld_global(Type::U32, addr0);
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: r,
            src: loaded.into(),
        });
        // Unconditional overwrite with tid.
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: r,
            src: tid.into(),
        });
        let addr1 = b.index64(base, r, 4);
        let _ = b.ld_global(Type::U32, addr1);
        b.exit();
        let c = classify_built(b);
        assert_eq!(c.global_load_counts(), (2, 0));
    }

    /// Shared-memory loads taint like any other load (the paper lists
    /// ld.shared among non-deterministic sources).
    #[test]
    fn shared_load_taints_address() {
        let mut b = KernelBuilder::new("k");
        b.shared(128);
        let p = b.param("data", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(gcl_ptx::Special::TidX);
        let shaddr = b.mul(Type::U32, tid, 4i64);
        let idx = b.ld_shared(Type::U32, shaddr);
        let addr = b.index64(base, idx, 4);
        let _ = b.ld_global(Type::U32, addr);
        b.exit();
        let c = classify_built(b);
        assert_eq!(c.global_load_counts(), (0, 1));
        let info = c.global_loads().next().unwrap();
        assert!(info.sources.iter().any(|s| matches!(
            s,
            AddressSource::MemoryLoad {
                space: Space::Shared,
                ..
            }
        )));
    }

    /// Atomic results are non-parameterized sources.
    #[test]
    fn atomic_result_taints_address() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("ctr", Type::U64);
        let q = b.param("data", Type::U64);
        let ctr = b.ld_param(Type::U64, p);
        let base = b.ld_param(Type::U64, q);
        let slot = b.atom(AtomOp::Add, Type::U32, ctr, 1i64);
        let addr = b.index64(base, slot, 4);
        let _ = b.ld_global(Type::U32, addr);
        b.exit();
        let c = classify_built(b);
        // The atomic itself is classified (its address is param-derived, so
        // deterministic) and the dependent load is non-deterministic.
        let atom_info = c.loads().find(|l| l.pc == 2).expect("atomic classified");
        assert_eq!(atom_info.class, LoadClass::Deterministic);
        let n: usize = c
            .global_loads()
            .filter(|l| l.class == LoadClass::NonDeterministic)
            .count();
        assert_eq!(n, 1);
        let nd = c
            .global_loads()
            .find(|l| l.class == LoadClass::NonDeterministic)
            .unwrap();
        assert!(nd
            .sources
            .iter()
            .any(|s| matches!(s, AddressSource::AtomicResult { pc: 2 })));
    }

    /// Uninitialized registers are flagged and classified non-deterministic.
    #[test]
    fn uninitialized_address_is_non_deterministic() {
        let mut b = KernelBuilder::new("k");
        let ghost = b.reg();
        let _ = b.ld_global(Type::U32, ghost);
        b.exit();
        let c = classify_built(b);
        let info = c.global_loads().next().unwrap();
        assert_eq!(info.class, LoadClass::NonDeterministic);
        assert!(info
            .sources
            .iter()
            .any(|s| matches!(s, AddressSource::Uninitialized { .. })));
    }

    /// selp's predicate is a data dependence.
    #[test]
    fn selp_predicate_taints_selected_value() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("data", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(gcl_ptx::Special::TidX);
        let addr0 = b.index64(base, tid, 4);
        let v = b.ld_global(Type::U32, addr0);
        let cond = b.setp(CmpOp::Gt, Type::U32, v, 0i64); // tainted predicate
        let sel = b.selp(Type::U32, 1i64, 2i64, cond);
        let addr1 = b.index64(base, sel, 4);
        let _ = b.ld_global(Type::U32, addr1);
        b.exit();
        let c = classify_built(b);
        assert_eq!(c.global_load_counts(), (1, 1));
    }

    /// Texture loads count as global-backed loads and as tainting sources.
    #[test]
    fn tex_load_is_classified_and_taints() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("data", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(gcl_ptx::Special::TidX);
        let a0 = b.index64(base, tid, 4);
        let t = b.ld(Space::Tex, Type::U32, gcl_ptx::Address::reg(a0));
        let a1 = b.index64(base, t, 4);
        let _ = b.ld_global(Type::U32, a1);
        b.exit();
        let c = classify_built(b);
        assert_eq!(c.global_load_counts(), (1, 1));
    }

    /// Classification is stable: classifying twice yields identical results.
    #[test]
    fn classification_is_deterministic_itself() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("idx", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.thread_linear_id();
        let a0 = b.index64(base, tid, 4);
        let i = b.ld_global(Type::U32, a0);
        let a1 = b.index64(base, i, 4);
        let _ = b.ld_global(Type::U32, a1);
        b.exit();
        let k = b.build().unwrap();
        assert_eq!(classify(&k), classify(&k));
    }
}
