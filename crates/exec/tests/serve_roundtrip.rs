//! End-to-end exercise of the `gcl serve` daemon: a real TCP client
//! submits jobs as newline-delimited JSON, polls status and results, sees
//! backpressure when the bounded queue fills, and shuts the server down
//! gracefully.

use gcl_exec::{ClientOptions, ServeClient, ServeOptions, Server};
use gcl_rng::Backoff;
use gcl_stats::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to serve daemon");
        let writer = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    /// Send one request object, read one response line.
    fn call(&mut self, request: &Json) -> Json {
        let mut line = request.render_compact();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        Json::parse(response.trim()).expect("response is valid JSON")
    }
}

fn ok(j: &Json) -> bool {
    matches!(j.get("ok"), Some(Json::Bool(true)))
}

fn submit(workload: &str) -> Json {
    Json::obj(vec![
        ("op", Json::Str("submit".into())),
        ("workload", Json::Str(workload.into())),
        ("tiny", Json::Bool(true)),
        ("sanitize", Json::Bool(true)),
    ])
}

/// Start a daemon on an ephemeral port, returning its address and the
/// thread that runs it (joined to prove graceful shutdown terminates).
fn start(opts: ServeOptions) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(opts).expect("bind ephemeral port");
    let addr = server.addr().expect("read bound address");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle)
}

#[test]
fn submit_poll_result_shutdown_roundtrip() {
    let (addr, handle) = start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        queue_cap: 16,
        cache: None,
        ..ServeOptions::default()
    });
    let mut c = Client::connect(addr);

    // Bad requests are answered, not dropped.
    let r = c.call(&Json::obj(vec![("op", Json::Str("dance".into()))]));
    assert!(!ok(&r));
    let r = c.call(&submit("no-such-workload"));
    assert!(!ok(&r), "unknown workload is a submit-time error");

    // Submit two real jobs; ids are distinct and sequential.
    let r1 = c.call(&submit("bfs"));
    assert!(ok(&r1), "{r1}");
    let id1 = r1.get("id").and_then(Json::as_u64).expect("id");
    let r2 = c.call(&submit("2mm"));
    let id2 = r2.get("id").and_then(Json::as_u64).expect("id");
    assert_ne!(id1, id2);

    // Poll until both are done (tiny workloads: well under the deadline).
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut done = Vec::new();
    for id in [id1, id2] {
        loop {
            assert!(Instant::now() < deadline, "job {id} never finished");
            let r = c.call(&Json::obj(vec![
                ("op", Json::Str("result".into())),
                ("id", Json::UInt(id)),
            ]));
            assert!(ok(&r), "{r}");
            match r.get("state").and_then(Json::as_str) {
                Some("done") => {
                    assert!(r.get("cycles").and_then(Json::as_u64).unwrap() > 0);
                    let digest = r.get("digest").and_then(Json::as_str).unwrap().to_string();
                    assert!(digest.starts_with("0x"), "sanitized job has a digest");
                    done.push(digest);
                    break;
                }
                Some("failed") => panic!("job {id} failed: {r}"),
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
    assert_eq!(done.len(), 2);

    // Status reflects the finished work and per-worker counters.
    let s = c.call(&Json::obj(vec![("op", Json::Str("status".into()))]));
    assert!(ok(&s), "{s}");
    assert_eq!(
        s.get("jobs")
            .and_then(|j| j.get("done"))
            .and_then(Json::as_u64),
        Some(2)
    );
    let workers = s.get("workers").and_then(Json::as_arr).expect("workers");
    assert_eq!(workers.len(), 2);
    let total_run: u64 = workers
        .iter()
        .map(|w| w.get("jobs_run").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(total_run, 2);

    // Graceful shutdown: acknowledged, then the server thread exits once
    // we disconnect.
    let r = c.call(&Json::obj(vec![("op", Json::Str("shutdown".into()))]));
    assert!(ok(&r), "{r}");
    // A submit after shutdown is refused while draining.
    let r = c.call(&submit("bfs"));
    assert!(!ok(&r), "submits during drain must be rejected: {r}");
    drop(c);
    handle.join().expect("serve thread exits after drain");
}

#[test]
fn bounded_queue_rejects_submits_under_backpressure() {
    // One worker, queue of one: a burst of submits must overflow. srad is
    // the slowest tiny workload, so the first job pins the worker while
    // the burst lands.
    let (addr, handle) = start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        queue_cap: 1,
        cache: None,
        ..ServeOptions::default()
    });
    let mut c = Client::connect(addr);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for _ in 0..10 {
        let r = c.call(&submit("srad"));
        if ok(&r) {
            accepted += 1;
        } else {
            let msg = r.get("error").and_then(Json::as_str).unwrap_or("");
            assert!(msg.contains("queue full"), "unexpected rejection: {r}");
            rejected += 1;
        }
    }
    assert!(accepted >= 1, "the first submit always fits");
    assert!(
        rejected >= 1,
        "a 10-burst into a 1-slot queue must see backpressure"
    );
    let r = c.call(&Json::obj(vec![("op", Json::Str("shutdown".into()))]));
    assert!(ok(&r));
    drop(c);
    handle.join().expect("drain finishes the queued jobs");
}

#[test]
fn oversized_frame_gets_structured_error_and_close() {
    let (addr, handle) = start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        max_frame: 256,
        ..ServeOptions::default()
    });
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    // A single frame far past the cap, no newline needed — the reader
    // must reject it while buffering, not after.
    let huge = vec![b'x'; 4096];
    writer.write_all(&huge).expect("send oversized frame");
    let mut response = String::new();
    reader.read_line(&mut response).expect("structured error");
    let r = Json::parse(response.trim()).expect("error frame is valid JSON");
    assert!(!ok(&r));
    let msg = r.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(msg.contains("frame too large"), "got: {r}");
    assert!(msg.contains("256"), "error names the cap: {r}");
    // The connection is closed afterwards: the next read sees EOF.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("EOF"), 0);
    // And the daemon itself is unharmed.
    let mut c = Client::connect(addr);
    let r = c.call(&Json::obj(vec![("op", Json::Str("status".into()))]));
    assert!(ok(&r));
    let r = c.call(&Json::obj(vec![("op", Json::Str("shutdown".into()))]));
    assert!(ok(&r));
    drop(c);
    handle.join().expect("serve thread exits");
}

#[test]
fn idle_client_does_not_block_drain() {
    let (addr, handle) = start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        ..ServeOptions::default()
    });
    // A client that connects and then says nothing, held open across the
    // shutdown: the drain must not wait for it.
    let _silent = TcpStream::connect(addr).expect("connect silent client");
    let mut c = Client::connect(addr);
    let r = c.call(&Json::obj(vec![("op", Json::Str("shutdown".into()))]));
    assert!(ok(&r));
    drop(c);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut joined = false;
    while Instant::now() < deadline {
        if handle.is_finished() {
            joined = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(joined, "drain completed despite the idle connection");
    handle.join().expect("serve thread exits");
}

#[test]
fn serve_client_rides_out_backpressure_with_retries() {
    // One worker, queue of one, and a srad pinning the worker: direct
    // submits overflow, but ServeClient::submit retries with backoff until
    // capacity frees up.
    let (addr, handle) = start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        queue_cap: 1,
        cache: None,
        ..ServeOptions::default()
    });
    let mut client = ServeClient::connect(ClientOptions {
        addr: addr.to_string(),
        retries: 40,
        backoff: Backoff::new(25, 250),
        ..ClientOptions::default()
    })
    .expect("connect");
    // Drive the queue past capacity: with one slot and one worker, a
    // burst of 4 must hit `queue full` at least once, and every submit
    // must nonetheless be accepted eventually.
    let mut ids = Vec::new();
    for _ in 0..4 {
        ids.push(
            client
                .submit("srad", true, false)
                .expect("backpressure retried"),
        );
    }
    assert_eq!(ids.len(), 4);
    for id in ids {
        let r = client
            .wait(id, Duration::from_secs(120))
            .expect("job finishes");
        assert_eq!(r.get("state").and_then(Json::as_str), Some("done"), "{r}");
    }
    client.shutdown().expect("drain");
    drop(client);
    handle.join().expect("serve thread exits");
}
