//! Fuzzes the content-addressed result cache's rejection matrix under
//! live traffic: a corruptor thread bit-flips and truncates entries in
//! `results/cache/` while a warm `-j4` sweep is reading them. The cache's
//! contract is that a broken entry can cost time but never correctness —
//! every corruption must surface as a silent miss that recomputes, and the
//! sweep's statistics must stay byte-identical to the cold run's.

use gcl_exec::{run_pool, JobSpec, PoolConfig, ResultCache};
use gcl_rng::Rng;
use gcl_sim::GpuConfig;
use gcl_workloads::tiny_workloads;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcl-exec-fuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn sanitized_specs() -> Vec<JobSpec> {
    let mut cfg = GpuConfig::small();
    cfg.sanitize = true;
    tiny_workloads()
        .iter()
        .map(|w| JobSpec::new(w.name(), true, cfg.clone()))
        .collect()
}

/// The committed (`.bin`) entries currently in the cache directory.
fn entries(dir: &Path) -> Vec<PathBuf> {
    let Ok(read) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut found: Vec<PathBuf> = read
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    found.sort();
    found
}

/// Damage one cache entry in place: flip a random byte, truncate at a
/// random offset, or chop the trailing checksum. Returns whether a file
/// was actually touched (it may have been replaced under us — fine, the
/// pool's rewrite is atomic and either image is self-validating).
fn corrupt_one(path: &Path, rng: &mut Rng) -> bool {
    let Ok(mut file) = OpenOptions::new().read(true).write(true).open(path) else {
        return false;
    };
    let Ok(len) = file.metadata().map(|m| m.len()) else {
        return false;
    };
    if len == 0 {
        return false;
    }
    match rng.u32_below(3) {
        0 => {
            // Bit-flip one byte anywhere in the entry: header, payload, or
            // checksum — all must be caught by the trailing FNV sum.
            let offset = rng.next_u64() % len;
            let mut byte = [0u8];
            if file.seek(SeekFrom::Start(offset)).is_err() || file.read_exact(&mut byte).is_err() {
                return false;
            }
            byte[0] ^= 1 << rng.u32_below(8);
            file.seek(SeekFrom::Start(offset)).is_ok() && file.write_all(&byte).is_ok()
        }
        1 => {
            // Truncate somewhere inside the entry.
            let keep = rng.next_u64() % len;
            file.set_len(keep).is_ok()
        }
        _ => {
            // Chop exactly the checksum off the tail.
            file.set_len(len.saturating_sub(8)).is_ok()
        }
    }
}

/// The satellite's headline test: corruption under live concurrent load.
#[test]
fn corrupted_entries_are_silent_misses_and_never_change_results() {
    let specs = sanitized_specs();
    let dir = scratch("live");
    let cache = ResultCache::new(&dir);

    // Cold ground truth, populating the cache.
    let cold = run_pool(
        &specs,
        &PoolConfig {
            jobs: 4,
            cache: Some(cache.clone()),
            ..PoolConfig::default()
        },
        |_| {},
    );
    for r in &cold {
        assert!(r.outcome.is_ok(), "cold `{}` must run", r.spec.workload);
    }
    assert!(!entries(&dir).is_empty(), "the cold sweep filled the cache");

    // Warm sweep with a corruptor racing it: flip/truncate random entries
    // until the sweep finishes.
    let stop = AtomicBool::new(false);
    let corruptions = AtomicU64::new(0);
    let warm = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut rng = Rng::new(0xfacc_0fff);
            while !stop.load(Ordering::Relaxed) {
                let files = entries(&dir);
                if !files.is_empty() {
                    let victim = &files[rng.usize_below(files.len())];
                    if corrupt_one(victim, &mut rng) {
                        corruptions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        let warm = run_pool(
            &specs,
            &PoolConfig {
                jobs: 4,
                cache: Some(cache.clone()),
                ..PoolConfig::default()
            },
            |_| {},
        );
        stop.store(true, Ordering::Relaxed);
        warm
    });
    assert!(
        corruptions.load(Ordering::Relaxed) > 0,
        "the corruptor must have actually damaged entries"
    );

    // A broken cache can cost time but never correctness: every job ok,
    // every statistic identical to the cold ground truth.
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.spec, w.spec, "results keep submission order");
        let cold_out = c.outcome.as_ref().expect("cold outcome");
        let warm_out = w
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("warm `{}` failed under fuzz: {e}", w.spec.workload));
        assert_eq!(
            warm_out.stats, cold_out.stats,
            "stats of `{}` changed under cache corruption",
            w.spec.workload
        );
        assert_eq!(w.digest(), c.digest(), "digest of `{}`", w.spec.workload);
    }
}

/// The deterministic counterpart: every single committed entry, once
/// damaged, is rejected as a miss — no timing involved.
#[test]
fn every_damaged_entry_is_rejected_on_reload() {
    let specs = sanitized_specs();
    let dir = scratch("every");
    let cache = ResultCache::new(&dir);
    let results = run_pool(
        &specs,
        &PoolConfig {
            jobs: 4,
            cache: Some(cache.clone()),
            ..PoolConfig::default()
        },
        |_| {},
    );

    let mut rng = Rng::new(0x0bad_cafe);
    for r in &results {
        let fp = r.spec.fingerprint().expect("tiny specs fingerprint");
        assert!(cache.load(&fp).is_some(), "`{}` warm hit", r.spec.workload);
        assert!(corrupt_one(&cache.entry_path(fp.key()), &mut rng));
        assert!(
            cache.load(&fp).is_none(),
            "damaged `{}` entry must be a silent miss",
            r.spec.workload
        );
        // And the recompute path heals it: a fresh store round-trips.
        let out = r.outcome.as_ref().expect("outcome");
        cache
            .store(&fp, &out.stats, out.wall_ms)
            .expect("rewrite heals the entry");
        assert_eq!(
            cache.load(&fp).expect("healed entry hits").stats,
            out.stats,
            "`{}` healed entry round-trips",
            r.spec.workload
        );
    }
}
