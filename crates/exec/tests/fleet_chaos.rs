//! Fault-tolerance tests for fleet mode: every [`FleetInject`] chaos mode
//! is exercised against a live coordinator and must be both *detected*
//! (visible in the status verb's per-worker table) and *recovered from*
//! (every job still reaches `done` with the correct result). The capstone
//! sweeps all 15 workloads through a fleet containing a killer, a
//! straggler, and a corrupter, and requires every statistic — digest
//! included — to be identical to a serial in-process run.

use gcl_exec::fleet::decode_stats_payload;
use gcl_exec::{
    run_job, run_worker, ClientOptions, Coordinator, CoordinatorOptions, FleetInject, JobSpec,
    ServeClient, WorkerOptions, WorkerReport,
};
use gcl_sim::{GpuConfig, LaunchStats};
use gcl_stats::Json;
use std::time::{Duration, Instant};

fn start_coordinator(
    opts: CoordinatorOptions,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let coordinator = Coordinator::bind(CoordinatorOptions {
        addr: "127.0.0.1:0".to_string(),
        print_outcomes: false,
        ..opts
    })
    .expect("bind coordinator");
    let addr = coordinator.addr().expect("read bound address");
    let handle = std::thread::spawn(move || coordinator.run().expect("coordinator loop"));
    (addr, handle)
}

fn spawn_worker(
    addr: std::net::SocketAddr,
    name: &str,
    slots: usize,
    inject: FleetInject,
) -> std::thread::JoinHandle<Result<WorkerReport, String>> {
    let opts = WorkerOptions {
        coord: addr.to_string(),
        name: name.to_string(),
        slots,
        cache: None,
        inject,
        ..WorkerOptions::default()
    };
    std::thread::spawn(move || run_worker(opts))
}

fn client(addr: std::net::SocketAddr) -> ServeClient {
    ServeClient::connect(ClientOptions {
        addr: addr.to_string(),
        max_frame: 1024 * 1024,
        ..ClientOptions::default()
    })
    .expect("connect client")
}

fn tiny_spec(name: &str, sanitize: bool) -> JobSpec {
    let mut cfg = GpuConfig::small();
    cfg.sanitize = sanitize;
    JobSpec::new(name, true, cfg)
}

/// Submit one tiny job, returning its id.
fn submit(client: &mut ServeClient, workload: &str, sanitize: bool) -> u64 {
    client
        .submit(workload, true, sanitize)
        .unwrap_or_else(|e| panic!("submit {workload}: {e}"))
}

/// Wait for `id` to complete and return the decoded, checksum-verified
/// stats from its result frame.
fn wait_stats(client: &mut ServeClient, id: u64) -> LaunchStats {
    let r = client
        .wait(id, Duration::from_secs(300))
        .unwrap_or_else(|e| panic!("job {id}: {e}"));
    assert_eq!(
        r.get("state").and_then(Json::as_str),
        Some("done"),
        "job {id} must succeed: {r}"
    );
    let hex = r
        .get("stats")
        .and_then(Json::as_str)
        .expect("stats payload");
    let sum = r.get("sum").and_then(Json::as_str).expect("checksum");
    decode_stats_payload(hex, sum).expect("payload verifies")
}

/// The per-worker status row for `name`, if that worker has joined yet.
fn try_worker_row(status: &Json, name: &str) -> Option<Json> {
    status
        .get("workers")
        .and_then(Json::as_arr)
        .expect("workers array")
        .iter()
        .find(|w| w.get("name").and_then(Json::as_str) == Some(name))
        .cloned()
}

/// The per-worker status row for `name`.
fn worker_row(status: &Json, name: &str) -> Json {
    try_worker_row(status, name).unwrap_or_else(|| panic!("no worker `{name}` in {status}"))
}

fn row_u64(row: &Json, field: &str) -> u64 {
    row.get(field).and_then(Json::as_u64).unwrap_or(0)
}

/// Poll status until `name` has joined and is reported dead (detection),
/// bounded. Tolerates the worker not having registered yet.
fn await_dead(client: &mut ServeClient, name: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status().expect("status");
        if let Some(row) = try_worker_row(&status, name) {
            if row.get("alive").and_then(Json::as_bool) == Some(false) {
                return status;
            }
        }
        assert!(
            Instant::now() < deadline,
            "`{name}` never declared dead: {status}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The capstone: all 15 workloads through a fleet whose chaos layer kills
/// one worker mid-job, corrupts its one delivered result, and stalls
/// another past its lease — and every statistic must still be identical to
/// a serial in-process run of the same specs.
#[test]
fn fleet_sweep_matches_serial_run_under_combined_chaos() {
    let workloads: Vec<&'static str> = gcl_workloads::tiny_workloads()
        .iter()
        .map(|w| w.name())
        .collect();
    assert_eq!(workloads.len(), 15, "the paper's Table I suite");

    // Serial ground truth, no cache: exactly what `gcl suite -j1` runs.
    let serial: Vec<LaunchStats> = workloads
        .iter()
        .map(|name| {
            run_job(&tiny_spec(name, true), None)
                .outcome
                .unwrap_or_else(|e| panic!("serial {name}: {e}"))
                .stats
        })
        .collect();

    let (addr, coord) = start_coordinator(CoordinatorOptions {
        lease_ms: 2_500,
        heartbeat_ms: 200,
        heartbeat_timeout_ms: 2_000,
        ..CoordinatorOptions::default()
    });
    let good1 = spawn_worker(addr, "good-1", 2, FleetInject::none());
    let good2 = spawn_worker(addr, "good-2", 2, FleetInject::none());
    // The killer's only completed result is corrupt; its second assignment
    // kills it mid-job.
    let killer = spawn_worker(
        addr,
        "killer",
        1,
        FleetInject::parse("corrupt=1,kill-after=2").unwrap(),
    );
    // The straggler holds every lease far past its deadline.
    let staller = spawn_worker(
        addr,
        "staller",
        1,
        FleetInject::parse("stall=60000").unwrap(),
    );

    let mut c = client(addr);
    let ids: Vec<u64> = workloads.iter().map(|w| submit(&mut c, w, true)).collect();
    for (i, id) in ids.iter().enumerate() {
        let stats = wait_stats(&mut c, *id);
        assert_eq!(
            stats, serial[i],
            "`{}`: fleet result must be identical to the serial run",
            workloads[i]
        );
        assert_eq!(
            stats.digest, serial[i].digest,
            "`{}`: digest must survive the chaos",
            workloads[i]
        );
    }
    c.shutdown().expect("drain");
    drop(c);
    coord.join().expect("coordinator exits after drain");
    good1.join().unwrap().expect("good-1 exits cleanly");
    good2.join().unwrap().expect("good-2 exits cleanly");
    // The chaos workers survive as threads even when their sockets die.
    let _ = killer.join().unwrap();
    let _ = staller.join().unwrap();
}

#[test]
fn drop_heartbeat_is_detected_and_work_reassigned() {
    let (addr, coord) = start_coordinator(CoordinatorOptions {
        heartbeat_ms: 100,
        heartbeat_timeout_ms: 800,
        ..CoordinatorOptions::default()
    });
    // Deaf: never answers pings, and stalls so it cannot finish its job
    // before the pong deadline unmasks it.
    let deaf = spawn_worker(
        addr,
        "deaf",
        1,
        FleetInject::parse("drop-heartbeat,stall=3000").unwrap(),
    );
    let mut c = client(addr);
    // Submit while deaf is the only worker, so it must take the job.
    let id = submit(&mut c, "bfs", false);
    let status = await_dead(&mut c, "deaf");
    assert_eq!(
        row_u64(&worker_row(&status, "deaf"), "done"),
        0,
        "deaf never delivered a result"
    );
    // Recovery: a healthy worker joins and the reclaimed job completes.
    let good = spawn_worker(addr, "good", 1, FleetInject::none());
    let stats = wait_stats(&mut c, id);
    assert!(stats.cycles > 0);
    let status = c.status().expect("status");
    assert!(row_u64(&worker_row(&status, "good"), "done") >= 1);
    c.shutdown().expect("drain");
    drop(c);
    coord.join().expect("coordinator exits");
    good.join().unwrap().expect("good exits cleanly");
    let _ = deaf.join().unwrap();
}

#[test]
fn stalled_lease_expires_and_is_reassigned_without_killing_the_worker() {
    let (addr, coord) = start_coordinator(CoordinatorOptions {
        lease_ms: 600,
        heartbeat_ms: 200,
        heartbeat_timeout_ms: 10_000,
        ..CoordinatorOptions::default()
    });
    // Slow answers every ping (it is alive, just useless) but sits on each
    // job far past the lease deadline.
    let slow = spawn_worker(addr, "slow", 1, FleetInject::parse("stall=60000").unwrap());
    let mut c = client(addr);
    let id1 = submit(&mut c, "bfs", false);
    let id2 = submit(&mut c, "2mm", false);
    // Wait until the straggler's lease has been reclaimed at least once.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = c.status().expect("status");
        let reclaimed = try_worker_row(&status, "slow")
            .map(|row| row_u64(&row, "reassigned"))
            .unwrap_or(0);
        if reclaimed >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "lease never expired: {status}");
        std::thread::sleep(Duration::from_millis(50));
    }
    let quick = spawn_worker(addr, "quick", 2, FleetInject::none());
    assert!(wait_stats(&mut c, id1).cycles > 0);
    assert!(wait_stats(&mut c, id2).cycles > 0);
    let status = c.status().expect("status");
    let slow_row = worker_row(&status, "slow");
    assert_eq!(
        slow_row.get("alive").and_then(Json::as_bool),
        Some(true),
        "a straggler loses its lease, not its membership: {status}"
    );
    assert!(row_u64(&worker_row(&status, "quick"), "done") >= 2);
    c.shutdown().expect("drain");
    drop(c);
    coord.join().expect("coordinator exits");
    quick.join().unwrap().expect("quick exits cleanly");
    let _ = slow.join().unwrap();
}

#[test]
fn killed_worker_is_detected_by_eof_and_jobs_rerun_elsewhere() {
    let (addr, coord) = start_coordinator(CoordinatorOptions {
        heartbeat_ms: 200,
        heartbeat_timeout_ms: 5_000,
        ..CoordinatorOptions::default()
    });
    // Dies like `kill -9` the moment its first assignment arrives.
    let victim = spawn_worker(
        addr,
        "victim",
        1,
        FleetInject::parse("kill-after=1").unwrap(),
    );
    let mut c = client(addr);
    let id1 = submit(&mut c, "bfs", false);
    let id2 = submit(&mut c, "gaus", false);
    // EOF detection beats the heartbeat deadline — the socket died.
    let status = await_dead(&mut c, "victim");
    assert_eq!(row_u64(&worker_row(&status, "victim"), "done"), 0);
    let good = spawn_worker(addr, "good", 2, FleetInject::none());
    assert!(wait_stats(&mut c, id1).cycles > 0);
    assert!(wait_stats(&mut c, id2).cycles > 0);
    c.shutdown().expect("drain");
    drop(c);
    coord.join().expect("coordinator exits");
    good.join().unwrap().expect("good exits cleanly");
    let report = victim
        .join()
        .unwrap()
        .expect("victim survives as a process");
    assert!(report.killed, "the kill injection fired");
}

#[test]
fn corrupt_result_is_rejected_by_checksum_and_job_rerun() {
    let serial = run_job(&tiny_spec("bfs", true), None)
        .outcome
        .expect("serial bfs")
        .stats;
    let (addr, coord) = start_coordinator(CoordinatorOptions::default());
    // One worker whose first result frame is corrupted: the coordinator
    // must detect the flip, requeue, and accept the honest second try from
    // the same (sole) worker.
    let liar = spawn_worker(addr, "liar", 1, FleetInject::parse("corrupt=1").unwrap());
    let mut c = client(addr);
    let id = submit(&mut c, "bfs", true);
    let stats = wait_stats(&mut c, id);
    assert_eq!(stats, serial, "the accepted result is the honest one");
    let r = c.result(id).expect("result");
    assert_eq!(
        r.get("assigns").and_then(Json::as_u64),
        Some(2),
        "the job ran twice: {r}"
    );
    let status = c.status().expect("status");
    let row = worker_row(&status, "liar");
    assert_eq!(
        row_u64(&row, "corrupt"),
        1,
        "corruption was counted: {status}"
    );
    assert_eq!(
        row.get("alive").and_then(Json::as_bool),
        Some(true),
        "one corrupt frame does not bury a worker"
    );
    c.shutdown().expect("drain");
    drop(c);
    coord.join().expect("coordinator exits");
    liar.join().unwrap().expect("liar exits cleanly");
}

#[test]
fn partitioned_worker_is_detected_by_pong_deadline() {
    let (addr, coord) = start_coordinator(CoordinatorOptions {
        heartbeat_ms: 100,
        heartbeat_timeout_ms: 800,
        ..CoordinatorOptions::default()
    });
    // Ghost joins, then the network "partitions" immediately: the socket
    // stays open but nothing crosses it — only the pong deadline can tell.
    let ghost = spawn_worker(
        addr,
        "ghost",
        1,
        FleetInject::parse("partition-after=0,partition-hold=4000").unwrap(),
    );
    let mut c = client(addr);
    let id = submit(&mut c, "bfs", false);
    let status = await_dead(&mut c, "ghost");
    assert_eq!(row_u64(&worker_row(&status, "ghost"), "done"), 0);
    let good = spawn_worker(addr, "good", 1, FleetInject::none());
    assert!(wait_stats(&mut c, id).cycles > 0);
    c.shutdown().expect("drain");
    drop(c);
    coord.join().expect("coordinator exits");
    good.join().unwrap().expect("good exits cleanly");
    let report = ghost.join().unwrap().expect("ghost survives as a process");
    assert!(report.partitioned, "the partition injection fired");
}

#[test]
fn resubmitting_a_spec_dedups_by_cache_key() {
    let (addr, coord) = start_coordinator(CoordinatorOptions::default());
    let worker = spawn_worker(addr, "solo", 1, FleetInject::none());
    let mut c = client(addr);
    let id1 = submit(&mut c, "bfs", false);
    // Identical spec: joins the existing job instead of running twice.
    let r = c
        .call(&Json::obj(vec![
            ("op", Json::Str("submit".into())),
            ("workload", Json::Str("bfs".into())),
            ("tiny", Json::Bool(true)),
            ("sanitize", Json::Bool(false)),
        ]))
        .expect("resubmit");
    assert_eq!(r.get("id").and_then(Json::as_u64), Some(id1), "{r}");
    assert_eq!(r.get("deduped").and_then(Json::as_bool), Some(true), "{r}");
    // A different spec (sanitize flips the cache key) is a new job.
    let id2 = submit(&mut c, "bfs", true);
    assert_ne!(id2, id1);
    assert!(wait_stats(&mut c, id1).cycles > 0);
    assert!(wait_stats(&mut c, id2).cycles > 0);
    // Dedup survives completion: the done job keeps answering for its key.
    let r = c
        .call(&Json::obj(vec![
            ("op", Json::Str("submit".into())),
            ("workload", Json::Str("bfs".into())),
            ("tiny", Json::Bool(true)),
            ("sanitize", Json::Bool(false)),
        ]))
        .expect("resubmit after done");
    assert_eq!(r.get("id").and_then(Json::as_u64), Some(id1), "{r}");
    c.shutdown().expect("drain");
    drop(c);
    coord.join().expect("coordinator exits");
    worker.join().unwrap().expect("solo exits cleanly");
}

#[test]
fn coordinator_queue_cap_rejects_with_queue_full_backpressure() {
    let (addr, coord) = start_coordinator(CoordinatorOptions {
        queue_cap: 2,
        ..CoordinatorOptions::default()
    });
    // No workers yet: the queue can only fill.
    let mut impatient = ServeClient::connect(ClientOptions {
        addr: addr.to_string(),
        retries: 1,
        max_frame: 1024 * 1024,
        ..ClientOptions::default()
    })
    .expect("connect");
    let id1 = submit(&mut impatient, "bfs", false);
    let id2 = submit(&mut impatient, "2mm", false);
    let err = impatient
        .submit("gaus", true, false)
        .expect_err("third distinct submit must overflow a 2-slot queue");
    assert!(err.contains("queue full"), "structured backpressure: {err}");
    // A worker joins; the queued jobs drain and capacity returns.
    let worker = spawn_worker(addr, "late", 2, FleetInject::none());
    assert!(wait_stats(&mut impatient, id1).cycles > 0);
    assert!(wait_stats(&mut impatient, id2).cycles > 0);
    let id3 = submit(&mut impatient, "gaus", false);
    assert!(wait_stats(&mut impatient, id3).cycles > 0);
    impatient.shutdown().expect("drain");
    drop(impatient);
    coord.join().expect("coordinator exits");
    worker.join().unwrap().expect("late exits cleanly");
}
