//! Tests for coordinator client sessions: the NDJSON event stream, the
//! replay cursor, dedup semantics, and admission-control sheds.

use gcl_exec::{
    run_worker, ClientOptions, Coordinator, CoordinatorOptions, FleetInject, ServeClient,
    SessionClient, WorkerOptions, WorkerReport,
};
use gcl_stats::Json;
use std::time::{Duration, Instant};

fn start_coordinator(
    opts: CoordinatorOptions,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let coordinator = Coordinator::bind(CoordinatorOptions {
        addr: "127.0.0.1:0".to_string(),
        print_outcomes: false,
        ..opts
    })
    .expect("bind coordinator");
    let addr = coordinator.addr().expect("read bound address");
    let handle = std::thread::spawn(move || coordinator.run().expect("coordinator loop"));
    (addr, handle)
}

fn spawn_worker(
    addr: std::net::SocketAddr,
    name: &str,
) -> std::thread::JoinHandle<Result<WorkerReport, String>> {
    let opts = WorkerOptions {
        coord: addr.to_string(),
        name: name.to_string(),
        slots: 2,
        cache: None,
        inject: FleetInject::none(),
        ..WorkerOptions::default()
    };
    std::thread::spawn(move || run_worker(opts))
}

fn client_opts(addr: std::net::SocketAddr) -> ClientOptions {
    ClientOptions {
        addr: addr.to_string(),
        max_frame: 1024 * 1024,
        ..ClientOptions::default()
    }
}

/// Collect events until a terminal (`done`/`failed`) event for `job`
/// arrives; returns everything seen, terminal included.
fn collect_until_terminal(session: &mut SessionClient, job: u64) -> Vec<Json> {
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut seen = Vec::new();
    loop {
        assert!(Instant::now() < deadline, "no terminal event: {seen:?}");
        let Some(event) = session
            .next_event(Duration::from_secs(5))
            .expect("event stream")
        else {
            continue;
        };
        let kind = event.get("event").and_then(Json::as_str).unwrap_or("");
        let is_terminal = (kind == "done" || kind == "failed")
            && event.get("job").and_then(Json::as_u64) == Some(job);
        seen.push(event);
        if is_terminal {
            return seen;
        }
    }
}

fn kinds_for_job(events: &[Json], job: u64) -> Vec<String> {
    events
        .iter()
        .filter(|e| e.get("job").and_then(Json::as_u64) == Some(job))
        .filter_map(|e| e.get("event").and_then(Json::as_str))
        .map(str::to_string)
        .collect()
}

#[test]
fn session_streams_lifecycle_events_with_monotonic_seq() {
    let (addr, _coord) = start_coordinator(CoordinatorOptions {
        // Fast heartbeats so the depth event shows up quickly.
        heartbeat_ms: 120,
        heartbeat_timeout_ms: 2_000,
        ..CoordinatorOptions::default()
    });
    let worker = spawn_worker(addr, "w0");

    let mut session = SessionClient::open(client_opts(addr), None).expect("open session");
    assert!(!session.id().is_empty(), "coordinator assigns a session id");
    let submit = session.submit("bfs", true, false).expect("submit");
    assert!(!submit.deduped);

    let events = collect_until_terminal(&mut session, submit.id);
    let kinds = kinds_for_job(&events, submit.id);
    assert_eq!(kinds.first().map(String::as_str), Some("queued"));
    assert!(
        kinds.iter().any(|k| k == "leased"),
        "lease is announced: {kinds:?}"
    );
    assert_eq!(kinds.last().map(String::as_str), Some("done"));

    // Sequenced events are strictly increasing; depth heartbeats are
    // live-only and unsequenced.
    let seqs: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("seq").and_then(Json::as_u64))
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq order: {seqs:?}");
    let done = events.last().expect("terminal");
    assert_eq!(done.get("workload").and_then(Json::as_str), Some("bfs"));
    assert_eq!(done.get("cached"), Some(&Json::Bool(false)));
    assert!(done.get("wall_ms").and_then(Json::as_f64).is_some());
    assert!(done.get("worker_wall_ms").and_then(Json::as_f64).is_some());
    assert_eq!(done.get("worker").and_then(Json::as_str), Some("w0"));

    // Idle stream: the queue-depth heartbeat keeps flowing.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "no depth heartbeat");
        let Some(event) = session
            .next_event(Duration::from_secs(2))
            .expect("event stream")
        else {
            continue;
        };
        if event.get("event").and_then(Json::as_str) == Some("depth") {
            assert!(event.get("seq").is_none(), "depth is unsequenced: {event}");
            assert!(event.get("queued").and_then(Json::as_u64).is_some());
            assert!(event.get("running").and_then(Json::as_u64).is_some());
            break;
        }
    }

    let mut c = ServeClient::connect(client_opts(addr)).expect("admin client");
    c.shutdown().expect("shutdown");
    worker.join().expect("worker thread").expect("worker ran");
}

#[test]
fn resumed_session_replays_events_missed_while_disconnected() {
    let (addr, _coord) = start_coordinator(CoordinatorOptions::default());
    let worker = spawn_worker(addr, "w0");

    // Submit, then vanish before anything happens on the stream.
    let mut session = SessionClient::open(client_opts(addr), None).expect("open session");
    let submit = session.submit("spmv", true, false).expect("submit");
    let sid = session.id().to_string();
    drop(session);

    // The job finishes while no one is listening.
    let mut c = ServeClient::connect(client_opts(addr)).expect("poll client");
    let r = c.wait(submit.id, Duration::from_secs(300)).expect("wait");
    assert_eq!(r.get("state").and_then(Json::as_str), Some("done"));

    // Resume: the whole history replays from the session log.
    let mut resumed = SessionClient::open(client_opts(addr), Some(&sid)).expect("resume session");
    assert_eq!(resumed.id(), sid);
    assert!(!resumed.truncated(), "log never overflowed");
    let events = collect_until_terminal(&mut resumed, submit.id);
    let kinds = kinds_for_job(&events, submit.id);
    assert_eq!(kinds.first().map(String::as_str), Some("queued"));
    assert!(kinds.iter().any(|k| k == "leased"), "{kinds:?}");
    assert_eq!(kinds.last().map(String::as_str), Some("done"));

    c.shutdown().expect("shutdown");
    worker.join().expect("worker thread").expect("worker ran");
}

#[test]
fn duplicate_submit_dedups_and_emits_synthetic_done() {
    let (addr, _coord) = start_coordinator(CoordinatorOptions::default());
    let worker = spawn_worker(addr, "w0");

    let mut session = SessionClient::open(client_opts(addr), None).expect("open session");
    let first = session.submit("lu", true, false).expect("submit");
    assert!(!first.deduped);
    let _ = collect_until_terminal(&mut session, first.id);

    // Same spec again: no new job, and — because the job is already
    // terminal — the stream immediately carries a synthetic done so the
    // subscriber doesn't hang waiting for an event that already fired.
    let second = session.submit("lu", true, false).expect("resubmit");
    assert!(second.deduped, "same spec joins the existing job");
    assert_eq!(second.id, first.id);
    let events = collect_until_terminal(&mut session, first.id);
    let kinds = kinds_for_job(&events, first.id);
    assert!(kinds.iter().any(|k| k == "done"), "{kinds:?}");

    let mut c = ServeClient::connect(client_opts(addr)).expect("admin client");
    let status = c.status().expect("status");
    let dedup_hits = status
        .get("cache")
        .and_then(|cc| cc.get("dedup_hits"))
        .and_then(Json::as_u64);
    assert_eq!(dedup_hits, Some(1));

    c.shutdown().expect("shutdown");
    worker.join().expect("worker thread").expect("worker ran");
}

#[test]
fn unknown_resume_id_is_rejected_without_retries() {
    let (addr, _coord) = start_coordinator(CoordinatorOptions::default());
    let started = Instant::now();
    let err = match SessionClient::open(client_opts(addr), Some("sess-nope")) {
        Err(e) => e,
        Ok(_) => panic!("attach with a bogus session id must be rejected"),
    };
    assert!(err.contains("unknown session"), "got: {err}");
    // The rejection is final — no backoff-retry loop burning the budget.
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "retried a fatal error"
    );

    let mut c = ServeClient::connect(client_opts(addr)).expect("admin client");
    c.shutdown().expect("shutdown");
}

#[test]
fn session_inflight_cap_sheds_structurally() {
    // Cap of 1 with no workers: the first submit sits queued forever, the
    // second must be shed with a structured response, not an opaque error
    // and not a hang.
    let (addr, _coord) = start_coordinator(CoordinatorOptions {
        session_inflight_cap: 1,
        ..CoordinatorOptions::default()
    });
    let mut session = SessionClient::open(client_opts(addr), None).expect("open session");
    let first = session.submit("bfs", true, false).expect("first submit");
    assert!(!first.deduped);

    let sid = session.id().to_string();
    let response = session
        .call(&Json::obj(vec![
            ("op", Json::Str("submit".into())),
            ("workload", Json::Str("spmv".into())),
            ("tiny", Json::Bool(true)),
            ("sanitize", Json::Bool(false)),
            ("session", Json::Str(sid)),
        ]))
        .expect("transport ok");
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{response}");
    assert_eq!(response.get("shed"), Some(&Json::Bool(true)), "{response}");
    assert!(
        response.get("error").and_then(Json::as_str).is_some(),
        "shed carries a reason: {response}"
    );

    // Dedup joins are exempt: re-submitting the *same* spec attaches to
    // the inflight job instead of shedding.
    let again = session.submit("bfs", true, false).expect("dedup join");
    assert!(again.deduped);
    assert_eq!(again.id, first.id);

    let mut c = ServeClient::connect(client_opts(addr)).expect("admin client");
    let status = c.status().expect("status");
    assert_eq!(status.get("sheds").and_then(Json::as_u64), Some(1));
    c.shutdown().expect("shutdown");
}

#[test]
fn queue_cap_sheds_with_structured_response() {
    let (addr, _coord) = start_coordinator(CoordinatorOptions {
        queue_cap: 1,
        ..CoordinatorOptions::default()
    });
    let mut c = ServeClient::connect(client_opts(addr)).expect("client");
    let first = c.submit("bfs", true, false);
    assert!(first.is_ok(), "first submit fits the queue: {first:?}");

    let response = c
        .call(&Json::obj(vec![
            ("op", Json::Str("submit".into())),
            ("workload", Json::Str("spmv".into())),
            ("tiny", Json::Bool(true)),
            ("sanitize", Json::Bool(false)),
        ]))
        .expect("transport ok");
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{response}");
    assert_eq!(response.get("shed"), Some(&Json::Bool(true)), "{response}");
    let error = response
        .get("error")
        .and_then(Json::as_str)
        .expect("shed reason");
    assert!(error.starts_with("queue full"), "got: {error}");

    c.shutdown().expect("shutdown");
}
