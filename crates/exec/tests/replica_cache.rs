//! Chaos tests for the replicated read-through fleet cache.
//!
//! The contract under test: every accepted result is fanned out to an
//! R=2 replica set chosen by rendezvous hashing, a warm resubmit probes
//! that set before ever re-running a simulation, and losing a node costs
//! recomputation only for keys whose *entire* replica set died. Worker
//! loss is injected deterministically with the `decommission` verb (the
//! coordinator-side view of `kill -9`: the node is gone from the live
//! set instantly, taking its replica payloads with it), and `reset`
//! clears the job table while keeping the replica stores warm — i.e. "a
//! new client shows up tomorrow with the same sweep".

use gcl_exec::fleet::decode_stats_payload;
use gcl_exec::{
    run_job, run_worker, ClientOptions, Coordinator, CoordinatorOptions, FleetInject, JobSpec,
    ServeClient, WorkerOptions, WorkerReport,
};
use gcl_sim::{GpuConfig, LaunchStats};
use gcl_stats::Json;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

fn start_coordinator(
    opts: CoordinatorOptions,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let coordinator = Coordinator::bind(CoordinatorOptions {
        addr: "127.0.0.1:0".to_string(),
        print_outcomes: false,
        // These tests steer replica placement with `decommission`/`reset`,
        // which a production coordinator refuses without the chaos gate.
        chaos_verbs: true,
        ..opts
    })
    .expect("bind coordinator");
    let addr = coordinator.addr().expect("read bound address");
    let handle = std::thread::spawn(move || coordinator.run().expect("coordinator loop"));
    (addr, handle)
}

fn spawn_worker(
    addr: std::net::SocketAddr,
    name: &str,
) -> std::thread::JoinHandle<Result<WorkerReport, String>> {
    let opts = WorkerOptions {
        coord: addr.to_string(),
        name: name.to_string(),
        slots: 2,
        // No local result cache: every recomputation is a real simulation,
        // so the coordinator's `sims` counter is exact.
        cache: None,
        inject: FleetInject::none(),
        ..WorkerOptions::default()
    };
    std::thread::spawn(move || run_worker(opts))
}

fn client(addr: std::net::SocketAddr) -> ServeClient {
    ServeClient::connect(ClientOptions {
        addr: addr.to_string(),
        max_frame: 1024 * 1024,
        ..ClientOptions::default()
    })
    .expect("connect client")
}

fn await_workers(client: &mut ServeClient, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = client.status().expect("status");
        let alive = status
            .get("workers")
            .and_then(Json::as_arr)
            .map(|ws| {
                ws.iter()
                    .filter(|w| w.get("alive").and_then(Json::as_bool) == Some(true))
                    .count() as u64
            })
            .unwrap_or(0);
        if alive == n {
            return;
        }
        assert!(Instant::now() < deadline, "never saw {n} workers: {status}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn cache_counter(client: &mut ServeClient, field: &str) -> u64 {
    let status = client.status().expect("status");
    status
        .get("cache")
        .and_then(|c| c.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no cache counter `{field}` in {status}"))
}

fn wait_stats(client: &mut ServeClient, id: u64) -> LaunchStats {
    let r = client
        .wait(id, Duration::from_secs(300))
        .unwrap_or_else(|e| panic!("job {id}: {e}"));
    assert_eq!(
        r.get("state").and_then(Json::as_str),
        Some("done"),
        "job {id} must succeed: {r}"
    );
    let hex = r.get("stats").and_then(Json::as_str).expect("stats");
    let sum = r.get("sum").and_then(Json::as_str).expect("checksum");
    decode_stats_payload(hex, sum).expect("payload verifies")
}

/// The replica set (`[primary, secondary]` worker names) the result verb
/// reports for a done job.
fn replica_set(client: &mut ServeClient, id: u64) -> Vec<String> {
    let r = client.result(id).expect("result");
    r.get("replicas")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("no replicas in {r}"))
        .iter()
        .map(|w| w.as_str().expect("worker name").to_string())
        .collect()
}

fn decommission(client: &mut ServeClient, worker: &str) {
    let r = client
        .call(&Json::obj(vec![
            ("op", Json::Str("decommission".into())),
            ("worker", Json::Str(worker.into())),
        ]))
        .expect("decommission call");
    assert_eq!(
        r.get("ok"),
        Some(&Json::Bool(true)),
        "decommission {worker}: {r}"
    );
}

fn reset(client: &mut ServeClient) {
    let r = client
        .call(&Json::obj(vec![("op", Json::Str("reset".into()))]))
        .expect("reset call");
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "reset: {r}");
}

const SWEEP: &[&str] = &["2mm", "gaus", "lu", "spmv", "dwt", "bfs", "sssp", "mis"];

/// The headline chaos property: warm-sweep after killing two of three
/// nodes recomputes exactly the keys whose entire replica set died —
/// no more (read-through works), no fewer (nothing pretends to have data
/// it lost) — and every stat stays byte-identical to a serial run.
#[test]
fn killing_replica_holders_recomputes_only_fully_lost_keys() {
    let (addr, _coord) = start_coordinator(CoordinatorOptions::default());
    let workers: Vec<_> = ["alpha", "bravo", "charlie"]
        .iter()
        .map(|n| spawn_worker(addr, n))
        .collect();
    let mut c = client(addr);
    await_workers(&mut c, 3);

    // Cold sweep: everything simulates once, and every key fans out to
    // its 2-member replica set.
    let ids: Vec<u64> = SWEEP
        .iter()
        .map(|w| c.submit(w, true, false).expect("submit"))
        .collect();
    let cold: Vec<LaunchStats> = ids.iter().map(|&id| wait_stats(&mut c, id)).collect();
    assert_eq!(cache_counter(&mut c, "sims"), SWEEP.len() as u64);
    assert_eq!(cache_counter(&mut c, "stores"), 2 * SWEEP.len() as u64);
    let replica_sets: Vec<Vec<String>> = ids.iter().map(|&id| replica_set(&mut c, id)).collect();
    for set in &replica_sets {
        assert_eq!(set.len(), 2, "R=2 replica set: {set:?}");
    }

    // Serial ground truth, for digest identity.
    let serial: Vec<LaunchStats> = SWEEP
        .iter()
        .map(|w| {
            run_job(&JobSpec::new(*w, true, GpuConfig::small()), None)
                .outcome
                .expect("serial run")
                .stats
        })
        .collect();
    assert_eq!(cold, serial, "cold fleet sweep matches serial");

    // kill -9 two of three nodes (deterministically, from the
    // coordinator's point of view). Their replica payloads are gone.
    let killed: HashSet<&str> = ["alpha", "bravo"].into_iter().collect();
    reset(&mut c);
    decommission(&mut c, "alpha");
    decommission(&mut c, "bravo");

    let truly_lost = replica_sets
        .iter()
        .filter(|set| set.iter().all(|w| killed.contains(w.as_str())))
        .count() as u64;

    // Warm sweep: resubmit everything.
    let warm_ids: Vec<u64> = SWEEP
        .iter()
        .map(|w| c.submit(w, true, false).expect("resubmit"))
        .collect();
    let warm: Vec<LaunchStats> = warm_ids.iter().map(|&id| wait_stats(&mut c, id)).collect();
    assert_eq!(warm, serial, "warm sweep after node loss matches serial");

    let sims = cache_counter(&mut c, "sims");
    assert_eq!(
        sims,
        SWEEP.len() as u64 + truly_lost,
        "exactly the fully-lost keys recompute (lost {truly_lost} of {})",
        SWEEP.len()
    );
    let hits = cache_counter(&mut c, "primary_hits") + cache_counter(&mut c, "read_through");
    assert_eq!(hits, SWEEP.len() as u64 - truly_lost, "survivors all hit");
    assert_eq!(
        cache_counter(&mut c, "misses"),
        truly_lost,
        "probe exhaustion only for fully-lost keys"
    );

    c.shutdown().expect("shutdown");
    for w in workers {
        // Decommissioned workers may see an abrupt close; liveness of the
        // survivors is already proven by the warm sweep above.
        let _ = w.join().expect("worker thread");
    }
}

/// Read-through and write-repair, end to end: a new node that outranks
/// the old replica set becomes the primary, misses its first probe, the
/// old replica answers (read-through), the payload is re-fanned to the
/// new primary (repair) — and after the *entire original replica set*
/// is decommissioned, the repaired copy alone still serves the key.
#[test]
fn read_through_repairs_new_primary_after_membership_change() {
    let (addr, _coord) = start_coordinator(CoordinatorOptions::default());
    let w0 = spawn_worker(addr, "old-0");
    let w1 = spawn_worker(addr, "old-1");
    let mut c = client(addr);
    await_workers(&mut c, 2);

    // Find a workload variant whose key will rank a third worker (join
    // index 2) as its new primary: rendezvous ranking is a pure function
    // of (key, join index), so the test computes it the same way the
    // coordinator does and picks a variant deterministically.
    let rank0 = |key: u64, n: u64| -> u64 {
        (0..n)
            .max_by_key(|&i| gcl_sim::fnv_fold(key, i))
            .expect("nonempty")
    };
    let base_cycles = 20_000_000u64; // GpuConfig::small().max_cycles
    let (variant, key) = (0..64u64)
        .find_map(|v| {
            let mut cfg = GpuConfig::small();
            cfg.max_cycles = base_cycles + v;
            let key = JobSpec::new("bfs", true, cfg)
                .fingerprint()
                .expect("fingerprint")
                .key();
            (rank0(key, 3) == 2).then_some((v, key))
        })
        .expect("some variant ranks the third worker first");
    let _ = key;

    let submit_variant = |c: &mut ServeClient| -> u64 {
        let mut req = vec![
            ("op", Json::Str("submit".into())),
            ("workload", Json::Str("bfs".into())),
            ("tiny", Json::Bool(true)),
            ("sanitize", Json::Bool(false)),
        ];
        if variant > 0 {
            req.push(("max_cycles", Json::UInt(base_cycles + variant)));
        }
        let r = c.call(&Json::obj(req)).expect("submit");
        r.get("id")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("no id in {r}"))
    };

    // Cold run on the two old nodes: both hold the payload.
    let id = submit_variant(&mut c);
    let cold = wait_stats(&mut c, id);
    assert_eq!(cache_counter(&mut c, "sims"), 1);
    assert_eq!(cache_counter(&mut c, "stores"), 2);

    // Membership change: the new node joins and (by construction)
    // outranks both old nodes for this key.
    let w2 = spawn_worker(addr, "newcomer");
    await_workers(&mut c, 3);
    reset(&mut c);

    // Warm resubmit: probe newcomer (miss) -> read-through from the
    // highest-ranked old holder -> write-repair back onto newcomer.
    let id = submit_variant(&mut c);
    let warm = wait_stats(&mut c, id);
    assert_eq!(warm, cold, "read-through returns the original stats");
    assert_eq!(cache_counter(&mut c, "sims"), 1, "no recomputation");
    assert_eq!(cache_counter(&mut c, "read_through"), 1);
    assert_eq!(cache_counter(&mut c, "repairs"), 1);
    assert_eq!(
        cache_counter(&mut c, "stores"),
        3,
        "repair re-fans exactly the missing copy"
    );

    // Kill the entire original replica set. Only the repaired copy on
    // the newcomer survives — and it must be enough.
    reset(&mut c);
    decommission(&mut c, "old-0");
    decommission(&mut c, "old-1");
    let id = submit_variant(&mut c);
    let repaired = wait_stats(&mut c, id);
    assert_eq!(repaired, cold, "repaired copy serves the key");
    assert_eq!(
        cache_counter(&mut c, "sims"),
        1,
        "write-repair made the key durable past its whole original set"
    );
    assert_eq!(cache_counter(&mut c, "primary_hits"), 1);

    c.shutdown().expect("shutdown");
    for w in [w0, w1, w2] {
        let _ = w.join().expect("worker thread");
    }
}

/// `reset` + resubmit with *no* chaos must serve everything from the
/// replica tier: zero recomputation, all primary hits, and per-key
/// `worker_wall_ms` surfaced as 0 for cached answers.
#[test]
fn warm_resubmit_hits_primary_replicas_without_simulating() {
    let (addr, _coord) = start_coordinator(CoordinatorOptions::default());
    let workers: Vec<_> = ["w0", "w1", "w2"]
        .iter()
        .map(|n| spawn_worker(addr, n))
        .collect();
    let mut c = client(addr);
    await_workers(&mut c, 3);

    let sweep = &SWEEP[..4];
    let ids: Vec<u64> = sweep
        .iter()
        .map(|w| c.submit(w, true, false).expect("submit"))
        .collect();
    let cold: Vec<LaunchStats> = ids.iter().map(|&id| wait_stats(&mut c, id)).collect();
    // Cold results carry the executing worker's wall time.
    let mut worker_walls: HashMap<u64, f64> = HashMap::new();
    for &id in &ids {
        let r = c.result(id).expect("result");
        worker_walls.insert(
            id,
            r.get("worker_wall_ms")
                .and_then(Json::as_f64)
                .expect("worker_wall_ms"),
        );
        assert!(r.get("worker").and_then(Json::as_str).is_some());
    }
    assert!(
        worker_walls.values().any(|&ms| ms > 0.0),
        "simulated jobs accrue worker wall time: {worker_walls:?}"
    );

    reset(&mut c);
    let warm_ids: Vec<u64> = sweep
        .iter()
        .map(|w| c.submit(w, true, false).expect("resubmit"))
        .collect();
    let warm: Vec<LaunchStats> = warm_ids.iter().map(|&id| wait_stats(&mut c, id)).collect();
    assert_eq!(warm, cold);
    assert_eq!(cache_counter(&mut c, "sims"), sweep.len() as u64);
    assert_eq!(cache_counter(&mut c, "primary_hits"), sweep.len() as u64);
    assert_eq!(cache_counter(&mut c, "read_through"), 0);
    assert_eq!(cache_counter(&mut c, "misses"), 0);
    for &id in &warm_ids {
        let r = c.result(id).expect("result");
        assert_eq!(r.get("cached"), Some(&Json::Bool(true)), "{r}");
    }

    c.shutdown().expect("shutdown");
    for w in workers {
        w.join().expect("worker thread").expect("worker ran");
    }
}
