//! The durability contract end to end: a coordinator killed at an
//! arbitrary instant and restarted with `--recover` loses no acknowledged
//! job, re-runs nothing already done, and re-fans the replica directory
//! back to full strength. Plus the journal corruption matrix — torn
//! tails, bit flips, stale snapshots, version skew — each recovering (or
//! refusing) exactly as specified.

use gcl_exec::fleet::{
    decode_stats_payload, Journal, JournalError, Record, SnapJobState, JOURNAL_MAGIC,
    JOURNAL_VERSION,
};
use gcl_exec::{
    run_worker, ClientOptions, Coordinator, CoordinatorOptions, FleetInject, ServeClient,
    SessionClient, WorkerOptions, WorkerReport,
};
use gcl_sim::LaunchStats;
use gcl_stats::Json;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn journal_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gcl-jrec-{}-{name}.journal", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

fn start_coordinator(
    opts: CoordinatorOptions,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let coordinator = Coordinator::bind(CoordinatorOptions {
        print_outcomes: false,
        ..opts
    })
    .expect("bind coordinator");
    let addr = coordinator.addr().expect("read bound address");
    let handle = std::thread::spawn(move || coordinator.run().expect("coordinator loop"));
    (addr, handle)
}

fn spawn_worker(
    addr: std::net::SocketAddr,
    name: &str,
) -> std::thread::JoinHandle<Result<WorkerReport, String>> {
    let opts = WorkerOptions {
        coord: addr.to_string(),
        name: name.to_string(),
        slots: 2,
        // No local result cache: the coordinator's `sims` counter counts
        // real simulations exactly.
        cache: None,
        inject: FleetInject::none(),
        ..WorkerOptions::default()
    };
    std::thread::spawn(move || run_worker(opts))
}

fn client_opts(addr: std::net::SocketAddr) -> ClientOptions {
    ClientOptions {
        addr: addr.to_string(),
        max_frame: 1024 * 1024,
        ..ClientOptions::default()
    }
}

fn client(addr: std::net::SocketAddr) -> ServeClient {
    ServeClient::connect(client_opts(addr)).expect("connect client")
}

fn await_workers(client: &mut ServeClient, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = client.status().expect("status");
        let alive = status
            .get("workers")
            .and_then(Json::as_arr)
            .map(|ws| {
                ws.iter()
                    .filter(|w| w.get("alive").and_then(Json::as_bool) == Some(true))
                    .count() as u64
            })
            .unwrap_or(0);
        if alive == n {
            return;
        }
        assert!(Instant::now() < deadline, "never saw {n} workers: {status}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn cache_counter(client: &mut ServeClient, field: &str) -> u64 {
    let status = client.status().expect("status");
    status
        .get("cache")
        .and_then(|c| c.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no cache counter `{field}` in {status}"))
}

fn wait_stats(client: &mut ServeClient, id: u64) -> LaunchStats {
    let r = client
        .wait(id, Duration::from_secs(300))
        .unwrap_or_else(|e| panic!("job {id}: {e}"));
    assert_eq!(
        r.get("state").and_then(Json::as_str),
        Some("done"),
        "job {id} must succeed: {r}"
    );
    let hex = r.get("stats").and_then(Json::as_str).expect("stats");
    let sum = r.get("sum").and_then(Json::as_str).expect("checksum");
    decode_stats_payload(hex, sum).expect("payload verifies")
}

fn sample_tail() -> Vec<Record> {
    vec![
        Record::Submit {
            id: 1,
            key: 0xfeed,
            workload: "bfs".to_string(),
            tiny: true,
            sanitize: false,
            max_cycles: None,
            session: None,
        },
        Record::Lease {
            id: 1,
            worker: "w0".to_string(),
        },
        Record::Done {
            id: 1,
            cached: false,
            wall_ms: 1.0,
            worker_wall_ms: 1.0,
            worker: "w0".to_string(),
            payload: vec![9, 9, 9],
        },
        Record::Stored {
            key: 0xfeed,
            count: 2,
        },
        Record::Submit {
            id: 2,
            key: 0xbeef,
            workload: "spmv".to_string(),
            tiny: true,
            sanitize: false,
            max_cycles: None,
            session: None,
        },
        Record::Lease {
            id: 2,
            worker: "w1".to_string(),
        },
    ]
}

/// A single flipped bit anywhere in a record invalidates its checksum;
/// recovery keeps the clean prefix, physically truncates the rest, and
/// a second recovery sees a pristine file.
#[test]
fn bit_flipped_record_truncates_to_last_valid_prefix() {
    let path = journal_path("bitflip");
    let boundary;
    {
        let mut j = Journal::create(&path).unwrap();
        let tail = sample_tail();
        for r in &tail[..5] {
            j.append(r).unwrap();
        }
        boundary = j.bytes();
        j.append(&tail[5]).unwrap();
        j.sync().unwrap();
    }
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one payload bit of the final record (payload starts 8 bytes
    // past the record boundary, after the length word).
    let target = boundary as usize + 8 + 2;
    bytes[target] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let (_, rec) = Journal::open_recover(&path).unwrap();
    assert!(rec.truncated, "corruption detected");
    assert_eq!(rec.records, 5, "clean prefix survives intact");
    assert_eq!(rec.state.next_id, 2, "job 2's submit is in the prefix");
    assert_eq!(
        rec.state.jobs[1].state,
        SnapJobState::Queued { was_leased: false },
        "the corrupt lease record is gone; job 2 requeues"
    );
    assert_eq!(std::fs::metadata(&path).unwrap().len(), boundary);

    let (_, again) = Journal::open_recover(&path).unwrap();
    assert!(!again.truncated, "second recovery sees a clean file");
    assert_eq!(again.records, 5);
    std::fs::remove_file(&path).ok();
}

/// Records appended after a compaction snapshot replay *on top of* it:
/// the snapshot is a starting point, never a mask over newer history.
#[test]
fn stale_snapshot_with_newer_tail_replays_both() {
    let path = journal_path("staletail");
    let tail = sample_tail();
    {
        let mut j = Journal::create(&path).unwrap();
        // First job reaches Done, then the journal compacts...
        for r in &tail[..4] {
            j.append(r).unwrap();
        }
        let snap = Journal::open_recover(&path).unwrap().1.state;
        j.compact(&snap).unwrap();
        // ...and the second job's submit + lease land after the snapshot.
        for r in &tail[4..] {
            j.append(r).unwrap();
        }
        j.sync().unwrap();
    }
    let (_, rec) = Journal::open_recover(&path).unwrap();
    assert!(!rec.truncated);
    assert_eq!(rec.records, 3, "snapshot + two tail records");
    assert_eq!(rec.state.next_id, 2);
    assert_eq!(rec.state.jobs.len(), 2);
    assert!(matches!(rec.state.jobs[0].state, SnapJobState::Done { .. }));
    assert_eq!(
        rec.state.jobs[1].state,
        SnapJobState::Queued { was_leased: true },
        "tail lease applied over the snapshot"
    );
    assert_eq!(rec.state.stored, vec![0xfeed]);
    std::fs::remove_file(&path).ok();
}

/// Version skew — a journal written by a different format revision — is
/// refused outright even when every record in it is internally valid.
#[test]
fn version_skew_is_unrecoverable_even_with_valid_records() {
    let path = journal_path("skew");
    {
        let mut j = Journal::create(&path).unwrap();
        for r in sample_tail() {
            j.append(&r).unwrap();
        }
        j.sync().unwrap();
    }
    let mut bytes = std::fs::read(&path).unwrap();
    let skew = (JOURNAL_VERSION + 1).to_le_bytes();
    bytes[8] = skew[0];
    bytes[9] = skew[1];
    std::fs::write(&path, &bytes).unwrap();
    match Journal::open_recover(&path) {
        Err(JournalError::Unrecoverable { reason, .. }) => {
            assert!(reason.contains("version"), "{reason}")
        }
        other => panic!("version skew must be unrecoverable: {other:?}"),
    }
    // Sanity: the magic itself still matched (it is our magic).
    assert_eq!(&std::fs::read(&path).unwrap()[..8], JOURNAL_MAGIC);
    std::fs::remove_file(&path).ok();
}

/// The headline recovery property, in-process: stop a journaling
/// coordinator after a sweep, restart a fresh one over the same journal
/// with brand-new (empty) workers, and (a) every acknowledged result is
/// still served byte-identically, (b) re-submitting the sweep dedups
/// against the recovered jobs instead of re-simulating, (c) the
/// rebalancer re-fans every recovered key onto the new workers from the
/// journaled payloads, without any client read forcing a repair.
#[test]
fn recovered_coordinator_serves_acked_results_without_resimulating() {
    let path = journal_path("e2e");
    let sweep = ["bfs", "spmv", "lu"];

    let opts = CoordinatorOptions {
        addr: "127.0.0.1:0".to_string(),
        journal: Some(path.clone()),
        recover: true,
        replicas: 2,
        rebalance_ms: 100,
        heartbeat_ms: 200,
        heartbeat_timeout_ms: 2_000,
        ..CoordinatorOptions::default()
    };

    // Epoch one: run the sweep and stop cleanly.
    let (addr, coord) = start_coordinator(opts.clone());
    let workers: Vec<_> = ["a0", "a1"].iter().map(|n| spawn_worker(addr, n)).collect();
    let mut c = client(addr);
    await_workers(&mut c, 2);
    let ids: Vec<u64> = sweep
        .iter()
        .map(|w| c.submit(w, true, false).expect("submit"))
        .collect();
    let before: Vec<LaunchStats> = ids.iter().map(|&id| wait_stats(&mut c, id)).collect();
    assert_eq!(cache_counter(&mut c, "sims"), sweep.len() as u64);
    c.shutdown().expect("shutdown");
    coord.join().expect("coordinator thread");
    for w in workers {
        w.join().expect("worker thread").expect("worker ran");
    }

    // Epoch two: same journal, brand-new empty workers.
    let (addr2, _coord2) = start_coordinator(opts);
    let workers2: Vec<_> = ["b0", "b1"]
        .iter()
        .map(|n| spawn_worker(addr2, n))
        .collect();
    let mut c2 = client(addr2);
    await_workers(&mut c2, 2);

    // (a) Zero lost acknowledged jobs: the old ids answer with the exact
    // stats the pre-restart coordinator acknowledged.
    for (&id, stats) in ids.iter().zip(&before) {
        assert_eq!(&wait_stats(&mut c2, id), stats, "job {id} after recovery");
    }

    // (b) The sweep dedups against recovered terminal jobs: same ids
    // back, and the sims counter carries over without growing.
    for (w, &id) in sweep.iter().zip(&ids) {
        assert_eq!(c2.submit(w, true, false).expect("resubmit"), id);
    }
    assert_eq!(
        cache_counter(&mut c2, "sims"),
        sweep.len() as u64,
        "nothing re-simulated for already-done keys"
    );
    assert_eq!(cache_counter(&mut c2, "dedup_hits"), sweep.len() as u64);

    // (c) Proactive convergence: the new workers joined empty, so only
    // the rebalancer (seeded from journaled payloads) can restore R=2 —
    // no result read above forced a repair, because results were served
    // from the recovered job table.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = c2.status().expect("status");
        let replicas = status.get("replicas").expect("replicas object");
        let keys = replicas.get("keys").and_then(Json::as_u64).unwrap_or(0);
        let full = replicas.get("full").and_then(Json::as_u64).unwrap_or(0);
        if keys == sweep.len() as u64 && full == keys {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replicas never converged: {status}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        cache_counter(&mut c2, "rebalances") > 0,
        "convergence must be the rebalancer's work"
    );

    c2.shutdown().expect("shutdown");
    for w in workers2 {
        w.join().expect("worker thread").expect("worker ran");
    }
    std::fs::remove_file(&path).ok();
}

/// A streaming session rides a coordinator restart: the recovered
/// coordinator still knows the session id (it was journaled), so the
/// client re-attaches and keeps submitting instead of surfacing a
/// transport error.
#[test]
fn session_reattaches_across_coordinator_restart() {
    let path = journal_path("session");
    let opts = CoordinatorOptions {
        addr: "127.0.0.1:0".to_string(),
        journal: Some(path.clone()),
        recover: true,
        ..CoordinatorOptions::default()
    };

    let (addr, coord) = start_coordinator(opts.clone());
    let worker = spawn_worker(addr, "w0");
    let mut session = SessionClient::open(client_opts(addr), None).expect("open session");
    let sid = session.id().to_string();
    let first = session.submit("bfs", true, false).expect("submit");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        assert!(Instant::now() < deadline, "no terminal event");
        let Some(event) = session
            .next_event(Duration::from_secs(5))
            .expect("event stream")
        else {
            continue;
        };
        if event.get("event").and_then(Json::as_str) == Some("done")
            && event.get("job").and_then(Json::as_u64) == Some(first.id)
        {
            break;
        }
    }
    let mut c = client(addr);
    c.shutdown().expect("shutdown");
    coord.join().expect("coordinator thread");
    worker.join().expect("worker thread").expect("worker ran");

    // Restart on the *same* address so the session client's redial loop
    // finds the recovered coordinator.
    let (addr2, _coord2) = start_coordinator(CoordinatorOptions {
        addr: addr.to_string(),
        ..opts
    });
    assert_eq!(addr2, addr, "rebind reuses the address");
    let worker2 = spawn_worker(addr2, "w1");

    // The quiet interval while the coordinator was down surfaces as
    // `Ok(None)` ticks, never a transport error.
    let quiet = session.next_event(Duration::from_millis(50));
    assert!(quiet.is_ok(), "restart must stay quiet: {quiet:?}");

    let second = session
        .submit("spmv", true, false)
        .expect("submit rides restart");
    assert_eq!(session.id(), sid, "same session across the restart");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        assert!(Instant::now() < deadline, "no terminal event after restart");
        let Some(event) = session
            .next_event(Duration::from_secs(5))
            .expect("event stream after restart")
        else {
            continue;
        };
        if event.get("event").and_then(Json::as_str) == Some("done")
            && event.get("job").and_then(Json::as_u64) == Some(second.id)
        {
            break;
        }
    }

    let mut c2 = client(addr2);
    c2.shutdown().expect("shutdown");
    worker2.join().expect("worker thread").expect("worker ran");
    std::fs::remove_file(&path).ok();
}
