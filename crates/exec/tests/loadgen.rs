//! Integration tests for `gcl loadgen` against a live fleet: a healthy
//! run produces a latency time series and finishes jobs; an overloaded
//! coordinator sheds structurally instead of collapsing.

use gcl_exec::{
    run_loadgen, run_worker, ClientOptions, Coordinator, CoordinatorOptions, FleetInject,
    LoadgenOptions, ServeClient, WorkerOptions, WorkerReport,
};
use gcl_stats::Json;
use std::path::PathBuf;

fn start_coordinator(
    opts: CoordinatorOptions,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let coordinator = Coordinator::bind(CoordinatorOptions {
        addr: "127.0.0.1:0".to_string(),
        print_outcomes: false,
        ..opts
    })
    .expect("bind coordinator");
    let addr = coordinator.addr().expect("read bound address");
    let handle = std::thread::spawn(move || coordinator.run().expect("coordinator loop"));
    (addr, handle)
}

fn spawn_worker(
    addr: std::net::SocketAddr,
    name: &str,
) -> std::thread::JoinHandle<Result<WorkerReport, String>> {
    let opts = WorkerOptions {
        coord: addr.to_string(),
        name: name.to_string(),
        slots: 2,
        cache: None,
        inject: FleetInject::none(),
        ..WorkerOptions::default()
    };
    std::thread::spawn(move || run_worker(opts))
}

fn series_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gcl-loadgen-{tag}-{}.json", std::process::id()))
}

#[test]
fn loadgen_produces_time_series_against_live_fleet() {
    let (addr, _coord) = start_coordinator(CoordinatorOptions::default());
    let workers: Vec<_> = ["w0", "w1"].iter().map(|n| spawn_worker(addr, n)).collect();
    let out = series_path("fleet");

    let report = run_loadgen(&LoadgenOptions {
        addr: addr.to_string(),
        submitters: 8,
        duration_ms: 3_000,
        think_ms: 5,
        distinct: 2,
        sample_ms: 250,
        workloads: vec!["bfs".to_string(), "spmv".to_string()],
        out: out.clone(),
        ..LoadgenOptions::default()
    })
    .expect("loadgen run");

    assert!(report.submits > 0);
    assert!(report.accepted > 0, "fleet accepted no submits: {report:?}");
    assert!(report.finished > 0, "no job reached terminal: {report:?}");
    assert_eq!(report.errors, 0, "healthy fleet, no transport errors");
    assert!(report.p99_us > 0, "p99 recorded: {report:?}");
    assert!(report.p50_us <= report.p99_us);
    assert!(report.samples > 0, "time series sampled: {report:?}");

    // The emitted series is a self-describing JSON document with one row
    // per sampling period and run totals.
    let text = std::fs::read_to_string(&out).expect("series file");
    let doc = Json::parse(&text).expect("series parses");
    assert_eq!(doc.get("version").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("submitters").and_then(Json::as_u64), Some(8));
    let samples = doc.get("samples").and_then(Json::as_arr).expect("samples");
    assert_eq!(samples.len(), report.samples);
    for row in samples {
        assert!(row.get("t_ms").and_then(Json::as_u64).is_some());
        assert!(row.get("p99_us").and_then(Json::as_u64).is_some());
        assert!(row.get("queue_depth").is_some());
        assert!(row.get("hit_rate").is_some());
    }
    let totals = doc.get("totals").expect("totals");
    assert_eq!(
        totals.get("accepted").and_then(Json::as_u64),
        Some(report.accepted)
    );
    std::fs::remove_file(&out).ok();

    let mut c = ServeClient::connect(ClientOptions {
        addr: addr.to_string(),
        max_frame: 1024 * 1024,
        ..ClientOptions::default()
    })
    .expect("admin client");
    c.shutdown().expect("shutdown");
    for w in workers {
        w.join().expect("worker thread").expect("worker ran");
    }
}

#[test]
fn overloaded_coordinator_sheds_instead_of_collapsing() {
    // A one-slot queue and no workers at all: nearly every submit must be
    // answered with a structured shed, and the generator must register
    // them as sheds — not errors, not hangs.
    let (addr, _coord) = start_coordinator(CoordinatorOptions {
        queue_cap: 1,
        ..CoordinatorOptions::default()
    });
    let out = series_path("overload");

    let report = run_loadgen(&LoadgenOptions {
        addr: addr.to_string(),
        submitters: 12,
        duration_ms: 1_500,
        think_ms: 1,
        distinct: 8,
        sample_ms: 250,
        workloads: vec!["bfs".to_string(), "spmv".to_string(), "lu".to_string()],
        out: out.clone(),
        ..LoadgenOptions::default()
    })
    .expect("loadgen run");

    assert!(report.submits > 0);
    assert!(
        report.sheds >= 1,
        "overload must shed structurally: {report:?}"
    );
    assert_eq!(report.errors, 0, "sheds are not transport errors");
    std::fs::remove_file(&out).ok();

    let mut c = ServeClient::connect(ClientOptions {
        addr: addr.to_string(),
        max_frame: 1024 * 1024,
        ..ClientOptions::default()
    })
    .expect("admin client");
    c.shutdown().expect("shutdown");
}
