//! The pool's load-bearing promise: parallel execution never changes
//! results. Every tiny workload's event digest from a `jobs = 4` run is
//! identical to the serial run's, and a warm cache replays the whole sweep
//! with zero simulations.

use gcl_exec::{run_pool, JobEvent, JobSpec, PoolConfig, ResultCache};
use gcl_sim::GpuConfig;
use gcl_workloads::tiny_workloads;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcl-exec-pool-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One sanitized spec per tiny workload (sanitize makes each run carry an
/// event digest, the strongest equality we can ask for).
fn sanitized_specs() -> Vec<JobSpec> {
    let mut cfg = GpuConfig::small();
    cfg.sanitize = true;
    tiny_workloads()
        .iter()
        .map(|w| JobSpec::new(w.name(), true, cfg.clone()))
        .collect()
}

#[test]
fn parallel_digests_match_serial_across_all_workloads() {
    let specs = sanitized_specs();
    assert_eq!(specs.len(), 15, "the paper's Table I has 15 benchmarks");

    let serial = run_pool(
        &specs,
        &PoolConfig {
            jobs: 1,
            ..PoolConfig::default()
        },
        |_| {},
    );
    let parallel = run_pool(
        &specs,
        &PoolConfig {
            jobs: 4,
            ..PoolConfig::default()
        },
        |_| {},
    );

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.spec, p.spec, "results keep submission order");
        let sd = s.digest().expect("sanitized run must carry a digest");
        let pd = p.digest().expect("sanitized run must carry a digest");
        assert_eq!(
            sd, pd,
            "digest of `{}` differs between -j1 and -j4",
            s.spec.workload
        );
        // Not just the digest: the full statistics are byte-identical.
        assert_eq!(
            s.outcome.as_ref().unwrap().stats,
            p.outcome.as_ref().unwrap().stats,
            "stats of `{}` differ between -j1 and -j4",
            s.spec.workload
        );
    }
}

#[test]
fn warm_cache_replays_the_sweep_with_zero_simulations() {
    let specs = sanitized_specs();
    let cache = ResultCache::new(scratch("warm"));

    let cold = run_pool(
        &specs,
        &PoolConfig {
            jobs: 4,
            cache: Some(cache.clone()),
            ..PoolConfig::default()
        },
        |_| {},
    );
    for r in &cold {
        assert!(
            !r.outcome.as_ref().unwrap().cached,
            "`{}` must simulate on a cold cache",
            r.spec.workload
        );
    }

    // Warm rerun: every job is a hit; `attempts == 0` proves no simulation
    // ran (a fresh simulation always costs at least one attempt).
    let mut started = 0usize;
    let warm = run_pool(
        &specs,
        &PoolConfig {
            jobs: 4,
            cache: Some(cache),
            ..PoolConfig::default()
        },
        |event| {
            if matches!(event, JobEvent::Started { .. }) {
                started += 1;
            }
        },
    );
    assert_eq!(started, specs.len(), "every job still reports lifecycle");
    for (c, w) in cold.iter().zip(&warm) {
        let out = w.outcome.as_ref().unwrap();
        assert!(out.cached, "`{}` must hit the warm cache", w.spec.workload);
        assert_eq!(w.attempts, 0, "`{}` must not simulate", w.spec.workload);
        assert_eq!(
            out.stats,
            c.outcome.as_ref().unwrap().stats,
            "cached stats of `{}` must round-trip exactly",
            w.spec.workload
        );
        assert_eq!(w.digest(), c.digest());
    }
}
