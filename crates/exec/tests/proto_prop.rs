//! Property-style tests for `proto::FrameReader`: the framing layer must
//! deliver every frame exactly once — never torn, never duplicated — no
//! matter how the transport fragments the byte stream, and an oversized
//! frame must be rejected without inventing or dropping any frame that
//! came before it.

use gcl_exec::{FrameError, FrameReader};
use std::io::{ErrorKind, Read};

/// A scripted reader: each `read` call pops one step — either a byte
/// chunk or a `WouldBlock` (socket read timeout). Exhausted scripts
/// return EOF.
struct Script {
    steps: Vec<Option<Vec<u8>>>,
    next: usize,
}

impl Script {
    fn new(steps: Vec<Option<Vec<u8>>>) -> Script {
        Script { steps, next: 0 }
    }
}

impl Read for Script {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let Some(step) = self.steps.get(self.next) else {
            return Ok(0);
        };
        self.next += 1;
        match step {
            None => Err(std::io::Error::from(ErrorKind::WouldBlock)),
            Some(bytes) => {
                assert!(buf.len() >= bytes.len(), "script chunk exceeds read buf");
                buf[..bytes.len()].copy_from_slice(bytes);
                Ok(bytes.len())
            }
        }
    }
}

/// Drain a reader to EOF, treating timeouts as "try again" exactly as the
/// serve/worker loops do. Returns the delivered frames.
fn drain(reader: &mut FrameReader<Script>) -> Vec<String> {
    let mut frames = Vec::new();
    loop {
        match reader.next_frame() {
            Ok(frame) => frames.push(frame),
            Err(FrameError::Timeout) => continue,
            Err(FrameError::Closed) => return frames,
            Err(e) => panic!("unexpected frame error: {e}"),
        }
    }
}

/// Frames of assorted lengths (including some at tricky sizes: empty-ish,
/// one byte, exactly-chunk-adjacent) with distinct contents.
fn corpus() -> Vec<String> {
    let mut frames = vec![
        "a".to_string(),
        "{\"op\":\"ping\",\"seq\":1}".to_string(),
        "x".repeat(63),
        "y".repeat(64),
        "z".repeat(65),
        "{\"op\":\"done\",\"job\":42,\"stats\":\"00ff00ff\"}".to_string(),
    ];
    for i in 0..8 {
        frames.push(format!("frame-{i}-{}", "p".repeat(i * 7 + 1)));
    }
    frames
}

fn wire(frames: &[String]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for f in frames {
        bytes.extend_from_slice(f.as_bytes());
        bytes.push(b'\n');
    }
    bytes
}

#[test]
fn frames_survive_a_split_at_every_byte_boundary() {
    let frames = corpus();
    let bytes = wire(&frames);
    for split in 0..=bytes.len() {
        // One split point, with a read timeout injected at the seam —
        // exactly what a socket delivering a frame in two pieces looks
        // like.
        let steps = vec![
            Some(bytes[..split].to_vec()),
            None,
            Some(bytes[split..].to_vec()),
        ];
        let steps = steps
            .into_iter()
            .filter(|s| s != &Some(Vec::new()))
            .collect();
        let mut reader = FrameReader::new(Script::new(steps), 4096);
        assert_eq!(
            drain(&mut reader),
            frames,
            "frames torn or duplicated when split at byte {split}"
        );
    }
}

#[test]
fn frames_survive_byte_at_a_time_delivery_with_timeouts() {
    let frames = corpus();
    let bytes = wire(&frames);
    // Worst-case fragmentation: every byte its own read, a timeout
    // between each pair.
    let mut steps = Vec::with_capacity(bytes.len() * 2);
    for (i, b) in bytes.iter().enumerate() {
        steps.push(Some(vec![*b]));
        if i % 3 == 0 {
            steps.push(None);
        }
    }
    let mut reader = FrameReader::new(Script::new(steps), 4096);
    assert_eq!(drain(&mut reader), frames);
}

#[test]
fn frames_survive_every_chunk_size() {
    let frames = corpus();
    let bytes = wire(&frames);
    for chunk in 1..=64 {
        let steps = bytes.chunks(chunk).map(|c| Some(c.to_vec())).collect();
        let mut reader = FrameReader::new(Script::new(steps), 4096);
        assert_eq!(drain(&mut reader), frames, "chunk size {chunk}");
    }
}

#[test]
fn oversized_frame_rejects_without_tearing_prior_frames() {
    let cap = 64usize;
    // Every prefix length of good frames, then one oversized frame: the
    // good frames must arrive exactly once, then TooLarge — and the
    // reader must keep saying TooLarge instead of resynthesizing frames
    // from the poisoned buffer.
    let good: Vec<String> = (0..6).map(|i| format!("ok-{i}")).collect();
    for keep in 0..=good.len() {
        let mut bytes = wire(&good[..keep]);
        bytes.extend_from_slice("B".repeat(cap * 3).as_bytes());
        bytes.push(b'\n');
        for chunk in [1usize, 7, 64, 4096] {
            let steps = bytes.chunks(chunk).map(|c| Some(c.to_vec())).collect();
            let mut reader = FrameReader::new(Script::new(steps), cap);
            let mut seen = Vec::new();
            let rejected = loop {
                match reader.next_frame() {
                    Ok(frame) => seen.push(frame),
                    Err(FrameError::Timeout) => continue,
                    Err(FrameError::TooLarge { limit }) => break limit,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            };
            assert_eq!(rejected, cap);
            assert_eq!(seen, good[..keep], "prefix {keep} chunk {chunk}");
            // The stream is unrecoverable by contract; it must stay
            // rejected, not cough up torn bytes as frames.
            for _ in 0..3 {
                match reader.next_frame() {
                    Err(FrameError::TooLarge { .. }) | Err(FrameError::Closed) => {}
                    other => panic!("poisoned reader produced {other:?}"),
                }
            }
        }
    }
}

#[test]
fn interleaved_oversized_streams_never_duplicate_across_readers() {
    // Model a server handling rejects per connection: each connection is
    // a fresh reader; frames delivered on one must never leak into
    // another even when the previous reader died mid-oversized-frame.
    let cap = 32usize;
    let mut all_delivered = Vec::new();
    for conn in 0..4 {
        let frames: Vec<String> = (0..3).map(|i| format!("c{conn}-f{i}")).collect();
        let mut bytes = wire(&frames);
        bytes.extend_from_slice("X".repeat(cap * 2).as_bytes()); // no newline: torn + oversized
        let steps = bytes.chunks(5).map(|c| Some(c.to_vec())).collect();
        let mut reader = FrameReader::new(Script::new(steps), cap);
        loop {
            match reader.next_frame() {
                Ok(f) => all_delivered.push(f),
                Err(FrameError::Timeout) => continue,
                Err(_) => break,
            }
        }
    }
    let mut unique = all_delivered.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), all_delivered.len(), "duplicated frame");
    assert_eq!(all_delivered.len(), 12, "lost a frame: {all_delivered:?}");
}
