//! The result cache's rejection matrix: every way an entry can be wrong —
//! absent, truncated, corrupt, version-skewed, filed under the wrong key,
//! or a genuine 64-bit key collision — must read as a silent *miss* that
//! [`run_job`] answers by recomputing and rewriting the entry. A broken
//! cache may cost time, never correctness.

use gcl_exec::{run_job, CacheMiss, JobSpec, ResultCache, CACHE_MAGIC};
use gcl_sim::{fnv_fold_bytes, GpuConfig, FNV_OFFSET};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test (std-only; no tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gcl-exec-cache-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn spec(name: &str) -> JobSpec {
    JobSpec::new(name, true, GpuConfig::small())
}

/// Fill `cache` with one entry by running `s`, returning the entry path.
fn populate(cache: &ResultCache, s: &JobSpec) -> PathBuf {
    let r = run_job(s, Some(cache));
    let out = r.outcome.expect("tiny workload completes");
    assert!(!out.cached, "first run must simulate");
    let path = cache.entry_path(s.fingerprint().unwrap().key());
    assert!(path.is_file(), "store must create {}", path.display());
    path
}

/// Rewrite an entry's trailing checksum so deliberate header edits are
/// *not* masked by the checksum check (we want to reach the later
/// rejection stages).
fn refresh_checksum(bytes: &mut [u8]) {
    let body_len = bytes.len() - 8;
    let sum = fnv_fold_bytes(FNV_OFFSET, &bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn absent_entry_is_a_miss_then_recomputed_and_cached() {
    let cache = ResultCache::new(scratch("absent"));
    let s = spec("2mm");
    let fp = s.fingerprint().unwrap();
    assert_eq!(cache.load_checked(&fp).unwrap_err(), CacheMiss::Absent);

    let r = run_job(&s, Some(&cache));
    assert!(!r.outcome.as_ref().unwrap().cached);
    // The miss was rewritten: a second run is a pure cache hit with the
    // exact same statistics.
    let r2 = run_job(&s, Some(&cache));
    let out2 = r2.outcome.unwrap();
    assert!(out2.cached);
    assert_eq!(out2.stats, r.outcome.unwrap().stats);
    assert_eq!(r2.attempts, 0, "cache hits consume no attempts");
}

#[test]
fn truncated_entry_is_a_miss_and_rewritten() {
    let cache = ResultCache::new(scratch("trunc"));
    let s = spec("bfs");
    let fp = s.fingerprint().unwrap();
    let path = populate(&cache, &s);

    let full = std::fs::read(&path).unwrap();
    // Every strict prefix must be rejected as truncation, never decoded:
    // probe a few cut points including an empty file and a bare header.
    for cut in [0, 4, 8, 20, 28, full.len() / 2, full.len() - 1] {
        std::fs::write(&path, &full[..cut]).unwrap();
        assert_eq!(
            cache.load_checked(&fp).unwrap_err(),
            CacheMiss::Truncated,
            "prefix of {cut} bytes"
        );
    }
    // The job layer shrugs: recompute, rewrite, and the entry is whole again.
    let r = run_job(&s, Some(&cache));
    assert!(!r.outcome.unwrap().cached);
    assert!(cache.load_checked(&fp).is_ok());
}

#[test]
fn corrupt_checksum_and_magic_are_distinct_misses() {
    let cache = ResultCache::new(scratch("corrupt"));
    let s = spec("spmv");
    let fp = s.fingerprint().unwrap();
    let path = populate(&cache, &s);
    let clean = std::fs::read(&path).unwrap();

    // Flip one payload byte: checksum mismatch.
    let mut evil = clean.clone();
    evil[CACHE_MAGIC.len() + 25] ^= 0x40;
    std::fs::write(&path, &evil).unwrap();
    assert_eq!(
        cache.load_checked(&fp).unwrap_err(),
        CacheMiss::ChecksumMismatch
    );

    // Stomp the magic: rejected before anything else is believed.
    let mut evil = clean;
    evil[..8].copy_from_slice(b"GCLSNAP1");
    std::fs::write(&path, &evil).unwrap();
    assert_eq!(cache.load_checked(&fp).unwrap_err(), CacheMiss::BadMagic);

    assert!(run_job(&s, Some(&cache)).outcome.unwrap().stats.cycles > 0);
    assert!(cache.load_checked(&fp).is_ok(), "rewritten after the miss");
}

#[test]
fn version_skew_orphans_the_entry() {
    let cache = ResultCache::new(scratch("skew"));
    let s = spec("lu");
    let fp = s.fingerprint().unwrap();
    let path = populate(&cache, &s);

    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    refresh_checksum(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(
        cache.load_checked(&fp).unwrap_err(),
        CacheMiss::VersionSkew { found: 99 }
    );
    let r = run_job(&s, Some(&cache));
    assert!(
        !r.outcome.unwrap().cached,
        "skewed entry must not be served"
    );
    assert!(cache.load_checked(&fp).is_ok());
}

#[test]
fn wrong_key_and_fingerprint_collision_are_detected() {
    let cache = ResultCache::new(scratch("collide"));
    let a = spec("bfs");
    let b = spec("sssp");
    let fp_b = b.fingerprint().unwrap();
    let path_a = populate(&cache, &a);

    // File a's (valid) entry under b's key: the stored key betrays it.
    let path_b = cache.entry_path(fp_b.key());
    std::fs::copy(&path_a, &path_b).unwrap();
    assert_eq!(
        cache.load_checked(&fp_b).unwrap_err(),
        CacheMiss::KeyMismatch
    );

    // Now forge the stored key to b's — a perfect 64-bit key collision.
    // The full fingerprint inside the payload still says "bfs", so the
    // entry is rejected instead of serving bfs's results as sssp's.
    let mut bytes = std::fs::read(&path_a).unwrap();
    bytes[12..20].copy_from_slice(&fp_b.key().to_le_bytes());
    refresh_checksum(&mut bytes);
    std::fs::write(&path_b, &bytes).unwrap();
    assert_eq!(
        cache.load_checked(&fp_b).unwrap_err(),
        CacheMiss::FingerprintCollision
    );

    // And the collision resolves by recomputing sssp, never reusing bfs.
    let r = run_job(&b, Some(&cache));
    let out = r.outcome.unwrap();
    assert!(!out.cached);
    let hit = cache
        .load_checked(&fp_b)
        .expect("rewritten after collision");
    assert_eq!(hit.stats, out.stats);
}

#[test]
fn config_changes_never_share_entries() {
    // Not a corruption case but the matrix's foundation: the key derives
    // from the full config fingerprint, so flag variants (sanitize,
    // max_cycles, memcheck) are distinct cache identities.
    let cache = ResultCache::new(scratch("cfgkey"));
    let base = spec("gaus");
    populate(&cache, &base);

    let mut cfg = GpuConfig::small();
    cfg.sanitize = true;
    let sanitized = JobSpec::new("gaus", true, cfg);
    let fp = sanitized.fingerprint().unwrap();
    assert_eq!(
        cache.load_checked(&fp).unwrap_err(),
        CacheMiss::Absent,
        "sanitize variant must not alias the plain entry"
    );
    let r = run_job(&sanitized, Some(&cache));
    let out = r.outcome.unwrap();
    assert!(!out.cached);
    assert!(out.stats.digest.is_some(), "sanitized run carries a digest");
    // Both entries now coexist.
    assert!(cache.load_checked(&base.fingerprint().unwrap()).is_ok());
    assert!(cache.load_checked(&fp).is_ok());
}

#[test]
fn failures_are_never_cached() {
    let cache = ResultCache::new(scratch("fail"));
    let mut cfg = GpuConfig::small();
    cfg.max_cycles = 10; // starve: times out
    let s = JobSpec::new("bfs", true, cfg);
    let r = run_job(&s, Some(&cache));
    assert!(r.outcome.is_err());
    assert_eq!(
        cache.load_checked(&s.fingerprint().unwrap()).unwrap_err(),
        CacheMiss::Absent,
        "a failed run must leave no entry behind"
    );
}
