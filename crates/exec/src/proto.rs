//! Bounded, deadline-aware NDJSON framing shared by the serve daemon, the
//! fleet coordinator/worker sockets, and the client.
//!
//! Every socket in the toolkit speaks the same wire form — one compact
//! JSON object per line — but a raw `BufRead::lines()` loop has two
//! robustness holes this module closes:
//!
//! * **Unbounded frames.** A malicious or broken peer can stream gigabytes
//!   without a newline; `lines()` buffers it all. [`FrameReader`] caps the
//!   bytes a single frame may occupy ([`MAX_FRAME`] by default) and
//!   reports [`FrameError::TooLarge`] instead of growing without limit.
//! * **Indefinite blocking.** With no read deadline a stalled peer wedges
//!   the thread (and, during drain, the whole process) forever. Callers
//!   set a read timeout on the socket; [`FrameReader`] surfaces the
//!   resulting `WouldBlock`/`TimedOut` as [`FrameError::Timeout`] so the
//!   loop can check a drain flag or an idle deadline and keep going —
//!   partial frames survive across timeouts.
//!
//! Writes go through [`write_frame`]; with a write timeout set on the
//! socket, a peer that stops reading (slow-loris) turns into a
//! [`FrameError::Timeout`] instead of a hung thread. A timed-out write may
//! have landed partially, so the only safe continuation is dropping the
//! connection — callers do.

use gcl_stats::Json;
use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// Default cap on one frame's size in bytes, newline included. Far above
/// any request or result the protocol produces, far below a memory hazard.
pub const MAX_FRAME: usize = 64 * 1024;

/// Why a frame could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection (EOF at a frame boundary, or with a
    /// partial frame outstanding — either way the stream is over).
    Closed,
    /// A read or write deadline elapsed. Reads may continue (partial frame
    /// state is kept); a timed-out write leaves the stream unusable.
    Timeout,
    /// The incoming frame exceeded the size cap before its newline.
    TooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// Any other socket error.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Timeout => write!(f, "socket deadline elapsed"),
            FrameError::TooLarge { limit } => {
                write!(f, "frame too large (cap {limit} bytes)")
            }
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn io_error(e: std::io::Error) -> FrameError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => FrameError::Timeout,
        _ => FrameError::Io(e.to_string()),
    }
}

/// A newline-delimited frame reader with a per-frame size cap.
///
/// Keeps partially-read frame bytes across [`FrameError::Timeout`] returns,
/// so a read deadline on the underlying socket turns into a poll tick
/// rather than data loss.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    carry: Vec<u8>,
    max: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wrap `inner`, capping frames at `max` bytes.
    pub fn new(inner: R, max: usize) -> FrameReader<R> {
        FrameReader {
            inner,
            carry: Vec::new(),
            max: max.max(2),
        }
    }

    /// Read the next non-empty line, trimmed, without its newline.
    ///
    /// # Errors
    ///
    /// [`FrameError::Timeout`] when the socket's read deadline elapses
    /// (call again to continue), [`FrameError::Closed`] on EOF,
    /// [`FrameError::TooLarge`] when a frame outgrows the cap (the stream
    /// cannot be resynchronized afterwards), or [`FrameError::Io`].
    pub fn next_frame(&mut self) -> Result<String, FrameError> {
        loop {
            if let Some(pos) = self.carry.iter().position(|&b| b == b'\n') {
                if pos >= self.max {
                    // An oversized frame whose newline arrived in the same
                    // read burst as its body: the carry-length guard below
                    // never fired, but the cap is a cap. Leave the carry
                    // untouched — the stream is poisoned either way.
                    return Err(FrameError::TooLarge { limit: self.max });
                }
                let line: Vec<u8> = self.carry.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line[..pos]).trim().to_string();
                if text.is_empty() {
                    continue;
                }
                return Ok(text);
            }
            if self.carry.len() >= self.max {
                return Err(FrameError::TooLarge { limit: self.max });
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => return Err(FrameError::Closed),
                Ok(n) => self.carry.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_error(e)),
            }
        }
    }
}

/// Write one compact JSON frame and its trailing newline.
///
/// # Errors
///
/// [`FrameError::Timeout`] when the socket's write deadline elapses (the
/// frame may be partially written — drop the connection), or the mapped
/// socket error.
pub fn write_frame(writer: &mut impl Write, frame: &Json) -> Result<(), FrameError> {
    let mut line = frame.render_compact();
    line.push('\n');
    writer.write_all(line.as_bytes()).map_err(io_error)
}

/// Wire form of a 64-bit cache key: `0x`-prefixed, zero-padded lower hex.
///
/// Cache keys ride in `store`/`fetch` frames as strings because JSON
/// numbers cannot carry a full u64 faithfully through every decoder.
pub fn encode_key(key: u64) -> String {
    format!("0x{key:016x}")
}

/// Decode [`encode_key`] output.
///
/// # Errors
///
/// A human-readable message when the prefix or hex digits are malformed.
pub fn decode_key(text: &str) -> Result<u64, String> {
    let digits = text
        .strip_prefix("0x")
        .ok_or_else(|| format!("cache key `{text}` missing 0x prefix"))?;
    u64::from_str_radix(digits, 16).map_err(|_| format!("bad cache key `{text}`"))
}

/// A `store` frame: the coordinator pushing one checksummed stats payload
/// into a worker's replica store. `sum` is the `0x…` FNV checksum string
/// produced alongside the hex payload, same as in `done` frames.
pub fn store_frame(key: u64, stats_hex: &str, sum: &str, wall_ms: f64) -> Json {
    Json::obj(vec![
        ("op", Json::Str("store".into())),
        ("key", Json::Str(encode_key(key))),
        ("stats", Json::Str(stats_hex.into())),
        ("sum", Json::Str(sum.into())),
        ("wall_ms", Json::Float(wall_ms)),
    ])
}

/// A `fetch` frame: the coordinator probing a worker's replica store for
/// `key` on behalf of job `job`.
pub fn fetch_frame(job: u64, key: u64) -> Json {
    Json::obj(vec![
        ("op", Json::Str("fetch".into())),
        ("job", Json::UInt(job)),
        ("key", Json::Str(encode_key(key))),
    ])
}

/// A worker's reply to [`fetch_frame`]: a replica hit carrying the stored
/// payload, or a miss.
pub fn fetched_frame(job: u64, key: u64, hit: Option<(&str, &str, f64)>) -> Json {
    let mut fields = vec![
        ("op", Json::Str("fetched".into())),
        ("job", Json::UInt(job)),
        ("key", Json::Str(encode_key(key))),
        ("hit", Json::Bool(hit.is_some())),
    ];
    if let Some((stats_hex, sum, wall_ms)) = hit {
        fields.push(("stats", Json::Str(stats_hex.into())));
        fields.push(("sum", Json::Str(sum.into())));
        fields.push(("wall_ms", Json::Float(wall_ms)));
    }
    Json::obj(fields)
}

/// An `inventory` frame: a worker re-announcing, right after a (re-)join
/// ack, the job ids it is still running and the cache keys its
/// ReplicaStore holds. A recovering coordinator reconciles its journal
/// state against this ground truth — leases resume instead of re-running,
/// and the replica directory is rebuilt from what workers actually hold.
pub fn inventory_frame(running: &[u64], keys: &[u64]) -> Json {
    Json::obj(vec![
        ("op", Json::Str("inventory".into())),
        (
            "running",
            Json::Arr(running.iter().map(|&id| Json::UInt(id)).collect()),
        ),
        (
            "keys",
            Json::Arr(keys.iter().map(|&k| Json::Str(encode_key(k))).collect()),
        ),
    ])
}

/// Lower-hex encoding of arbitrary bytes, for carrying wire-encoded
/// payloads (e.g. `LaunchStats`) inside a JSON frame.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decode [`hex_encode`] output.
///
/// # Errors
///
/// A human-readable message on odd length or non-hex characters.
pub fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err(format!("odd hex length {}", text.len()));
    }
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let s = std::str::from_utf8(pair).map_err(|_| "non-ascii hex".to_string())?;
        out.push(u8::from_str_radix(s, 16).map_err(|_| format!("bad hex byte `{s}`"))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_split_on_newlines_and_skip_blanks() {
        let data = b"{\"a\":1}\n\n  \n{\"b\":2}\n";
        let mut r = FrameReader::new(Cursor::new(&data[..]), MAX_FRAME);
        assert_eq!(r.next_frame().unwrap(), "{\"a\":1}");
        assert_eq!(r.next_frame().unwrap(), "{\"b\":2}");
        assert_eq!(r.next_frame().unwrap_err(), FrameError::Closed);
    }

    #[test]
    fn oversized_frames_are_rejected_not_buffered() {
        let mut data = vec![b'x'; 4 * 1024];
        data.push(b'\n');
        let mut r = FrameReader::new(Cursor::new(data), 1024);
        assert!(matches!(
            r.next_frame().unwrap_err(),
            FrameError::TooLarge { limit: 1024 }
        ));
    }

    #[test]
    fn a_frame_at_the_cap_still_parses() {
        let body = "y".repeat(1023);
        let data = format!("{body}\n");
        let mut r = FrameReader::new(Cursor::new(data.into_bytes()), 1024);
        assert_eq!(r.next_frame().unwrap(), body);
    }

    /// A reader that yields `WouldBlock` between chunks, like a socket with
    /// a read timeout.
    struct Chunky {
        chunks: Vec<Vec<u8>>,
        blocked: bool,
    }

    impl Read for Chunky {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.blocked {
                self.blocked = true;
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
            self.blocked = false;
            match self.chunks.first() {
                None => Ok(0),
                Some(c) => {
                    let n = c.len().min(buf.len());
                    buf[..n].copy_from_slice(&c[..n]);
                    let rest = c[n..].to_vec();
                    if rest.is_empty() {
                        self.chunks.remove(0);
                    } else {
                        self.chunks[0] = rest;
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn partial_frames_survive_timeouts() {
        let mut r = FrameReader::new(
            Chunky {
                chunks: vec![b"{\"op\":".to_vec(), b"\"ping\"}\n".to_vec()],
                blocked: false,
            },
            MAX_FRAME,
        );
        let mut timeouts = 0;
        loop {
            match r.next_frame() {
                Ok(frame) => {
                    assert_eq!(frame, "{\"op\":\"ping\"}");
                    break;
                }
                Err(FrameError::Timeout) => timeouts += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(timeouts >= 1, "the timeout path never ran");
    }

    #[test]
    fn cache_keys_round_trip_and_reject_garbage() {
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            let text = encode_key(key);
            assert_eq!(text.len(), 18, "{text}");
            assert_eq!(decode_key(&text).unwrap(), key);
        }
        assert!(decode_key("12ab").is_err(), "missing prefix");
        assert!(decode_key("0xzz").is_err(), "non-hex");
        assert!(decode_key("0x").is_err(), "empty digits");
    }

    #[test]
    fn store_and_fetch_frames_reparse_faithfully() {
        let store = store_frame(42, "0abc", "0xdeadbeef", 1.5).render_compact();
        let v = Json::parse(&store).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("store"));
        assert_eq!(
            v.get("key").and_then(Json::as_str).map(decode_key),
            Some(Ok(42))
        );
        assert_eq!(v.get("sum").and_then(Json::as_str), Some("0xdeadbeef"));

        let hit = fetched_frame(7, 42, Some(("0abc", "0x9", 2.0)));
        let v = Json::parse(&hit.render_compact()).unwrap();
        assert_eq!(v.get("hit").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("stats").and_then(Json::as_str), Some("0abc"));

        let miss = fetched_frame(7, 42, None);
        let v = Json::parse(&miss.render_compact()).unwrap();
        assert_eq!(v.get("hit").and_then(Json::as_bool), Some(false));
        assert!(v.get("stats").is_none());

        let fetch = Json::parse(&fetch_frame(7, 42).render_compact()).unwrap();
        assert_eq!(fetch.get("job").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn inventory_frames_reparse_faithfully() {
        let inv = inventory_frame(&[3, 9], &[42, u64::MAX]);
        let v = Json::parse(&inv.render_compact()).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("inventory"));
        let running: Vec<u64> = match v.get("running") {
            Some(Json::Arr(items)) => items.iter().filter_map(Json::as_u64).collect(),
            other => panic!("bad running field: {other:?}"),
        };
        assert_eq!(running, vec![3, 9]);
        let keys: Vec<u64> = match v.get("keys") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(Json::as_str)
                .map(|t| decode_key(t).unwrap())
                .collect(),
            other => panic!("bad keys field: {other:?}"),
        };
        assert_eq!(keys, vec![42, u64::MAX]);

        let empty = inventory_frame(&[], &[]);
        let v = Json::parse(&empty.render_compact()).unwrap();
        assert!(matches!(v.get("running"), Some(Json::Arr(a)) if a.is_empty()));
        assert!(matches!(v.get("keys"), Some(Json::Arr(a)) if a.is_empty()));
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        let text = hex_encode(&bytes);
        assert_eq!(hex_decode(&text).unwrap(), bytes);
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "non-hex");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }
}
