//! Fixed worker pool executing [`JobSpec`]s with deterministic result
//! ordering, per-worker panic isolation, retries with seeded-jitter
//! backoff, and a single event stream so exactly one thread (the caller's)
//! owns any manifest or progress output.
//!
//! Workers claim jobs by atomic index, run them (consulting the shared
//! result cache when configured), and report [`JobEvent`]s over a channel.
//! The caller's thread drains that channel, invoking its `on_event`
//! callback serially — this is the "single writer" of the suite manifest:
//! no worker ever touches `results/run.json`.

use crate::cache::ResultCache;
use crate::job::{run_job_from, JobResult, JobSpec};
use crate::trace_store::TraceStore;
use gcl_rng::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

// The toolkit-wide retry schedule (50 ms doubling, 2 s cap, upper-half
// seeded jitter) lives in `gcl_rng::backoff`; re-exported here because the
// pool popularized it.
pub use gcl_rng::backoff::backoff_ms;

/// How a pool run executes.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (at least 1; a value of 1 reproduces serial order of
    /// execution, though results are index-ordered either way).
    pub jobs: usize,
    /// Extra attempts per job after the first failure.
    pub retries: u64,
    /// Seed for the retry-backoff jitter. Each job derives its own stream
    /// from this and its index, so two retrying workers never share a
    /// wake-up schedule.
    pub backoff_seed: u64,
    /// Consult (and fill) this result cache.
    pub cache: Option<ResultCache>,
    /// Source results by replaying captured traces from this store instead
    /// of functional execution (`gcl suite --replay`). A job whose
    /// container is absent or mismatched fails structurally; replay never
    /// silently falls back to execution.
    pub traces: Option<TraceStore>,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            jobs: 1,
            retries: 0,
            backoff_seed: 0x006c_6367, // "gcl"
            cache: None,
            traces: None,
        }
    }
}

/// Progress notifications delivered, in event order, to the caller's
/// `on_event` callback — always on the caller's thread.
#[derive(Debug)]
pub enum JobEvent {
    /// A worker picked up job `index`.
    Started {
        /// Index into the submitted spec list.
        index: usize,
    },
    /// Job `index` failed attempt `attempt` and will retry after
    /// `backoff_ms`.
    Retried {
        /// Index into the submitted spec list.
        index: usize,
        /// The attempt that just failed (1-based).
        attempt: u64,
        /// Why it failed.
        error: String,
        /// Jittered delay before the next attempt.
        backoff_ms: u64,
    },
    /// Job `index` finished (ok, cached, or exhausted its retries).
    Finished {
        /// Index into the submitted spec list.
        index: usize,
        /// The outcome (boxed: a [`JobResult`] carries full launch stats).
        result: Box<JobResult>,
    },
}

/// Run one job with the pool's retry policy, reporting retries through
/// `events`. Returns the final result (its `attempts` field counts every
/// attempt made).
fn run_with_retries(
    index: usize,
    spec: &JobSpec,
    cfg: &PoolConfig,
    events: &mpsc::Sender<JobEvent>,
) -> JobResult {
    let mut rng = Rng::new(cfg.backoff_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut attempts = 0u64;
    loop {
        let mut result = run_job_from(spec, cfg.cache.as_ref(), cfg.traces.as_ref());
        attempts += result.attempts;
        result.attempts = attempts;
        match &result.outcome {
            Ok(_) => return result,
            Err(e) => {
                if attempts > cfg.retries {
                    return result;
                }
                let backoff = backoff_ms(attempts, &mut rng);
                let _ = events.send(JobEvent::Retried {
                    index,
                    attempt: attempts,
                    error: e.to_string(),
                    backoff_ms: backoff,
                });
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
        }
    }
}

/// Execute every spec on a fixed pool of `cfg.jobs` workers.
///
/// Results come back ordered by submission index, regardless of completion
/// order, so parallel and serial runs are byte-comparable. `on_event` runs
/// serially on the calling thread for every [`JobEvent`]; use it to own
/// shared output (progress table, run manifest) without worker races.
pub fn run_pool(
    specs: &[JobSpec],
    cfg: &PoolConfig,
    mut on_event: impl FnMut(&JobEvent),
) -> Vec<JobResult> {
    assert!(cfg.jobs >= 1, "pool needs at least one worker");
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<JobEvent>();
    let mut slots: Vec<Option<JobResult>> = Vec::new();
    slots.resize_with(specs.len(), || None);
    std::thread::scope(|scope| {
        for _ in 0..cfg.jobs.min(specs.len().max(1)) {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(index) else { break };
                let _ = tx.send(JobEvent::Started { index });
                let result = run_with_retries(index, spec, cfg, &tx);
                let _ = tx.send(JobEvent::Finished {
                    index,
                    result: Box::new(result),
                });
            });
        }
        // The workers' clones keep the channel open; dropping ours lets the
        // drain loop end exactly when the last worker exits.
        drop(tx);
        for event in rx {
            on_event(&event);
            if let JobEvent::Finished { index, result } = event {
                slots[index] = Some(*result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every job reports exactly once"))
        .collect()
}

/// Generic fixed-pool parallel map with panic isolation and deterministic
/// output ordering: `out[i]` is `f(items[i])`, or `Err(panic message)` if
/// that call panicked. The bench harness uses this to fan a workload sweep
/// out over workers without the [`JobSpec`] machinery.
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(jobs >= 1, "pool needs at least one worker");
    let n = items.len();
    let work: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|it| std::sync::Mutex::new(Some(it)))
        .collect();
    let mut out: Vec<std::sync::Mutex<Option<Result<R, String>>>> = Vec::new();
    out.resize_with(n, || std::sync::Mutex::new(None));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n.max(1)) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let item = work[index]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is claimed once");
                let result =
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
                        Ok(r) => Ok(r),
                        Err(payload) => Err(crate::job::panic_message(payload.as_ref())),
                    };
                *out[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every item maps exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_backoff_is_the_shared_schedule() {
        // The pool's historical schedule and the shared helper are one
        // function: identical draws from identical seeds.
        let mut a = Rng::new(11);
        let mut b = Rng::new(11);
        for attempt in 1..=8 {
            assert_eq!(
                backoff_ms(attempt, &mut a),
                gcl_rng::backoff::backoff_ms(attempt, &mut b)
            );
        }
    }

    #[test]
    fn parallel_map_orders_results_and_isolates_panics() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(8, items, |v| {
            if v == 13 {
                panic!("unlucky {v}");
            }
            v * 2
        });
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                assert_eq!(r.as_ref().unwrap_err(), "unlucky 13");
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i as u64) * 2);
            }
        }
    }
}
