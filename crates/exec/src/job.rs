//! The unit of work: one workload simulated under one configuration.
//!
//! A [`JobSpec`] names everything that determines a simulation's outcome —
//! the workload (by Table I name), the input scale, and the complete
//! [`GpuConfig`] — which is exactly what the result cache fingerprints.
//! [`run_job`] executes one spec on the calling thread with panic
//! isolation: a panicking simulation becomes a failed [`JobResult`], never
//! a dead worker.

use crate::cache::ResultCache;
use crate::trace_store::TraceStore;
use gcl_sim::{config_fingerprint, kernel_fingerprint, Gpu, GpuConfig, LaunchStats, SimError};
use gcl_sim::{fnv_fold, FNV_OFFSET};
use gcl_workloads::{all_workloads, tiny_workloads, Workload};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Why a job failed. String payloads keep the type `Send` and cheap to ship
/// across worker threads and the serve protocol.
#[derive(Debug)]
pub enum ExecError {
    /// The spec names a workload the toolkit does not have.
    UnknownWorkload(String),
    /// The simulation itself failed (structured simulator error).
    Sim(SimError),
    /// The simulation panicked; the payload is the panic message. The
    /// worker that ran it survives.
    Panic(String),
    /// A fleet worker reported this failure over the wire; the payload is
    /// its structured error message verbatim.
    Remote(String),
    /// Reading or parsing a file failed; carries the path so the caller
    /// can say *which* file without re-deriving it.
    Io {
        /// The file that failed to read or parse.
        path: String,
        /// What went wrong (I/O error or parse diagnostic).
        error: String,
    },
    /// Replay was requested but the trace container is missing or fails
    /// structural validation (truncated, corrupt, bad magic). The CLI maps
    /// this to exit code 2.
    TraceUnreadable {
        /// The container that could not be read.
        path: String,
        /// The structural rejection.
        error: String,
    },
    /// Replay was requested and the container is structurally sound, but it
    /// does not match the spec: format version skew, configuration
    /// fingerprint drift, or a captured kernel the workload no longer has.
    /// The CLI maps this to exit code 3.
    TraceMismatch {
        /// The container that mismatched.
        path: String,
        /// Which fingerprint or version disagreed, and how.
        error: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownWorkload(name) => {
                write!(f, "no workload named `{name}`")
            }
            ExecError::Sim(e) => write!(f, "{e}"),
            ExecError::Panic(msg) => write!(f, "job panicked: {msg}"),
            ExecError::Remote(msg) => write!(f, "{msg}"),
            ExecError::Io { path, error } => write!(f, "{path}: {error}"),
            ExecError::TraceUnreadable { path, error } => {
                write!(f, "cannot replay {path}: {error}")
            }
            ExecError::TraceMismatch { path, error } => {
                write!(f, "trace {path} does not match this spec: {error}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> ExecError {
        ExecError::Sim(e)
    }
}

/// One simulation to run: workload name, input scale, configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Workload name as in the paper's Table I (`"bfs"`, `"2mm"`, ...).
    pub workload: String,
    /// Run the tiny (test) inputs instead of the benchmark scale.
    pub tiny: bool,
    /// Complete GPU configuration (flags like `sanitize`, `memcheck` and
    /// `max_cycles` live here and are part of the cache identity).
    pub cfg: GpuConfig,
}

impl JobSpec {
    /// Build a spec.
    pub fn new(workload: impl Into<String>, tiny: bool, cfg: GpuConfig) -> JobSpec {
        JobSpec {
            workload: workload.into(),
            tiny,
            cfg,
        }
    }

    /// Instantiate the workload this spec names.
    ///
    /// # Errors
    ///
    /// [`ExecError::UnknownWorkload`] if the name matches nothing.
    pub fn find_workload(&self) -> Result<Box<dyn Workload>, ExecError> {
        let set = if self.tiny {
            tiny_workloads()
        } else {
            all_workloads()
        };
        set.into_iter()
            .find(|w| w.name() == self.workload)
            .ok_or_else(|| ExecError::UnknownWorkload(self.workload.clone()))
    }

    /// Compute the spec's cache identity: configuration fingerprint, kernel
    /// fingerprint (folded over every kernel the workload launches, in
    /// order), and the workload parameters (name + scale).
    ///
    /// # Errors
    ///
    /// [`ExecError::UnknownWorkload`] if the name matches nothing.
    pub fn fingerprint(&self) -> Result<SpecFingerprint, ExecError> {
        let w = self.find_workload()?;
        let kernels_fp = w
            .kernels()
            .iter()
            .map(kernel_fingerprint)
            .fold(FNV_OFFSET, fnv_fold);
        Ok(SpecFingerprint {
            workload: self.workload.clone(),
            tiny: self.tiny,
            config_fp: config_fingerprint(&self.cfg),
            kernels_fp,
        })
    }
}

/// The content identity of a [`JobSpec`]: everything the result depends on,
/// reduced to fingerprints. Stored verbatim inside each cache entry so a
/// 64-bit key collision is detected instead of serving a wrong result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecFingerprint {
    /// Workload name.
    pub workload: String,
    /// Input scale.
    pub tiny: bool,
    /// FNV fingerprint of the [`GpuConfig`] (from `gcl-sim`'s checkpoint
    /// layer, so cache identity and checkpoint identity agree).
    pub config_fp: u64,
    /// FNV fold of every kernel's fingerprint, in launch-declaration order.
    pub kernels_fp: u64,
}

impl SpecFingerprint {
    /// The content-addressed cache key: an FNV fold over the config
    /// fingerprint, kernel fingerprint, workload parameters, and the cache
    /// format version (so a format bump invalidates every old entry by
    /// construction).
    pub fn key(&self) -> u64 {
        let mut h = gcl_sim::fnv_fold_bytes(FNV_OFFSET, self.workload.as_bytes());
        h = fnv_fold(h, u64::from(self.tiny));
        h = fnv_fold(h, self.config_fp);
        h = fnv_fold(h, self.kernels_fp);
        fnv_fold(h, u64::from(crate::cache::CACHE_VERSION))
    }
}

/// What a successful job produced.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// Merged statistics over the workload's launches (the digest, when the
    /// sanitizer was on, is `stats.digest`).
    pub stats: LaunchStats,
    /// Wall-clock milliseconds the simulation took (the *original* run's
    /// time when served from cache).
    pub wall_ms: f64,
    /// Whether the result came from the content-addressed cache instead of
    /// a fresh simulation.
    pub cached: bool,
}

/// The outcome of one job: its spec plus either the output or the error
/// that stopped it.
#[derive(Debug)]
pub struct JobResult {
    /// The spec that ran.
    pub spec: JobSpec,
    /// Output, or why the job failed.
    pub outcome: Result<JobOutput, ExecError>,
    /// Attempts consumed (1 for a first-try success; 0 for a cache hit).
    pub attempts: u64,
}

impl JobResult {
    /// The digest of a successful run, if the sanitizer produced one.
    pub fn digest(&self) -> Option<u64> {
        self.outcome.as_ref().ok().and_then(|o| o.stats.digest)
    }
}

/// Simulate `spec` once (no cache, no retries), with the same semantics
/// `gcl suite` has: under `cfg.sanitize` the workload runs twice and the
/// two event digests must agree (determinism audit).
fn simulate(spec: &JobSpec) -> Result<LaunchStats, ExecError> {
    let w = spec.find_workload()?;
    let run = Gpu::new(spec.cfg.clone()).and_then(|mut gpu| w.run(&mut gpu))?;
    if spec.cfg.sanitize {
        let second = Gpu::new(spec.cfg.clone()).and_then(|mut gpu| w.run(&mut gpu))?;
        gcl_sim::check_digests(w.name(), run.stats.digest, second.stats.digest)
            .map_err(SimError::Sanitizer)?;
    }
    Ok(run.stats)
}

/// Execute one job on the calling thread: consult the cache (when given),
/// simulate on a miss, store the fresh result back, and convert panics into
/// [`ExecError::Panic`] so the caller's thread always survives.
pub fn run_job(spec: &JobSpec, cache: Option<&ResultCache>) -> JobResult {
    run_job_from(spec, cache, None)
}

/// [`run_job`], optionally sourcing results from captured traces instead of
/// functional execution. With a [`TraceStore`], a cache miss replays the
/// spec's container (structured failure if it is absent or mismatched —
/// never a silent fallback to execution); without one, it simulates.
pub fn run_job_from(
    spec: &JobSpec,
    cache: Option<&ResultCache>,
    traces: Option<&TraceStore>,
) -> JobResult {
    let fp = match spec.fingerprint() {
        Ok(fp) => Some(fp),
        Err(e) => {
            // Unknown workload: fail without touching the simulator.
            return JobResult {
                spec: spec.clone(),
                outcome: Err(e),
                attempts: 1,
            };
        }
    };
    if let (Some(cache), Some(fp)) = (cache, fp.as_ref()) {
        if let Some(hit) = cache.load(fp) {
            return JobResult {
                spec: spec.clone(),
                outcome: Ok(JobOutput {
                    stats: hit.stats,
                    wall_ms: hit.wall_ms,
                    cached: true,
                }),
                attempts: 0,
            };
        }
    }
    let t0 = Instant::now();
    let outcome = match catch_unwind(AssertUnwindSafe(|| match traces {
        Some(store) => store.replay(spec),
        None => simulate(spec),
    })) {
        Ok(r) => r,
        Err(payload) => Err(ExecError::Panic(panic_message(payload.as_ref()))),
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let outcome = outcome.map(|stats| {
        if let (Some(cache), Some(fp)) = (cache, fp.as_ref()) {
            if let Err(e) = cache.store(fp, &stats, wall_ms) {
                eprintln!("warning: result cache write failed: {e}");
            }
        }
        JobOutput {
            stats,
            wall_ms,
            cached: false,
        }
    });
    JobResult {
        spec: spec.clone(),
        outcome,
        attempts: 1,
    }
}

/// Extract a readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> JobSpec {
        JobSpec::new(name, true, GpuConfig::small())
    }

    #[test]
    fn unknown_workload_is_structured() {
        let r = run_job(&spec("nope"), None);
        assert!(matches!(r.outcome, Err(ExecError::UnknownWorkload(_))));
        assert!(r.outcome.unwrap_err().to_string().contains("`nope`"));
    }

    #[test]
    fn fingerprint_distinguishes_config_scale_and_workload() {
        let base = spec("bfs").fingerprint().unwrap();
        assert_eq!(spec("bfs").fingerprint().unwrap().key(), base.key());
        assert_ne!(spec("sssp").fingerprint().unwrap().key(), base.key());
        let full = JobSpec::new("bfs", false, GpuConfig::small());
        assert_ne!(full.fingerprint().unwrap().key(), base.key());
        let mut cfg = GpuConfig::small();
        cfg.sanitize = true;
        let sanitized = JobSpec::new("bfs", true, cfg);
        assert_ne!(sanitized.fingerprint().unwrap().key(), base.key());
    }

    #[test]
    fn job_runs_and_reports_stats() {
        let r = run_job(&spec("2mm"), None);
        let out = r.outcome.expect("2mm tiny must complete");
        assert!(out.stats.cycles > 0);
        assert!(!out.cached);
        assert_eq!(r.attempts, 1);
    }

    #[test]
    fn sim_error_propagates_structurally() {
        let mut cfg = GpuConfig::small();
        cfg.max_cycles = 10;
        let r = run_job(&JobSpec::new("bfs", true, cfg), None);
        assert!(matches!(
            r.outcome,
            Err(ExecError::Sim(SimError::Timeout { .. }))
        ));
    }
}
