//! `gcl serve` — a simulation daemon on a plain [`TcpListener`].
//!
//! The protocol is newline-delimited JSON: each request is one JSON object
//! on one line, each response one JSON object on one line. Verbs:
//!
//! ```text
//! → {"op":"submit","workload":"bfs","tiny":true,"sanitize":false}
//! ← {"ok":true,"id":1}                          accepted, queued
//! ← {"ok":false,"error":"queue full (8 pending, cap 8)"}   backpressure
//!
//! → {"op":"status"}
//! ← {"ok":true,"queue_depth":3,"draining":false,
//!    "jobs":{"queued":3,"running":2,"done":7,"failed":0},
//!    "workers":[{"jobs_run":5,"cache_hits":2},{"jobs_run":4,"cache_hits":0}]}
//!
//! → {"op":"result","id":1}
//! ← {"ok":true,"id":1,"state":"running"}
//! ← {"ok":true,"id":1,"state":"done","workload":"bfs","cached":false,
//!    "cycles":912,"warp_insts":1024,"wall_ms":3.2,"digest":"0x9e1c..."}
//! ← {"ok":true,"id":1,"state":"failed","error":"..."}
//!
//! → {"op":"shutdown"}
//! ← {"ok":true,"draining":2}                    graceful drain, then exit
//! ```
//!
//! The job queue is bounded: submits beyond [`ServeOptions::queue_cap`]
//! are rejected with an explicit error rather than queued without limit —
//! callers see backpressure instead of unbounded memory growth. Shutdown
//! is graceful: queued jobs finish, new submits are refused, and
//! [`Server::run`] returns once the last worker drains.
//!
//! Connections are hardened against misbehaving clients: every socket
//! carries read/write deadlines, frames larger than
//! [`ServeOptions::max_frame`] are answered with a structured error and a
//! close (never buffered without bound), idle connections are dropped
//! after [`ServeOptions::idle_timeout_ms`], and a drain closes idle
//! connections instead of waiting on them — a stalled or malicious client
//! cannot wedge the daemon.

use crate::cache::ResultCache;
use crate::job::{run_job, JobOutput, JobSpec};
use crate::proto::{write_frame, FrameError, FrameReader, MAX_FRAME};
use gcl_sim::GpuConfig;
use gcl_stats::Json;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The error message prefix every bounded queue in the toolkit uses to
/// signal backpressure; clients match on it to retry with backoff.
pub const QUEUE_FULL: &str = "queue full";

/// Why a daemon (serve or coordinator) failed to start or run, split so
/// the CLI can exit with distinct codes: misconfiguration, a bind that
/// lost its address, or a protocol/socket failure after startup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Invalid options (zero workers, zero queue capacity, bad deadline).
    Config(String),
    /// The listener could not bind (or report) its address.
    Bind(String),
    /// A socket or protocol failure after the listener was up.
    Net(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(m) | ServeError::Bind(m) | ServeError::Net(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for ServeError {}

/// How often a blocked connection read wakes to check drain/idle deadlines.
pub(crate) const READ_TICK_MS: u64 = 100;

/// How the daemon runs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:7077` (port 0 picks a free port;
    /// see [`Server::addr`]).
    pub addr: String,
    /// Worker threads simulating jobs.
    pub jobs: usize,
    /// Maximum queued (not yet running) jobs before submits are rejected.
    pub queue_cap: usize,
    /// Consult (and fill) this result cache.
    pub cache: Option<ResultCache>,
    /// Largest request frame accepted, in bytes; oversized frames get a
    /// structured error and the connection closes.
    pub max_frame: usize,
    /// Per-connection write deadline: a client that stops reading loses its
    /// connection instead of parking a handler thread.
    pub write_timeout_ms: u64,
    /// Close a connection that sends nothing for this long (0 disables the
    /// idle deadline; draining always closes idle connections).
    pub idle_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:7077".to_string(),
            jobs: 2,
            queue_cap: 64,
            cache: None,
            max_frame: MAX_FRAME,
            write_timeout_ms: 5_000,
            idle_timeout_ms: 300_000,
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Debug)]
enum JobState {
    Queued,
    Running,
    Done(Box<JobOutput>),
    Failed(String),
}

/// Per-worker counters, exposed by the `status` verb.
#[derive(Debug, Default, Clone)]
struct WorkerCounters {
    jobs_run: u64,
    cache_hits: u64,
}

/// Everything the handler, worker and accept threads share.
struct Shared {
    opts: ServeOptions,
    /// Queued job ids, bounded by `opts.queue_cap`.
    queue: Mutex<VecDeque<(u64, JobSpec)>>,
    /// Wakes idle workers when a job is queued or a drain begins.
    work_ready: Condvar,
    /// Every job ever submitted, by id.
    jobs: Mutex<HashMap<u64, (JobSpec, JobState)>>,
    /// Next job id.
    next_id: Mutex<u64>,
    /// Per-worker counters.
    workers: Mutex<Vec<WorkerCounters>>,
    /// Set by the `shutdown` verb: refuse submits, drain, exit.
    draining: AtomicBool,
}

/// A bound, not-yet-running daemon. Binding is separated from running so
/// callers (and tests) can learn the actual address before blocking.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and set up shared state.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for invalid options, [`ServeError::Bind`]
    /// if the address cannot be bound.
    pub fn bind(opts: ServeOptions) -> Result<Server, ServeError> {
        if opts.jobs == 0 {
            return Err(ServeError::Config(
                "serve needs at least one worker (--jobs 1)".to_string(),
            ));
        }
        if opts.queue_cap == 0 {
            return Err(ServeError::Config(
                "serve needs a positive queue capacity".to_string(),
            ));
        }
        let listener = TcpListener::bind(&opts.addr)
            .map_err(|e| ServeError::Bind(format!("cannot bind {}: {e}", opts.addr)))?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            next_id: Mutex::new(1),
            workers: Mutex::new(vec![WorkerCounters::default(); opts.jobs]),
            draining: AtomicBool::new(false),
            opts,
        });
        Ok(Server { listener, shared })
    }

    /// The actual bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] if the socket address cannot be read.
    pub fn addr(&self) -> Result<std::net::SocketAddr, ServeError> {
        self.listener
            .local_addr()
            .map_err(|e| ServeError::Bind(format!("cannot read bound address: {e}")))
    }

    /// Serve until a `shutdown` request drains the queue. Blocks the
    /// calling thread; connection handlers and workers run on their own
    /// threads.
    ///
    /// # Errors
    ///
    /// [`ServeError::Net`] on listener failure.
    pub fn run(self) -> Result<(), ServeError> {
        // Poll accept so the loop notices a drain promptly; 20 ms is
        // imperceptible next to any simulation.
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Net(format!("cannot set nonblocking accept: {e}")))?;
        std::thread::scope(|scope| {
            for worker in 0..self.shared.opts.jobs {
                let shared = Arc::clone(&self.shared);
                scope.spawn(move || worker_loop(worker, &shared));
            }
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let shared = Arc::clone(&self.shared);
                        scope.spawn(move || handle_connection(stream, &shared));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if self.shared.draining.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => eprintln!("warning: accept failed: {e}"),
                }
            }
            // Drain: wake every idle worker so each observes the flag and
            // exits once the queue is empty; the scope joins them.
            self.shared.work_ready.notify_all();
        });
        Ok(())
    }
}

/// One worker: pop jobs until draining and the queue is empty.
fn worker_loop(worker: usize, shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _timeout) = shared
                    .work_ready
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue poisoned");
                queue = q;
            }
        };
        let Some((id, spec)) = job else { break };
        set_state(shared, id, JobState::Running);
        let result = run_job(&spec, shared.opts.cache.as_ref());
        {
            let mut workers = shared.workers.lock().expect("workers poisoned");
            workers[worker].jobs_run += 1;
            if matches!(&result.outcome, Ok(o) if o.cached) {
                workers[worker].cache_hits += 1;
            }
        }
        match result.outcome {
            Ok(output) => set_state(shared, id, JobState::Done(Box::new(output))),
            Err(e) => set_state(shared, id, JobState::Failed(e.to_string())),
        }
    }
}

fn set_state(shared: &Shared, id: u64, state: JobState) {
    if let Some(entry) = shared.jobs.lock().expect("jobs poisoned").get_mut(&id) {
        entry.1 = state;
    }
}

/// One connection: read bounded request frames under read/write deadlines,
/// answering each, until EOF, an idle deadline, an oversized frame, or a
/// drain.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(READ_TICK_MS)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        shared.opts.write_timeout_ms.max(1),
    )));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("warning: connection clone failed: {e}");
            return;
        }
    };
    let mut reader = FrameReader::new(stream, shared.opts.max_frame);
    let mut last_activity = Instant::now();
    loop {
        let line = match reader.next_frame() {
            Ok(line) => line,
            Err(FrameError::Timeout) => {
                // Idle tick: never let a silent client block a drain, and
                // enforce the idle deadline when one is configured.
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                let idle = shared.opts.idle_timeout_ms;
                if idle > 0 && last_activity.elapsed() >= Duration::from_millis(idle) {
                    break;
                }
                continue;
            }
            Err(FrameError::TooLarge { limit }) => {
                // The stream cannot be resynchronized after an unbounded
                // line; answer with a structured error and hang up.
                let _ = write_frame(
                    &mut writer,
                    &error_response(format!("frame too large (cap {limit} bytes)")),
                );
                break;
            }
            Err(_) => break,
        };
        last_activity = Instant::now();
        let response = handle_request(&line, shared);
        if write_frame(&mut writer, &response).is_err() {
            break;
        }
    }
}

pub(crate) fn error_response(msg: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(msg.into())),
    ])
}

/// A structured load-shedding rejection. `"shed":true` tells clients this
/// is deliberate backpressure (retry later, count it) rather than a hard
/// error; the message still carries the [`QUEUE_FULL`] prefix where the
/// queue is the reason, for older clients that match on text.
pub(crate) fn shed_response(msg: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("shed", Json::Bool(true)),
        ("error", Json::Str(msg.into())),
    ])
}

/// Build and validate the [`JobSpec`] a submit-style request names; shared
/// with the fleet coordinator, which speaks the same submit verb.
pub(crate) fn parse_submit(request: &Json) -> Result<JobSpec, String> {
    let Some(workload) = request.get("workload").and_then(Json::as_str) else {
        return Err("submit needs a `workload` field".to_string());
    };
    let tiny = matches!(request.get("tiny"), Some(Json::Bool(true)));
    let sanitize = matches!(request.get("sanitize"), Some(Json::Bool(true)));
    let mut cfg = if tiny {
        GpuConfig::small()
    } else {
        GpuConfig::fermi()
    };
    cfg.sanitize = sanitize;
    // Optional cycle-budget override; loadgen uses distinct budgets as
    // cache-busting workload variants with distinct fingerprints.
    if let Some(max_cycles) = request.get("max_cycles") {
        let Some(v) = max_cycles.as_u64() else {
            return Err("`max_cycles` must be a positive integer".to_string());
        };
        if v == 0 {
            return Err("`max_cycles` must be a positive integer".to_string());
        }
        cfg.max_cycles = v;
    }
    let spec = JobSpec::new(workload, tiny, cfg);
    // Validate the name up front so a typo is a submit error, not a
    // queued-then-failed job.
    spec.find_workload().map_err(|e| e.to_string())?;
    Ok(spec)
}

/// Dispatch one request line.
fn handle_request(line: &str, shared: &Shared) -> Json {
    let request = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => return error_response(format!("bad request: {e}")),
    };
    match request.get("op").and_then(Json::as_str) {
        Some("submit") => handle_submit(&request, shared),
        Some("status") => handle_status(shared),
        Some("result") => handle_result(&request, shared),
        Some("shutdown") => handle_shutdown(shared),
        Some(other) => error_response(format!(
            "unknown op `{other}` (expected submit, status, result, shutdown)"
        )),
        None => error_response("missing `op` field"),
    }
}

fn handle_submit(request: &Json, shared: &Shared) -> Json {
    if shared.draining.load(Ordering::SeqCst) {
        return error_response("server is draining (shutdown requested)");
    }
    let spec = match parse_submit(request) {
        Ok(spec) => spec,
        Err(e) => return error_response(e),
    };
    let mut queue = shared.queue.lock().expect("queue poisoned");
    if queue.len() >= shared.opts.queue_cap {
        return shed_response(format!(
            "{QUEUE_FULL} ({} pending, cap {})",
            queue.len(),
            shared.opts.queue_cap
        ));
    }
    let id = {
        let mut next = shared.next_id.lock().expect("id poisoned");
        let id = *next;
        *next += 1;
        id
    };
    shared
        .jobs
        .lock()
        .expect("jobs poisoned")
        .insert(id, (spec.clone(), JobState::Queued));
    queue.push_back((id, spec));
    drop(queue);
    shared.work_ready.notify_one();
    Json::obj(vec![("ok", Json::Bool(true)), ("id", Json::UInt(id))])
}

fn handle_status(shared: &Shared) -> Json {
    let queue_depth = shared.queue.lock().expect("queue poisoned").len();
    let (mut queued, mut running, mut done, mut failed) = (0u64, 0u64, 0u64, 0u64);
    for (_, (_, state)) in shared.jobs.lock().expect("jobs poisoned").iter() {
        match state {
            JobState::Queued => queued += 1,
            JobState::Running => running += 1,
            JobState::Done(_) => done += 1,
            JobState::Failed(_) => failed += 1,
        }
    }
    let workers = shared
        .workers
        .lock()
        .expect("workers poisoned")
        .iter()
        .map(|w| {
            Json::obj(vec![
                ("jobs_run", Json::UInt(w.jobs_run)),
                ("cache_hits", Json::UInt(w.cache_hits)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("queue_depth", Json::UInt(queue_depth as u64)),
        (
            "draining",
            Json::Bool(shared.draining.load(Ordering::SeqCst)),
        ),
        (
            "jobs",
            Json::obj(vec![
                ("queued", Json::UInt(queued)),
                ("running", Json::UInt(running)),
                ("done", Json::UInt(done)),
                ("failed", Json::UInt(failed)),
            ]),
        ),
        ("workers", Json::Arr(workers)),
    ])
}

fn handle_result(request: &Json, shared: &Shared) -> Json {
    let Some(id) = request.get("id").and_then(Json::as_u64) else {
        return error_response("result needs a numeric `id` field");
    };
    let jobs = shared.jobs.lock().expect("jobs poisoned");
    let Some((spec, state)) = jobs.get(&id) else {
        return error_response(format!("no job with id {id}"));
    };
    let mut fields = vec![("ok", Json::Bool(true)), ("id", Json::UInt(id))];
    match state {
        JobState::Queued => fields.push(("state", Json::Str("queued".into()))),
        JobState::Running => fields.push(("state", Json::Str("running".into()))),
        JobState::Failed(msg) => {
            fields.push(("state", Json::Str("failed".into())));
            fields.push(("error", Json::Str(msg.clone())));
        }
        JobState::Done(output) => {
            fields.push(("state", Json::Str("done".into())));
            fields.push(("workload", Json::Str(spec.workload.clone())));
            fields.push(("cached", Json::Bool(output.cached)));
            fields.push(("cycles", Json::UInt(output.stats.cycles)));
            fields.push(("warp_insts", Json::UInt(output.stats.sm.warp_insts)));
            fields.push(("wall_ms", Json::Float(output.wall_ms)));
            fields.push((
                "digest",
                match output.stats.digest {
                    Some(d) => Json::Str(format!("0x{d:016x}")),
                    None => Json::Null,
                },
            ));
        }
    }
    Json::obj(fields)
}

fn handle_shutdown(shared: &Shared) -> Json {
    shared.draining.store(true, Ordering::SeqCst);
    let pending = shared.queue.lock().expect("queue poisoned").len();
    shared.work_ready.notify_all();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("draining", Json::Bool(true)),
        ("pending", Json::UInt(pending as u64)),
    ])
}
