//! `gcl soak` — a long-haul fleet soak harness with an optional chaos
//! director.
//!
//! The harness owns the whole fleet as child processes: it spawns a
//! journaled coordinator (`gcl coordinate --journal … --recover`) and N
//! rejoin-capable workers (`gcl serve --join … --rejoin`), drives them
//! with closed-ish loadgen-style submitter threads, and — with `--chaos`
//! — runs a seeded chaos schedule that `kill -9`s and respawns workers
//! *and the coordinator itself* mid-sweep. Because the children are real
//! processes killed with real signals, this exercises exactly the failure
//! the write-ahead journal exists for: a coordinator that vanishes
//! between one frame and the next.
//!
//! After the traffic window the harness drains and audits three
//! invariants, failing loudly on any violation:
//!
//! 1. **Zero lost acknowledged jobs** — every job id the coordinator ever
//!    acked reaches a terminal `done` state after recovery.
//! 2. **Digest identity with serial** — each distinct spec's fleet result
//!    payload is byte-identical to a local serial [`run_job`] run.
//! 3. **Replica convergence** — the coordinator's `status` report shows
//!    every cached key back at full replica strength (R = `--replicas`)
//!    without any read traffic forcing repairs.

use crate::job::{run_job, JobSpec};
use crate::proto::{write_frame, FrameError, FrameReader};
use gcl_rng::Rng;
use gcl_sim::GpuConfig;
use gcl_stats::Json;
use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Weyl-sequence increment used to derive per-submitter seeds.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// How a soak run is shaped.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Coordinator address; empty picks a free loopback port.
    pub addr: String,
    /// Path to the `gcl` binary to spawn for coordinator and workers;
    /// `None` uses the currently running executable.
    pub gcl_bin: Option<PathBuf>,
    /// Worker processes in the fleet.
    pub workers: usize,
    /// Slots per worker.
    pub slots: usize,
    /// Traffic window, in milliseconds.
    pub duration_ms: u64,
    /// Arm the chaos director (kill/restart workers and coordinator).
    pub chaos: bool,
    /// Interval between coordinator `kill -9` + `--recover` cycles
    /// (0 = never; only honored with `chaos`).
    pub kill_coordinator_ms: u64,
    /// Interval between worker kills (0 = never; only with `chaos`).
    pub kill_worker_ms: u64,
    /// Concurrent submitter threads.
    pub submitters: usize,
    /// Mean think time between submits, per submitter.
    pub think_ms: u64,
    /// Distinct cache-key variants per workload (`max_cycles` nudges).
    pub distinct: usize,
    /// Workloads to cycle through.
    pub workloads: Vec<String>,
    /// Seed for submit jitter and the chaos schedule.
    pub seed: u64,
    /// Replica fan-out the coordinator runs with (convergence target).
    pub replicas: usize,
    /// Background rebalance cadence handed to the coordinator.
    pub rebalance_ms: u64,
    /// Where the coordinator's write-ahead journal lives.
    pub journal: PathBuf,
    /// Where the JSON soak report lands.
    pub out: PathBuf,
}

impl Default for SoakOptions {
    fn default() -> SoakOptions {
        SoakOptions {
            addr: String::new(),
            gcl_bin: None,
            workers: 3,
            slots: 1,
            duration_ms: 20_000,
            chaos: false,
            kill_coordinator_ms: 7_000,
            kill_worker_ms: 3_000,
            submitters: 4,
            think_ms: 25,
            distinct: 3,
            workloads: vec!["bfs".to_string(), "spmv".to_string()],
            seed: 0x0073_6f61_6b00, // "soak"
            replicas: 2,
            rebalance_ms: 250,
            journal: PathBuf::from("results/soak/journal.bin"),
            out: PathBuf::from("results/soak/soak.json"),
        }
    }
}

/// What a soak run did and proved.
#[derive(Debug, Clone, Default)]
pub struct SoakReport {
    /// Submit round trips attempted.
    pub submits: u64,
    /// Submits the coordinator acked with a job id.
    pub acked: u64,
    /// Distinct acknowledged job ids audited to `done`.
    pub audited: u64,
    /// Distinct specs whose fleet payload matched the serial run.
    pub digest_matches: u64,
    /// Coordinator `kill -9` + recover cycles the chaos director ran.
    pub coordinator_kills: u64,
    /// Worker kill/respawn cycles the chaos director ran.
    pub worker_kills: u64,
    /// Keys in the coordinator's replica directory at the end.
    pub replica_keys: u64,
    /// Keys at full replica strength at the end.
    pub replica_full: u64,
    /// Proactive rebalance fan-outs the coordinator counted.
    pub rebalances: u64,
    /// In-flight leases resumed from worker inventories.
    pub resumed: u64,
}

/// One distinct spec the soak traffic cycles through.
struct Variant {
    workload: String,
    max_cycles: Option<u64>,
}

impl Variant {
    fn spec(&self) -> JobSpec {
        let mut cfg = GpuConfig::small();
        cfg.sanitize = true;
        if let Some(mc) = self.max_cycles {
            cfg.max_cycles = mc;
        }
        JobSpec::new(&self.workload, true, cfg)
    }

    fn submit_request(&self) -> Json {
        let mut fields = vec![
            ("op", Json::Str("submit".into())),
            ("workload", Json::Str(self.workload.clone())),
            ("tiny", Json::Bool(true)),
            ("sanitize", Json::Bool(true)),
        ];
        if let Some(mc) = self.max_cycles {
            fields.push(("max_cycles", Json::UInt(mc)));
        }
        Json::obj(fields)
    }
}

fn variants(opts: &SoakOptions) -> Vec<Variant> {
    // Variant 0 is the stock tiny config; the rest nudge max_cycles off
    // the default to mint distinct fingerprints, loadgen-style.
    let base = GpuConfig::small().max_cycles;
    let mut out = Vec::new();
    for w in &opts.workloads {
        for v in 0..opts.distinct.max(1) as u64 {
            out.push(Variant {
                workload: w.clone(),
                max_cycles: (v > 0).then_some(base + v),
            });
        }
    }
    out
}

struct Line {
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
}

fn dial(addr: &str) -> Result<Line, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|e| format!("cannot set read deadline: {e}"))?;
    stream
        .set_write_timeout(Some(Duration::from_millis(5_000)))
        .map_err(|e| format!("cannot set write deadline: {e}"))?;
    let writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    Ok(Line {
        reader: FrameReader::new(stream, 4 * 1024 * 1024),
        writer,
    })
}

fn roundtrip(line: &mut Line, request: &Json, deadline_ms: u64) -> Result<Json, String> {
    write_frame(&mut line.writer, request).map_err(|e| e.to_string())?;
    let deadline = Instant::now() + Duration::from_millis(deadline_ms.max(1));
    loop {
        match line.reader.next_frame() {
            Ok(text) => return Json::parse(&text).map_err(|e| format!("bad frame: {e}")),
            Err(FrameError::Timeout) => {
                if Instant::now() >= deadline {
                    return Err("response deadline exceeded".to_string());
                }
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Round-trip with redial: the soak client's whole job is to outlive
/// coordinator restarts, so a dead connection is redialed until
/// `deadline`, not reported.
fn call_resilient(
    line: &mut Option<Line>,
    addr: &str,
    request: &Json,
    deadline: Instant,
) -> Result<Json, String> {
    let mut last = String::new();
    loop {
        if Instant::now() >= deadline {
            return Err(format!("coordinator unreachable: {last}"));
        }
        if line.is_none() {
            match dial(addr) {
                Ok(l) => *line = Some(l),
                Err(e) => {
                    last = e;
                    std::thread::sleep(Duration::from_millis(100));
                    continue;
                }
            }
        }
        match roundtrip(line.as_mut().expect("dialed"), request, 10_000) {
            Ok(r) => return Ok(r),
            Err(e) => {
                last = e;
                *line = None;
            }
        }
    }
}

fn resolve_bin(opts: &SoakOptions) -> Result<PathBuf, String> {
    match &opts.gcl_bin {
        Some(p) => Ok(p.clone()),
        None => std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}")),
    }
}

fn pick_addr(opts: &SoakOptions) -> Result<String, String> {
    if !opts.addr.is_empty() {
        return Ok(opts.addr.clone());
    }
    // Bind port 0, read the assignment back, release it for the child.
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot probe for a port: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read probed address: {e}"))?;
    Ok(addr.to_string())
}

fn spawn_coordinator(bin: &PathBuf, addr: &str, opts: &SoakOptions) -> Result<Child, String> {
    Command::new(bin)
        .args([
            "coordinate",
            "--addr",
            addr,
            "--journal",
            &opts.journal.display().to_string(),
            "--recover",
            "--replicas",
            &opts.replicas.to_string(),
            "--rebalance-ms",
            &opts.rebalance_ms.to_string(),
            "--lease-ms",
            "15000",
            "--heartbeat-ms",
            "200",
            "--heartbeat-timeout-ms",
            "1500",
            "--queue-cap",
            "1024",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn coordinator: {e}"))
}

fn spawn_worker(
    bin: &PathBuf,
    addr: &str,
    idx: usize,
    opts: &SoakOptions,
) -> Result<Child, String> {
    Command::new(bin)
        .args([
            "serve",
            "--join",
            addr,
            "--name",
            &format!("soak-w{idx}"),
            "--jobs",
            &opts.slots.max(1).to_string(),
            "--rejoin",
            "--connect-retries",
            "200",
            "--no-cache",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn worker {idx}: {e}"))
}

fn wait_listening(addr: &str, budget: Duration) -> Result<(), String> {
    let deadline = Instant::now() + budget;
    loop {
        match TcpStream::connect(addr) {
            Ok(_) => return Ok(()),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("coordinator never listened on {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn submitter_loop(
    idx: usize,
    addr: &str,
    opts: &SoakOptions,
    specs: &[Variant],
    acked: &Mutex<HashMap<u64, usize>>,
    submits: &AtomicU64,
    stop: &AtomicBool,
) {
    let mut rng = Rng::new(opts.seed ^ (idx as u64).wrapping_mul(GOLDEN));
    let mut line: Option<Line> = None;
    while !stop.load(Ordering::SeqCst) {
        let think = opts.think_ms / 2 + u64::from(rng.u32_below(opts.think_ms.max(1) as u32 + 1));
        std::thread::sleep(Duration::from_millis(think));
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let which = rng.u32_below(specs.len() as u32) as usize;
        let request = specs[which].submit_request();
        submits.fetch_add(1, Ordering::SeqCst);
        // Each submit gets a few seconds to land; a coordinator mid-kill
        // shows up as redials inside call_resilient, and a submit that
        // never acks this round is simply retried as fresh traffic (the
        // coordinator dedups by key, so retries cannot double-run).
        let deadline = Instant::now() + Duration::from_millis(5_000);
        match call_resilient(&mut line, addr, &request, deadline) {
            Ok(r) if matches!(r.get("ok"), Some(Json::Bool(true))) => {
                if let Some(id) = r.get("id").and_then(Json::as_u64) {
                    acked.lock().expect("ledger poisoned").insert(id, which);
                }
            }
            Ok(_) | Err(_) => {}
        }
    }
}

/// The chaos director's view of the fleet's children.
struct Fleet {
    coordinator: Child,
    workers: Vec<Child>,
}

impl Fleet {
    fn kill_all(&mut self) {
        let _ = self.coordinator.kill();
        let _ = self.coordinator.wait();
        for w in &mut self.workers {
            let _ = w.kill();
            let _ = w.wait();
        }
    }
}

fn write_report(opts: &SoakOptions, report: &SoakReport) -> Result<(), String> {
    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    let doc = Json::obj(vec![
        ("version", Json::UInt(1)),
        ("duration_ms", Json::UInt(opts.duration_ms)),
        ("chaos", Json::Bool(opts.chaos)),
        ("workers", Json::UInt(opts.workers as u64)),
        ("seed", Json::UInt(opts.seed)),
        ("submits", Json::UInt(report.submits)),
        ("acked", Json::UInt(report.acked)),
        ("audited", Json::UInt(report.audited)),
        ("digest_matches", Json::UInt(report.digest_matches)),
        ("coordinator_kills", Json::UInt(report.coordinator_kills)),
        ("worker_kills", Json::UInt(report.worker_kills)),
        ("replica_keys", Json::UInt(report.replica_keys)),
        ("replica_full", Json::UInt(report.replica_full)),
        ("rebalances", Json::UInt(report.rebalances)),
        ("resumed", Json::UInt(report.resumed)),
    ]);
    let tmp = opts.out.with_extension("json.tmp");
    let mut f =
        std::fs::File::create(&tmp).map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
    writeln!(f, "{doc}").map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    f.sync_all().ok();
    drop(f);
    std::fs::rename(&tmp, &opts.out).map_err(|e| format!("cannot move report into place: {e}"))?;
    Ok(())
}

/// Run one soak session: spawn the fleet, drive traffic (optionally under
/// chaos), then drain and audit the durability invariants.
///
/// # Errors
///
/// A human-readable message when an invariant is violated (lost
/// acknowledged job, serial divergence, replica non-convergence) or the
/// fleet cannot be spawned.
pub fn run_soak(opts: &SoakOptions) -> Result<SoakReport, String> {
    if opts.workers == 0 {
        return Err("soak needs at least one worker (--workers 1)".to_string());
    }
    if opts.duration_ms == 0 {
        return Err("soak needs a positive duration (--duration-ms)".to_string());
    }
    if opts.workloads.is_empty() {
        return Err("soak needs at least one workload".to_string());
    }
    let bin = resolve_bin(opts)?;
    let addr = pick_addr(opts)?;
    if let Some(dir) = opts.journal.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    // A soak run owns its journal from genesis: a stale file from a
    // previous run would make "zero lost acked jobs" unfalsifiable.
    let _ = std::fs::remove_file(&opts.journal);

    let specs = variants(opts);
    let mut fleet = Fleet {
        coordinator: spawn_coordinator(&bin, &addr, opts)?,
        workers: Vec::new(),
    };
    if let Err(e) = wait_listening(&addr, Duration::from_secs(10)) {
        fleet.kill_all();
        return Err(e);
    }
    for idx in 0..opts.workers {
        match spawn_worker(&bin, &addr, idx, opts) {
            Ok(w) => fleet.workers.push(w),
            Err(e) => {
                fleet.kill_all();
                return Err(e);
            }
        }
    }

    // Traffic window: submitters in scoped threads, the chaos director on
    // the main thread.
    let acked: Mutex<HashMap<u64, usize>> = Mutex::new(HashMap::new());
    let submits = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let mut report = SoakReport::default();
    let started = Instant::now();
    let deadline = started + Duration::from_millis(opts.duration_ms);
    let mut chaos_rng = Rng::new(opts.seed ^ GOLDEN);
    let mut next_worker_kill = (opts.chaos && opts.kill_worker_ms > 0)
        .then(|| started + Duration::from_millis(opts.kill_worker_ms));
    let mut next_coord_kill = (opts.chaos && opts.kill_coordinator_ms > 0)
        .then(|| started + Duration::from_millis(opts.kill_coordinator_ms));
    let spawn_err: Mutex<Option<String>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for idx in 0..opts.submitters.max(1) {
            let (acked, submits, stop, addr, specs) = (&acked, &submits, &stop, &addr, &specs[..]);
            scope.spawn(move || submitter_loop(idx, addr, opts, specs, acked, submits, stop));
        }
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(100));
            if let Some(t) = next_worker_kill {
                if Instant::now() >= t {
                    next_worker_kill = Some(t + Duration::from_millis(opts.kill_worker_ms));
                    let victim = chaos_rng.u32_below(fleet.workers.len() as u32) as usize;
                    let _ = fleet.workers[victim].kill();
                    let _ = fleet.workers[victim].wait();
                    report.worker_kills += 1;
                    match spawn_worker(&bin, &addr, victim, opts) {
                        Ok(w) => fleet.workers[victim] = w,
                        Err(e) => {
                            *spawn_err.lock().expect("spawn_err poisoned") = Some(e);
                            break;
                        }
                    }
                }
            }
            if let Some(t) = next_coord_kill {
                if Instant::now() >= t {
                    next_coord_kill = Some(t + Duration::from_millis(opts.kill_coordinator_ms));
                    // The point of the whole exercise: SIGKILL, no
                    // goodbye, then a --recover respawn on the same
                    // journal.
                    let _ = fleet.coordinator.kill();
                    let _ = fleet.coordinator.wait();
                    report.coordinator_kills += 1;
                    match spawn_coordinator(&bin, &addr, opts) {
                        Ok(c) => fleet.coordinator = c,
                        Err(e) => {
                            *spawn_err.lock().expect("spawn_err poisoned") = Some(e);
                            break;
                        }
                    }
                }
            }
        }
        stop.store(true, Ordering::SeqCst);
    });
    if let Some(e) = spawn_err.lock().expect("spawn_err poisoned").take() {
        fleet.kill_all();
        return Err(e);
    }
    report.submits = submits.load(Ordering::SeqCst);

    // Audit phase. Give the recovered fleet a generous budget to finish
    // everything it ever acked.
    let audit = (|| -> Result<(), String> {
        let ledger: Vec<(u64, usize)> = {
            let a = acked.lock().expect("ledger poisoned");
            let mut v: Vec<(u64, usize)> = a.iter().map(|(&id, &w)| (id, w)).collect();
            v.sort_unstable();
            v
        };
        report.acked = ledger.len() as u64;
        let mut line: Option<Line> = None;
        let audit_deadline = Instant::now() + Duration::from_secs(120);

        // Serial ground truth, one local run per distinct spec.
        let mut serial: HashMap<usize, String> = HashMap::new();
        for &(_, which) in &ledger {
            if serial.contains_key(&which) {
                continue;
            }
            let result = run_job(&specs[which].spec(), None);
            match result.outcome {
                Ok(out) => {
                    let (hex, _) = crate::fleet::encode_stats_payload(&out.stats);
                    serial.insert(which, hex);
                }
                Err(e) => return Err(format!("serial ground-truth run failed: {e}")),
            }
        }

        let mut matched: HashSet<usize> = HashSet::new();
        for &(id, which) in &ledger {
            let poll = Json::obj(vec![
                ("op", Json::Str("result".into())),
                ("id", Json::UInt(id)),
            ]);
            loop {
                let r = call_resilient(&mut line, &addr, &poll, audit_deadline)?;
                match r.get("state").and_then(Json::as_str) {
                    Some("done") => {
                        let hex = r.get("stats").and_then(Json::as_str).unwrap_or("");
                        let want = serial.get(&which).map(String::as_str).unwrap_or("?");
                        if hex != want {
                            return Err(format!(
                                "job {id} ({}) diverged from serial: fleet payload {} bytes, \
                                 serial {} bytes",
                                specs[which].workload,
                                hex.len() / 2,
                                want.len() / 2,
                            ));
                        }
                        matched.insert(which);
                        report.audited += 1;
                        break;
                    }
                    Some("failed") => {
                        let err = r.get("error").and_then(Json::as_str).unwrap_or("?");
                        return Err(format!("acknowledged job {id} failed: {err}"));
                    }
                    None if matches!(r.get("ok"), Some(Json::Bool(false))) => {
                        let err = r.get("error").and_then(Json::as_str).unwrap_or("?");
                        return Err(format!("acknowledged job {id} was lost: {err}"));
                    }
                    _ => {
                        if Instant::now() >= audit_deadline {
                            return Err(format!("acknowledged job {id} never finished"));
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
        }
        report.digest_matches = matched.len() as u64;

        // Replica convergence: poll status until every key is at full
        // strength. The rebalancer must get there without any reads.
        let status = Json::obj(vec![("op", Json::Str("status".into()))]);
        let converge_deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let s = call_resilient(&mut line, &addr, &status, converge_deadline)?;
            let keys = s
                .get("replicas")
                .and_then(|r| r.get("keys"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let full = s
                .get("replicas")
                .and_then(|r| r.get("full"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            report.replica_keys = keys;
            report.replica_full = full;
            report.rebalances = s
                .get("cache")
                .and_then(|c| c.get("rebalances"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            report.resumed = s
                .get("cache")
                .and_then(|c| c.get("resumed"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            if keys > 0 && full == keys {
                break;
            }
            if Instant::now() >= converge_deadline {
                return Err(format!(
                    "replica directory never converged: {full}/{keys} keys at full strength"
                ));
            }
            std::thread::sleep(Duration::from_millis(200));
        }

        // Graceful drain so the children exit on their own.
        let shutdown = Json::obj(vec![("op", Json::Str("shutdown".into()))]);
        let _ = call_resilient(
            &mut line,
            &addr,
            &shutdown,
            Instant::now() + Duration::from_secs(10),
        );
        Ok(())
    })();

    // Reap the fleet whether the audit passed or not.
    let reap_deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < reap_deadline {
        if let Ok(Some(_)) = fleet.coordinator.try_wait() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    fleet.kill_all();
    audit?;
    write_report(opts, &report)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_are_validated() {
        let mut opts = SoakOptions {
            workers: 0,
            ..SoakOptions::default()
        };
        assert!(run_soak(&opts).unwrap_err().contains("worker"));
        opts.workers = 1;
        opts.duration_ms = 0;
        assert!(run_soak(&opts).unwrap_err().contains("duration"));
        opts.duration_ms = 100;
        opts.workloads.clear();
        assert!(run_soak(&opts).unwrap_err().contains("workload"));
    }

    #[test]
    fn variants_mint_distinct_specs() {
        let opts = SoakOptions {
            workloads: vec!["bfs".to_string(), "spmv".to_string()],
            distinct: 3,
            ..SoakOptions::default()
        };
        let vs = variants(&opts);
        assert_eq!(vs.len(), 6);
        let keys: HashSet<u64> = vs
            .iter()
            .map(|v| v.spec().fingerprint().expect("fingerprint").key())
            .collect();
        assert_eq!(keys.len(), 6, "every variant must be a distinct cache key");
    }
}
