//! # gcl-exec — parallel job engine, result cache, and serving daemon
//!
//! The execution layer of the `gcl` toolkit: everything between "a list of
//! simulations to run" and "their results, fast, in order". Three layers,
//! each usable without the ones above it:
//!
//! * **Jobs** ([`job`]): a [`JobSpec`] names a workload, an input scale,
//!   and a complete [`GpuConfig`](gcl_sim::GpuConfig); [`run_job`] executes
//!   it with panic isolation, so a crashing simulation becomes a failed
//!   [`JobResult`] instead of a dead thread.
//! * **Pool + cache** ([`pool`], [`cache`]): [`run_pool`] fans specs out
//!   over a fixed set of worker threads with deterministic (submission-
//!   index) result ordering, seeded-jitter retry backoff, and a single
//!   event stream so exactly one thread owns shared output. The
//!   [`ResultCache`] is content-addressed by the spec's fingerprint;
//!   because launches are deterministic (the sanitizer's digest audit
//!   proves it), a warm cache replays a whole suite without simulating
//!   anything. Corrupt, truncated or version-skewed entries are silent
//!   misses, never errors.
//! * **Trace store** ([`trace_store`]): captured `GCLTRACE1` containers
//!   filed under the same content address as cached results. `gcl suite
//!   --replay` resolves each job to its trace by fingerprint and drives
//!   the timing model from the recorded instruction streams instead of
//!   functional execution — same digests, same statistics, a fraction of
//!   the wall-clock. An absent or mismatched container is a structured
//!   job failure, never a silent fallback to execution.
//! * **Serving** ([`serve`], [`proto`], [`client`]): `gcl serve` wraps the
//!   pool in a TCP daemon speaking newline-delimited JSON (submit / status
//!   / result / shutdown), with a bounded queue that rejects submits under
//!   backpressure, read/write deadlines and a frame-size cap on every
//!   connection, and a graceful drain on shutdown. [`ServeClient`] is the
//!   matching resilient client: reconnect-and-replay on transport failure,
//!   jittered-backoff retry on `queue full`.
//! * **Fleet** ([`fleet`]): `gcl coordinate` turns the daemon into a
//!   fault-tolerant fleet — workers join with `gcl serve --join`, the
//!   coordinator shards jobs by content-addressed cache key, supervises
//!   with heartbeats and per-job leases, and reassigns work from dead or
//!   stalled workers. Results are replicated across an R-member replica
//!   set (read-through with write-repair on node loss), clients can
//!   stream progress over resumable sessions ([`SessionClient`]), and
//!   [`loadgen`] measures the whole stack under thousands of concurrent
//!   submitters. [`FleetInject`] is the chaos layer that proves every
//!   failure mode is detected and recovered. The coordinator journals
//!   every state transition to a checksummed write-ahead log
//!   ([`fleet::Journal`]) and replays it on `--recover`, re-joining
//!   workers reconcile leases and replica inventories, and [`soak`] is
//!   the long-haul harness that `kill -9`s the whole fleet — coordinator
//!   included — while proving no acknowledged job is ever lost.
//!
//! The invariant the whole crate is built around: **parallel execution
//! never changes results**. Suite digests from `--jobs 8` are
//! byte-identical to `--jobs 1`, a cache hit returns the same
//! [`LaunchStats`](gcl_sim::LaunchStats) the original simulation produced,
//! and a fleet sweep surviving injected kills, stalls and partitions is
//! digest-identical to a serial run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod fleet;
pub mod job;
pub mod loadgen;
pub mod pool;
pub mod proto;
pub mod serve;
pub mod soak;
pub mod trace_store;

pub use cache::{CacheMiss, CachedResult, ResultCache, CACHE_MAGIC, CACHE_VERSION};
pub use client::{ClientOptions, ServeClient, SessionClient, SessionSubmit};
pub use fleet::{
    run_worker, Coordinator, CoordinatorOptions, FleetInject, WorkerOptions, WorkerReport,
    DECOMMISSIONED, LEASE_EXPIRED, WORKER_DEAD,
};
pub use job::{run_job, run_job_from, ExecError, JobOutput, JobResult, JobSpec, SpecFingerprint};
pub use loadgen::{read_series, run_loadgen, LoadgenOptions, LoadgenReport};
pub use pool::{backoff_ms, parallel_map, run_pool, JobEvent, PoolConfig};
pub use proto::{FrameError, FrameReader, MAX_FRAME};
pub use serve::{ServeError, ServeOptions, Server, QUEUE_FULL};
pub use soak::{run_soak, SoakOptions, SoakReport};
pub use trace_store::{TraceStore, DEFAULT_CAPTURE_BUDGET};
