//! Content-addressed result cache.
//!
//! Launches are deterministic (PR 2's digest audit proves it), so a
//! simulation's complete statistics are a pure function of the
//! [`SpecFingerprint`](crate::SpecFingerprint): configuration fingerprint,
//! kernel fingerprint, workload parameters, and format version. Entries
//! live under `results/cache/<key>.bin` in a self-validating container
//! mirroring the checkpoint format (`ckpt.rs`):
//!
//! ```text
//! magic "GCLEXEC1"  (8 bytes)
//! version           (u32 LE)
//! cache key         (u64 LE)
//! payload length    (u64 LE)
//! payload           (fingerprint fields + wall_ms + wire-encoded stats)
//! checksum          (u64 LE, FNV-1a over all preceding bytes)
//! ```
//!
//! Every rejection — absent, truncated, corrupt checksum, version skew,
//! key or fingerprint mismatch, malformed payload — is a silent cache
//! *miss*: the job recomputes and rewrites the entry. A broken cache can
//! cost time but never correctness, mirroring the checkpoint rejection
//! matrix. [`ResultCache::load_checked`] exposes the precise miss reason
//! for tests and diagnostics.

use crate::job::SpecFingerprint;
use gcl_mem::{Dec, Enc, WireError};
use gcl_sim::{fnv_fold_bytes, LaunchStats, FNV_OFFSET};
use std::fmt;
use std::path::{Path, PathBuf};

/// Leading magic of every cache entry.
pub const CACHE_MAGIC: [u8; 8] = *b"GCLEXEC1";

/// Cache format version; part of both the container header and the cache
/// key, so bumping it orphans (rather than misreads) old entries.
///
/// Version 2: `LaunchStats` gained the debug-trace drop counter
/// (`trace_dropped`) in its wire encoding.
pub const CACHE_VERSION: u32 = 2;

/// Why a lookup did not produce a result. Every variant is handled the same
/// way — recompute and rewrite — but tests pin each path down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMiss {
    /// No entry file for this key.
    Absent,
    /// The entry ends before the declared payload and checksum.
    Truncated,
    /// The file does not start with the cache magic.
    BadMagic,
    /// The trailing checksum does not match the entry contents.
    ChecksumMismatch,
    /// The entry was written by a different format version.
    VersionSkew {
        /// Version found in the entry.
        found: u32,
    },
    /// The key recorded in the entry is not the key it was filed under.
    KeyMismatch,
    /// The entry's full fingerprint differs from the requested spec's: a
    /// 64-bit key collision, detected instead of served.
    FingerprintCollision,
    /// The payload failed structural validation while decoding.
    Malformed(&'static str),
}

impl fmt::Display for CacheMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheMiss::Absent => write!(f, "no cache entry"),
            CacheMiss::Truncated => write!(f, "cache entry truncated"),
            CacheMiss::BadMagic => write!(f, "not a cache entry (bad magic)"),
            CacheMiss::ChecksumMismatch => write!(f, "cache entry checksum mismatch"),
            CacheMiss::VersionSkew { found } => write!(
                f,
                "cache entry format version {found} (this build writes {CACHE_VERSION})"
            ),
            CacheMiss::KeyMismatch => write!(f, "cache entry filed under the wrong key"),
            CacheMiss::FingerprintCollision => {
                write!(f, "cache key collision (fingerprints differ)")
            }
            CacheMiss::Malformed(what) => write!(f, "cache entry malformed: {what}"),
        }
    }
}

impl From<WireError> for CacheMiss {
    fn from(e: WireError) -> CacheMiss {
        match e {
            WireError::Truncated => CacheMiss::Truncated,
            WireError::Malformed(what) => CacheMiss::Malformed(what),
        }
    }
}

/// A cached simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// The complete statistics of the original run.
    pub stats: LaunchStats,
    /// Wall-clock milliseconds the original simulation took.
    pub wall_ms: f64,
}

/// A directory of content-addressed result entries.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache { dir: dir.into() }
    }

    /// The conventional location: `results/cache` under the working
    /// directory, next to the suite's `results/run.json` manifest.
    pub fn default_dir() -> ResultCache {
        ResultCache::new("results/cache")
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key`.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.bin"))
    }

    /// Look up `fp`, reporting exactly why a miss missed.
    ///
    /// # Errors
    ///
    /// The [`CacheMiss`] reason; callers on the hot path use [`load`]
    /// (any miss is simply "recompute").
    ///
    /// [`load`]: Self::load
    pub fn load_checked(&self, fp: &SpecFingerprint) -> Result<CachedResult, CacheMiss> {
        let key = fp.key();
        let bytes = std::fs::read(self.entry_path(key)).map_err(|_| CacheMiss::Absent)?;
        const HEADER: usize = 8 + 4 + 8 + 8;
        if bytes.len() < 8 {
            return Err(CacheMiss::Truncated);
        }
        if bytes[..8] != CACHE_MAGIC {
            return Err(CacheMiss::BadMagic);
        }
        if bytes.len() < HEADER + 8 {
            return Err(CacheMiss::Truncated);
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored_sum = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte split"));
        if fnv_fold_bytes(FNV_OFFSET, body) != stored_sum {
            // Distinguish clean truncation from in-place corruption by the
            // declared payload length, as the checkpoint container does.
            let declared =
                u64::from_le_bytes(bytes[20..28].try_into().expect("header slice")) as usize;
            if body.len() - HEADER < declared {
                return Err(CacheMiss::Truncated);
            }
            return Err(CacheMiss::ChecksumMismatch);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("header slice"));
        if version != CACHE_VERSION {
            return Err(CacheMiss::VersionSkew { found: version });
        }
        let stored_key = u64::from_le_bytes(bytes[12..20].try_into().expect("header slice"));
        if stored_key != key {
            return Err(CacheMiss::KeyMismatch);
        }
        let payload_len =
            u64::from_le_bytes(bytes[20..28].try_into().expect("header slice")) as usize;
        let payload = &body[HEADER..];
        if payload.len() != payload_len {
            return Err(CacheMiss::Malformed("payload length mismatch"));
        }
        let mut d = Dec::new(payload);
        let stored_fp = SpecFingerprint {
            workload: d.str()?,
            tiny: d.bool()?,
            config_fp: d.u64()?,
            kernels_fp: d.u64()?,
        };
        if stored_fp != *fp {
            return Err(CacheMiss::FingerprintCollision);
        }
        let wall_ms = d.f64()?;
        let stats = LaunchStats::ckpt_decode(&mut d)?;
        if !d.is_done() {
            return Err(CacheMiss::Malformed("trailing bytes"));
        }
        Ok(CachedResult { stats, wall_ms })
    }

    /// Look up `fp`; any rejection is a plain miss.
    pub fn load(&self, fp: &SpecFingerprint) -> Option<CachedResult> {
        self.load_checked(fp).ok()
    }

    /// Store a fresh result under `fp`'s key, atomically (write-then-rename
    /// in the cache directory, so a crash mid-store never leaves a torn
    /// entry under the final name — it would be rejected anyway).
    ///
    /// # Errors
    ///
    /// A human-readable message on i/o failure. Callers treat store
    /// failures as a warning: the cache is an accelerator, not a ledger.
    pub fn store(
        &self,
        fp: &SpecFingerprint,
        stats: &LaunchStats,
        wall_ms: f64,
    ) -> Result<(), String> {
        let key = fp.key();
        let mut enc = Enc::new();
        enc.str(&fp.workload);
        enc.bool(fp.tiny);
        enc.u64(fp.config_fp);
        enc.u64(fp.kernels_fp);
        enc.f64(wall_ms);
        stats.ckpt_encode(&mut enc);
        let payload = enc.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 36);
        out.extend_from_slice(&CACHE_MAGIC);
        out.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let sum = fnv_fold_bytes(FNV_OFFSET, &out);
        out.extend_from_slice(&sum.to_le_bytes());

        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("cannot create {}: {e}", self.dir.display()))?;
        let path = self.entry_path(key);
        // Unique temp name per writer: two workers storing the same key
        // concurrently each rename a complete image, either of which is
        // valid, instead of interleaving writes into one temp file.
        static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "{key:016x}.tmp.{}.{}",
            std::process::id(),
            WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &out).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("cannot rename {}: {e}", tmp.display()))
    }
}
