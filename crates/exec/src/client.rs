//! A resilient NDJSON client for `gcl serve` daemons and the fleet
//! coordinator.
//!
//! [`ServeClient`] owns one TCP connection and makes it look reliable:
//!
//! * **Reconnect-and-resume.** Every request/response round trip retries
//!   over a fresh connection (capped-exponential backoff with seeded
//!   jitter from [`gcl_rng::backoff`]) when the socket dies. The protocol
//!   verbs are idempotent — `status`/`result` are reads, and `submit` is
//!   deduplicated by cache key on the fleet coordinator — so replaying the
//!   request after a reconnect resumes the session instead of corrupting
//!   it.
//! * **Backpressure retry.** [`ServeClient::submit`] treats a
//!   `queue full` rejection as a signal, not a failure: it sleeps a
//!   jittered backoff and resubmits, up to the configured attempt budget.
//! * **Deadlines everywhere.** Reads and writes carry timeouts, so a
//!   stalled server produces a structured error instead of a hung client.

use crate::proto::{write_frame, FrameError, FrameReader};
use crate::serve::QUEUE_FULL;
use gcl_rng::{backoff::Backoff, Rng};
use gcl_stats::Json;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How a [`ServeClient`] connects and retries.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Server or coordinator address, `HOST:PORT`.
    pub addr: String,
    /// Extra attempts for connects, dropped connections, and `queue full`
    /// rejections (each class budgeted separately).
    pub retries: u64,
    /// Backoff policy between attempts.
    pub backoff: Backoff,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
    /// Deadline for one response, in milliseconds.
    pub response_timeout_ms: u64,
    /// Largest response frame accepted.
    pub max_frame: usize,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            addr: "127.0.0.1:7077".to_string(),
            retries: 8,
            backoff: Backoff::default(),
            seed: 0x0066_6c74, // "flt"
            response_timeout_ms: 120_000,
            max_frame: crate::proto::MAX_FRAME,
        }
    }
}

struct Conn {
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
}

/// One logical session with a serve daemon or fleet coordinator; see the
/// module docs for the reliability contract.
pub struct ServeClient {
    opts: ClientOptions,
    conn: Option<Conn>,
    rng: Rng,
}

impl ServeClient {
    /// Connect to `opts.addr`, retrying with backoff.
    ///
    /// # Errors
    ///
    /// A human-readable message once the attempt budget is exhausted.
    pub fn connect(opts: ClientOptions) -> Result<ServeClient, String> {
        let rng = Rng::new(opts.seed);
        let mut client = ServeClient {
            opts,
            conn: None,
            rng,
        };
        client.ensure_conn()?;
        Ok(client)
    }

    /// The configured server address.
    pub fn addr(&self) -> &str {
        &self.opts.addr
    }

    fn dial(&self) -> Result<Conn, String> {
        let stream = TcpStream::connect(&self.opts.addr)
            .map_err(|e| format!("cannot connect to {}: {e}", self.opts.addr))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .map_err(|e| format!("cannot set read deadline: {e}"))?;
        stream
            .set_write_timeout(Some(Duration::from_millis(5_000)))
            .map_err(|e| format!("cannot set write deadline: {e}"))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(Conn {
            reader: FrameReader::new(stream, self.opts.max_frame),
            writer,
        })
    }

    fn ensure_conn(&mut self) -> Result<(), String> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut last = String::new();
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                let delay = self.opts.backoff.delay_ms(attempt, &mut self.rng);
                std::thread::sleep(Duration::from_millis(delay));
            }
            match self.dial() {
                Ok(conn) => {
                    self.conn = Some(conn);
                    return Ok(());
                }
                Err(e) => last = e,
            }
        }
        Err(format!("{last} (after {} attempts)", self.opts.retries + 1))
    }

    /// One request/response round trip on the current connection.
    fn roundtrip(&mut self, request: &Json) -> Result<Json, String> {
        let conn = self.conn.as_mut().expect("ensure_conn ran");
        write_frame(&mut conn.writer, request).map_err(|e| e.to_string())?;
        let deadline = Instant::now() + Duration::from_millis(self.opts.response_timeout_ms.max(1));
        loop {
            match conn.reader.next_frame() {
                Ok(line) => {
                    return Json::parse(&line).map_err(|e| format!("bad response frame: {e}"))
                }
                Err(FrameError::Timeout) => {
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "no response from {} within {} ms",
                            self.opts.addr, self.opts.response_timeout_ms
                        ));
                    }
                }
                Err(e) => return Err(e.to_string()),
            }
        }
    }

    /// Send `request`, returning the parsed response; reconnects (with
    /// backoff) and replays the request when the connection drops.
    ///
    /// # Errors
    ///
    /// A human-readable message once the retry budget is exhausted.
    pub fn call(&mut self, request: &Json) -> Result<Json, String> {
        let mut last = String::new();
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                let delay = self.opts.backoff.delay_ms(attempt, &mut self.rng);
                std::thread::sleep(Duration::from_millis(delay));
            }
            if let Err(e) = self.ensure_conn() {
                last = e;
                continue;
            }
            match self.roundtrip(request) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    // Anything that breaks the round trip invalidates the
                    // stream; reconnect before the replay.
                    self.conn = None;
                    last = e;
                }
            }
        }
        Err(format!("{last} (after {} attempts)", self.opts.retries + 1))
    }

    /// Submit one job, honoring `queue full` backpressure with bounded
    /// jittered retries. Returns the job id.
    ///
    /// # Errors
    ///
    /// The server's structured rejection, or the backpressure budget
    /// running out.
    pub fn submit(&mut self, workload: &str, tiny: bool, sanitize: bool) -> Result<u64, String> {
        let request = Json::obj(vec![
            ("op", Json::Str("submit".into())),
            ("workload", Json::Str(workload.into())),
            ("tiny", Json::Bool(tiny)),
            ("sanitize", Json::Bool(sanitize)),
        ]);
        let mut last = String::new();
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                let delay = self.opts.backoff.delay_ms(attempt, &mut self.rng);
                std::thread::sleep(Duration::from_millis(delay));
            }
            let response = self.call(&request)?;
            if matches!(response.get("ok"), Some(Json::Bool(true))) {
                return response
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("submit response has no id: {response}"));
            }
            let error = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string();
            if !error.starts_with(QUEUE_FULL) {
                return Err(error);
            }
            last = error;
        }
        Err(format!(
            "{last} (after {} backpressure retries)",
            self.opts.retries
        ))
    }

    /// Fetch the state of job `id` (`queued` / `running` / `done` /
    /// `failed`) as the raw response object.
    ///
    /// # Errors
    ///
    /// The server's structured rejection or a transport failure.
    pub fn result(&mut self, id: u64) -> Result<Json, String> {
        let response = self.call(&Json::obj(vec![
            ("op", Json::Str("result".into())),
            ("id", Json::UInt(id)),
        ]))?;
        if matches!(response.get("ok"), Some(Json::Bool(true))) {
            Ok(response)
        } else {
            Err(response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string())
        }
    }

    /// Poll job `id` until it reaches `done` or `failed`, or `timeout`
    /// elapses. Returns the terminal response object.
    ///
    /// # Errors
    ///
    /// A transport failure, a structured rejection, or the deadline.
    pub fn wait(&mut self, id: u64, timeout: Duration) -> Result<Json, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let response = self.result(id)?;
            match response.get("state").and_then(Json::as_str) {
                Some("done" | "failed") => return Ok(response),
                _ => {
                    if Instant::now() >= deadline {
                        return Err(format!("job {id} did not finish within {timeout:?}"));
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    /// Fetch the server's status object.
    ///
    /// # Errors
    ///
    /// A transport failure or a structured rejection.
    pub fn status(&mut self) -> Result<Json, String> {
        self.call(&Json::obj(vec![("op", Json::Str("status".into()))]))
    }

    /// Request a graceful drain.
    ///
    /// # Errors
    ///
    /// A transport failure.
    pub fn shutdown(&mut self) -> Result<Json, String> {
        self.call(&Json::obj(vec![("op", Json::Str("shutdown".into()))]))
    }
}
