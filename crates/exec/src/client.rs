//! A resilient NDJSON client for `gcl serve` daemons and the fleet
//! coordinator.
//!
//! [`ServeClient`] owns one TCP connection and makes it look reliable:
//!
//! * **Reconnect-and-resume.** Every request/response round trip retries
//!   over a fresh connection (capped-exponential backoff with seeded
//!   jitter from [`gcl_rng::backoff`]) when the socket dies. The protocol
//!   verbs are idempotent — `status`/`result` are reads, and `submit` is
//!   deduplicated by cache key on the fleet coordinator — so replaying the
//!   request after a reconnect resumes the session instead of corrupting
//!   it.
//! * **Backpressure retry.** [`ServeClient::submit`] treats a
//!   `queue full` rejection as a signal, not a failure: it sleeps a
//!   jittered backoff and resubmits, up to the configured attempt budget.
//! * **Deadlines everywhere.** Reads and writes carry timeouts, so a
//!   stalled server produces a structured error instead of a hung client.

use crate::proto::{write_frame, FrameError, FrameReader};
use crate::serve::QUEUE_FULL;
use gcl_rng::{backoff::Backoff, Rng};
use gcl_stats::Json;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How a [`ServeClient`] connects and retries.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Server or coordinator address, `HOST:PORT`.
    pub addr: String,
    /// Extra attempts for connects, dropped connections, and `queue full`
    /// rejections (each class budgeted separately).
    pub retries: u64,
    /// Backoff policy between attempts.
    pub backoff: Backoff,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
    /// Deadline for one response, in milliseconds.
    pub response_timeout_ms: u64,
    /// Largest response frame accepted.
    pub max_frame: usize,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            addr: "127.0.0.1:7077".to_string(),
            retries: 8,
            backoff: Backoff::default(),
            seed: 0x0066_6c74, // "flt"
            response_timeout_ms: 120_000,
            max_frame: crate::proto::MAX_FRAME,
        }
    }
}

struct Conn {
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
}

fn dial_conn(opts: &ClientOptions) -> Result<Conn, String> {
    let stream = TcpStream::connect(&opts.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", opts.addr))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| format!("cannot set read deadline: {e}"))?;
    stream
        .set_write_timeout(Some(Duration::from_millis(5_000)))
        .map_err(|e| format!("cannot set write deadline: {e}"))?;
    let writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    Ok(Conn {
        reader: FrameReader::new(stream, opts.max_frame),
        writer,
    })
}

/// One logical session with a serve daemon or fleet coordinator; see the
/// module docs for the reliability contract.
pub struct ServeClient {
    opts: ClientOptions,
    conn: Option<Conn>,
    rng: Rng,
}

impl ServeClient {
    /// Connect to `opts.addr`, retrying with backoff.
    ///
    /// # Errors
    ///
    /// A human-readable message once the attempt budget is exhausted.
    pub fn connect(opts: ClientOptions) -> Result<ServeClient, String> {
        let rng = Rng::new(opts.seed);
        let mut client = ServeClient {
            opts,
            conn: None,
            rng,
        };
        client.ensure_conn()?;
        Ok(client)
    }

    /// The configured server address.
    pub fn addr(&self) -> &str {
        &self.opts.addr
    }

    fn ensure_conn(&mut self) -> Result<(), String> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut last = String::new();
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                let delay = self.opts.backoff.delay_ms(attempt, &mut self.rng);
                std::thread::sleep(Duration::from_millis(delay));
            }
            match dial_conn(&self.opts) {
                Ok(conn) => {
                    self.conn = Some(conn);
                    return Ok(());
                }
                Err(e) => last = e,
            }
        }
        Err(format!("{last} (after {} attempts)", self.opts.retries + 1))
    }

    /// One request/response round trip on the current connection.
    fn roundtrip(&mut self, request: &Json) -> Result<Json, String> {
        let conn = self.conn.as_mut().expect("ensure_conn ran");
        write_frame(&mut conn.writer, request).map_err(|e| e.to_string())?;
        let deadline = Instant::now() + Duration::from_millis(self.opts.response_timeout_ms.max(1));
        loop {
            match conn.reader.next_frame() {
                Ok(line) => {
                    return Json::parse(&line).map_err(|e| format!("bad response frame: {e}"))
                }
                Err(FrameError::Timeout) => {
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "no response from {} within {} ms",
                            self.opts.addr, self.opts.response_timeout_ms
                        ));
                    }
                }
                Err(e) => return Err(e.to_string()),
            }
        }
    }

    /// Send `request`, returning the parsed response; reconnects (with
    /// backoff) and replays the request when the connection drops.
    ///
    /// # Errors
    ///
    /// A human-readable message once the retry budget is exhausted.
    pub fn call(&mut self, request: &Json) -> Result<Json, String> {
        let mut last = String::new();
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                let delay = self.opts.backoff.delay_ms(attempt, &mut self.rng);
                std::thread::sleep(Duration::from_millis(delay));
            }
            if let Err(e) = self.ensure_conn() {
                last = e;
                continue;
            }
            match self.roundtrip(request) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    // Anything that breaks the round trip invalidates the
                    // stream; reconnect before the replay.
                    self.conn = None;
                    last = e;
                }
            }
        }
        Err(format!("{last} (after {} attempts)", self.opts.retries + 1))
    }

    /// Submit one job, honoring `queue full` backpressure with bounded
    /// jittered retries. Returns the job id.
    ///
    /// # Errors
    ///
    /// The server's structured rejection, or the backpressure budget
    /// running out.
    pub fn submit(&mut self, workload: &str, tiny: bool, sanitize: bool) -> Result<u64, String> {
        let request = Json::obj(vec![
            ("op", Json::Str("submit".into())),
            ("workload", Json::Str(workload.into())),
            ("tiny", Json::Bool(tiny)),
            ("sanitize", Json::Bool(sanitize)),
        ]);
        let mut last = String::new();
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                let delay = self.opts.backoff.delay_ms(attempt, &mut self.rng);
                std::thread::sleep(Duration::from_millis(delay));
            }
            let response = self.call(&request)?;
            if matches!(response.get("ok"), Some(Json::Bool(true))) {
                return response
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("submit response has no id: {response}"));
            }
            let error = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string();
            if !error.starts_with(QUEUE_FULL) {
                return Err(error);
            }
            last = error;
        }
        Err(format!(
            "{last} (after {} backpressure retries)",
            self.opts.retries
        ))
    }

    /// Fetch the state of job `id` (`queued` / `running` / `done` /
    /// `failed`) as the raw response object.
    ///
    /// # Errors
    ///
    /// The server's structured rejection or a transport failure.
    pub fn result(&mut self, id: u64) -> Result<Json, String> {
        let response = self.call(&Json::obj(vec![
            ("op", Json::Str("result".into())),
            ("id", Json::UInt(id)),
        ]))?;
        if matches!(response.get("ok"), Some(Json::Bool(true))) {
            Ok(response)
        } else {
            Err(response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string())
        }
    }

    /// Poll job `id` until it reaches `done` or `failed`, or `timeout`
    /// elapses. Returns the terminal response object.
    ///
    /// # Errors
    ///
    /// A transport failure, a structured rejection, or the deadline.
    pub fn wait(&mut self, id: u64, timeout: Duration) -> Result<Json, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let response = self.result(id)?;
            match response.get("state").and_then(Json::as_str) {
                Some("done" | "failed") => return Ok(response),
                _ => {
                    if Instant::now() >= deadline {
                        return Err(format!("job {id} did not finish within {timeout:?}"));
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    /// Fetch the server's status object.
    ///
    /// # Errors
    ///
    /// A transport failure or a structured rejection.
    pub fn status(&mut self) -> Result<Json, String> {
        self.call(&Json::obj(vec![("op", Json::Str("status".into()))]))
    }

    /// Request a graceful drain.
    ///
    /// # Errors
    ///
    /// A transport failure.
    pub fn shutdown(&mut self) -> Result<Json, String> {
        self.call(&Json::obj(vec![("op", Json::Str("shutdown".into()))]))
    }
}

/// What a session submit produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSubmit {
    /// The coordinator's job id.
    pub id: u64,
    /// The submit joined an existing job instead of queueing a new one.
    pub deduped: bool,
}

/// A streaming session with the fleet coordinator.
///
/// Where [`ServeClient`] polls, a `SessionClient` attaches with the
/// `session` verb and receives the coordinator's NDJSON event stream —
/// `queued` / `leased` / `reassigned` / `done` / `failed` per subscribed
/// job, plus unsequenced `depth` heartbeats. Events carry a monotonic
/// `seq`; the client tracks its cursor so a dropped connection re-attaches
/// with `{"op":"session","id":…,"from":cursor}` and the coordinator
/// replays everything missed from the session's event log. The same
/// connection still accepts request verbs ([`SessionClient::call`]):
/// responses are told apart from events by the absence of an `event`
/// field, and any events that arrive while waiting are buffered for the
/// next [`SessionClient::next_event`].
pub struct SessionClient {
    opts: ClientOptions,
    conn: Option<Conn>,
    rng: Rng,
    session: Option<String>,
    cursor: u64,
    truncated: bool,
    events: std::collections::VecDeque<Json>,
}

impl SessionClient {
    /// Open a fresh session, or re-attach to `resume` and replay missed
    /// events.
    ///
    /// # Errors
    ///
    /// A human-readable message when the coordinator cannot be reached,
    /// refuses the attach (e.g. an unknown resume id), or the retry
    /// budget runs out.
    pub fn open(opts: ClientOptions, resume: Option<&str>) -> Result<SessionClient, String> {
        let rng = Rng::new(opts.seed);
        let mut client = SessionClient {
            opts,
            conn: None,
            rng,
            session: resume.map(str::to_string),
            cursor: 0,
            truncated: false,
            events: std::collections::VecDeque::new(),
        };
        client.ensure_attached()?;
        Ok(client)
    }

    /// The coordinator-assigned session id (stable across re-attaches).
    pub fn id(&self) -> &str {
        self.session.as_deref().unwrap_or("")
    }

    /// Whether any replay skipped events the coordinator had already
    /// evicted from the session's bounded log.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    fn attach_once(&mut self) -> Result<(), String> {
        let mut conn = dial_conn(&self.opts)?;
        let mut fields = vec![("op", Json::Str("session".into()))];
        if let Some(sid) = &self.session {
            fields.push(("id", Json::Str(sid.clone())));
            fields.push(("from", Json::UInt(self.cursor)));
        }
        write_frame(&mut conn.writer, &Json::obj(fields)).map_err(|e| e.to_string())?;
        let deadline = Instant::now() + Duration::from_millis(self.opts.response_timeout_ms.max(1));
        let ack = loop {
            match conn.reader.next_frame() {
                Ok(line) => break Json::parse(&line).map_err(|e| format!("bad session ack: {e}")),
                Err(FrameError::Timeout) => {
                    if Instant::now() >= deadline {
                        break Err(format!(
                            "no session ack from {} within {} ms",
                            self.opts.addr, self.opts.response_timeout_ms
                        ));
                    }
                }
                Err(e) => break Err(e.to_string()),
            }
        }?;
        if !matches!(ack.get("ok"), Some(Json::Bool(true))) {
            return Err(ack
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("coordinator refused session")
                .to_string());
        }
        let sid = ack
            .get("session")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("session ack has no id: {ack}"))?;
        self.session = Some(sid.to_string());
        if matches!(ack.get("truncated"), Some(Json::Bool(true))) {
            self.truncated = true;
        }
        self.conn = Some(conn);
        Ok(())
    }

    fn ensure_attached(&mut self) -> Result<(), String> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut last = String::new();
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                let delay = self.opts.backoff.delay_ms(attempt, &mut self.rng);
                std::thread::sleep(Duration::from_millis(delay));
            }
            match self.attach_once() {
                Ok(()) => return Ok(()),
                Err(e) => {
                    // An attach rejection is final (bad resume id), but a
                    // transport failure deserves the retry budget.
                    if e.contains("unknown session") {
                        return Err(e);
                    }
                    last = e;
                }
            }
        }
        Err(format!("{last} (after {} attempts)", self.opts.retries + 1))
    }

    /// Record an inbound frame as an event, advancing the replay cursor.
    fn buffer_event(&mut self, frame: Json) {
        if let Some(seq) = frame.get("seq").and_then(Json::as_u64) {
            self.cursor = self.cursor.max(seq + 1);
        }
        self.events.push_back(frame);
    }

    /// Send a request verb on the session connection and return its
    /// response; events that arrive first are buffered for
    /// [`SessionClient::next_event`]. Reconnects (re-attaching with the
    /// cursor) and replays on transport failure.
    ///
    /// # Errors
    ///
    /// A human-readable message once the retry budget is exhausted.
    pub fn call(&mut self, request: &Json) -> Result<Json, String> {
        let mut last = String::new();
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                let delay = self.opts.backoff.delay_ms(attempt, &mut self.rng);
                std::thread::sleep(Duration::from_millis(delay));
            }
            if let Err(e) = self.ensure_attached() {
                last = e;
                continue;
            }
            match self.roundtrip(request) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    self.conn = None;
                    last = e;
                }
            }
        }
        Err(format!("{last} (after {} attempts)", self.opts.retries + 1))
    }

    fn roundtrip(&mut self, request: &Json) -> Result<Json, String> {
        {
            let conn = self.conn.as_mut().expect("ensure_attached ran");
            write_frame(&mut conn.writer, request).map_err(|e| e.to_string())?;
        }
        let deadline = Instant::now() + Duration::from_millis(self.opts.response_timeout_ms.max(1));
        loop {
            let next = {
                let conn = self.conn.as_mut().expect("ensure_attached ran");
                conn.reader.next_frame()
            };
            match next {
                Ok(line) => {
                    let frame =
                        Json::parse(&line).map_err(|e| format!("bad response frame: {e}"))?;
                    if frame.get("event").is_some() {
                        self.buffer_event(frame);
                        continue;
                    }
                    return Ok(frame);
                }
                Err(FrameError::Timeout) => {
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "no response from {} within {} ms",
                            self.opts.addr, self.opts.response_timeout_ms
                        ));
                    }
                }
                Err(e) => return Err(e.to_string()),
            }
        }
    }

    /// Pop the next event, waiting up to `timeout` for one to arrive.
    /// Returns `Ok(None)` on a quiet timeout. Transparently re-attaches
    /// (replaying missed events) when the connection drops mid-wait — a
    /// coordinator restart shows up as quiet timeouts while it redials,
    /// never as a transport error, so `gcl suite --fleet` rides out a
    /// `kill -9` + `--recover` cycle on its quiet-limit budget alone.
    ///
    /// # Errors
    ///
    /// The coordinator explicitly rejecting this session id (it restarted
    /// without recovering the session log); plain connect failures are
    /// retried until `timeout` instead.
    pub fn next_event(&mut self, timeout: Duration) -> Result<Option<Json>, String> {
        let deadline = Instant::now() + timeout;
        let mut redial_attempt = 0u64;
        loop {
            if let Some(event) = self.events.pop_front() {
                return Ok(Some(event));
            }
            if self.conn.is_none() {
                match self.ensure_attached() {
                    Ok(()) => redial_attempt = 0,
                    // A coordinator that answers but disowns the session
                    // can never deliver our events: that stays fatal.
                    Err(e) if e.contains("unknown session") => return Err(e),
                    Err(_) => {
                        // Coordinator down or mid-restart: keep dialling
                        // on the backoff schedule until the caller's
                        // timeout, then report a quiet interval.
                        if Instant::now() >= deadline {
                            return Ok(None);
                        }
                        redial_attempt += 1;
                        let delay = self.opts.backoff.delay_ms(redial_attempt, &mut self.rng);
                        std::thread::sleep(Duration::from_millis(delay));
                        continue;
                    }
                }
            }
            let next = {
                let conn = self.conn.as_mut().expect("ensure_attached ran");
                conn.reader.next_frame()
            };
            match next {
                Ok(line) => {
                    let Ok(frame) = Json::parse(&line) else {
                        continue;
                    };
                    if frame.get("event").is_some() {
                        self.buffer_event(frame);
                    }
                    // A response with no waiting request (stale reply from
                    // before a reconnect) is dropped on the floor.
                }
                Err(FrameError::Timeout) => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
                Err(_) => {
                    // Stream died: force a re-attach on the next spin,
                    // which replays anything we missed from the log.
                    self.conn = None;
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
            }
        }
    }

    /// Submit one job tagged with this session (its lifecycle events flow
    /// into the stream), honoring shed backpressure with bounded jittered
    /// retries.
    ///
    /// # Errors
    ///
    /// The coordinator's structured rejection, or the backpressure budget
    /// running out.
    pub fn submit(
        &mut self,
        workload: &str,
        tiny: bool,
        sanitize: bool,
    ) -> Result<SessionSubmit, String> {
        let sid = self.id().to_string();
        let request = Json::obj(vec![
            ("op", Json::Str("submit".into())),
            ("workload", Json::Str(workload.into())),
            ("tiny", Json::Bool(tiny)),
            ("sanitize", Json::Bool(sanitize)),
            ("session", Json::Str(sid)),
        ]);
        let mut last = String::new();
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                let delay = self.opts.backoff.delay_ms(attempt, &mut self.rng);
                std::thread::sleep(Duration::from_millis(delay));
            }
            let response = self.call(&request)?;
            if matches!(response.get("ok"), Some(Json::Bool(true))) {
                let id = response
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("submit response has no id: {response}"))?;
                let deduped = matches!(response.get("deduped"), Some(Json::Bool(true)));
                return Ok(SessionSubmit { id, deduped });
            }
            let error = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string();
            let shed = matches!(response.get("shed"), Some(Json::Bool(true)));
            if !shed && !error.starts_with(QUEUE_FULL) {
                return Err(error);
            }
            last = error;
        }
        Err(format!(
            "{last} (after {} backpressure retries)",
            self.opts.retries
        ))
    }

    /// Fetch the state of job `id` on the session connection.
    ///
    /// # Errors
    ///
    /// The coordinator's structured rejection or a transport failure.
    pub fn result(&mut self, id: u64) -> Result<Json, String> {
        let response = self.call(&Json::obj(vec![
            ("op", Json::Str("result".into())),
            ("id", Json::UInt(id)),
        ]))?;
        if matches!(response.get("ok"), Some(Json::Bool(true))) {
            Ok(response)
        } else {
            Err(response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string())
        }
    }
}
