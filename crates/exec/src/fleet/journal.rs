//! Write-ahead journal for the fleet coordinator.
//!
//! `gcl coordinate --journal PATH` appends one checksummed record per
//! job-table transition (submit / lease / done / failed / reclaim),
//! session attach/detach, and replica-directory change, so a coordinator
//! killed at an arbitrary instant can be restarted with `--recover` and
//! resume the sweep with zero lost acknowledged jobs. The format reuses
//! the checkpoint wire codec ([`gcl_mem::Enc`]/[`gcl_mem::Dec`]): the file
//! opens with an 8-byte magic and a little-endian `u16` version, then
//! carries records framed as
//!
//! ```text
//! u64 payload-length | payload bytes | u64 FNV checksum over the payload
//! ```
//!
//! Appends are fsync-batched: the coordinator calls [`Journal::sync`] once
//! per supervisor tick (and before acknowledging a submit), not per
//! record. Replay tolerates a torn tail — a record cut short by the crash,
//! or one whose checksum no longer folds — by truncating the file back to
//! the last valid record and recovering the clean prefix; only a foreign
//! magic or an unknown format version is unrecoverable (the operator
//! pointed the coordinator at the wrong file). Periodic compaction
//! rewrites the journal as a single [`Record::Snapshot`] so it stays
//! bounded no matter how long the fleet runs.

use gcl_mem::{Dec, Enc, WireError};
use gcl_sim::{fnv_fold_bytes, FNV_OFFSET};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The journal's opening magic: file format identity, checked verbatim.
pub const JOURNAL_MAGIC: &[u8; 8] = b"gcljrnl\n";

/// Current journal format version, written after the magic.
pub const JOURNAL_VERSION: u16 = 1;

/// Magic plus version: every journal starts with exactly these bytes.
const HEADER_LEN: u64 = 10;

/// Why a journal operation failed.
#[derive(Debug)]
pub enum JournalError {
    /// The filesystem said no; retrying with the same path is pointless.
    Io {
        /// Journal path the operation touched.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        error: String,
    },
    /// The file is not a journal this build can read: wrong magic or a
    /// format version from a different build. Torn tails are *not* this —
    /// they are truncated and recovered silently.
    Unrecoverable {
        /// Journal path that was rejected.
        path: PathBuf,
        /// What exactly disqualified it.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, error } => {
                write!(f, "journal {}: {error}", path.display())
            }
            JournalError::Unrecoverable { path, reason } => {
                write!(f, "journal {} is unrecoverable: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// A coordinator counter mirrored into the journal, so recovered `status`
/// output (and the outcome table) carries on from the pre-crash totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JCounter {
    /// Replica probe answered by the rendezvous primary.
    PrimaryHits,
    /// Replica probe answered by a non-primary survivor.
    ReadThrough,
    /// Write-repairs issued after a read-through.
    Repairs,
    /// Probe walks that exhausted the replica set.
    Misses,
    /// Submits deduplicated against a live or finished job.
    DedupHits,
    /// Structured overload sheds.
    Sheds,
    /// Keys proactively re-fanned by the rebalancer.
    Rebalances,
    /// Leases resumed from worker inventory after recovery.
    Resumed,
}

impl JCounter {
    fn to_u8(self) -> u8 {
        match self {
            JCounter::PrimaryHits => 0,
            JCounter::ReadThrough => 1,
            JCounter::Repairs => 2,
            JCounter::Misses => 3,
            JCounter::DedupHits => 4,
            JCounter::Sheds => 5,
            JCounter::Rebalances => 6,
            JCounter::Resumed => 7,
        }
    }

    fn from_u8(v: u8) -> Result<JCounter, WireError> {
        Ok(match v {
            0 => JCounter::PrimaryHits,
            1 => JCounter::ReadThrough,
            2 => JCounter::Repairs,
            3 => JCounter::Misses,
            4 => JCounter::DedupHits,
            5 => JCounter::Sheds,
            6 => JCounter::Rebalances,
            7 => JCounter::Resumed,
            _ => return Err(WireError::Malformed("counter id")),
        })
    }
}

/// One durable coordinator event.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job was accepted into the table.
    Submit {
        /// Job id (coordinator-assigned, starts at 1).
        id: u64,
        /// Content-addressed cache key of the spec.
        key: u64,
        /// Workload name.
        workload: String,
        /// Tiny input scale.
        tiny: bool,
        /// Sanitizer on.
        sanitize: bool,
        /// Explicit cycle budget, when the submit carried one.
        max_cycles: Option<u64>,
        /// Session subscribed at submit time, if any.
        session: Option<String>,
    },
    /// An additional session subscribed to an existing job (dedup join).
    Subscribe {
        /// Job id.
        id: u64,
        /// Session id.
        session: String,
    },
    /// The job was leased (or a recovered lease was resumed) to a worker.
    Lease {
        /// Job id.
        id: u64,
        /// Worker name, for the audit trail.
        worker: String,
    },
    /// A lease was pulled back (worker death, expiry, corrupt result) and
    /// the job requeued.
    Reclaim {
        /// Job id.
        id: u64,
        /// Why the lease was reclaimed.
        reason: String,
    },
    /// The job finished; `payload` is the raw wire-encoded `LaunchStats`
    /// (already checksum-verified by the coordinator before journaling).
    Done {
        /// Job id.
        id: u64,
        /// Result came from a replica or cache rather than a fresh run.
        cached: bool,
        /// Wall-clock ms of the producing simulation.
        wall_ms: f64,
        /// Wall-clock ms the executing worker held the lease.
        worker_wall_ms: f64,
        /// Worker that produced (or served) the result.
        worker: String,
        /// Wire-encoded `LaunchStats` bytes.
        payload: Vec<u8>,
    },
    /// The job failed terminally.
    Failed {
        /// Job id.
        id: u64,
        /// The structured error message.
        error: String,
    },
    /// A streaming session was created.
    SessionOpen {
        /// Session id (`s-N`).
        session: String,
    },
    /// A streaming session's client went away (sessions stay resumable;
    /// this record is audit trail, not deletion).
    SessionDetach {
        /// Session id.
        session: String,
    },
    /// The replica directory gained a key (fan-out, repair, or rebalance
    /// sent `count` store frames for it).
    Stored {
        /// Cache key now replicated.
        key: u64,
        /// Store frames sent in this change.
        count: u64,
    },
    /// A counter advanced by `delta`.
    Counter {
        /// Which counter.
        counter: JCounter,
        /// Amount added.
        delta: u64,
    },
    /// `reset` cleared the job table (replica directory survives).
    Reset,
    /// A compaction checkpoint: complete coordinator state at a point in
    /// time. Replay restarts from the latest one.
    Snapshot(SnapState),
}

/// Terminal-or-queued state of one job inside a snapshot / recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapJobState {
    /// Not finished: requeue on recovery.
    Queued {
        /// A worker may still hold this job (lease journaled, no reclaim
        /// or done seen). Recovery holds it briefly so a re-joining
        /// worker's inventory can resume the lease instead of re-running.
        was_leased: bool,
    },
    /// Finished successfully; the payload is the wire-encoded stats.
    Done {
        /// Served from replica/cache.
        cached: bool,
        /// Producing simulation's wall ms.
        wall_ms: f64,
        /// Lease-holder wall ms.
        worker_wall_ms: f64,
        /// Producing worker.
        worker: String,
        /// Wire-encoded `LaunchStats`.
        payload: Vec<u8>,
    },
    /// Failed terminally with this message.
    Failed(String),
}

/// One job in a snapshot / recovered state.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapJob {
    /// Job id.
    pub id: u64,
    /// Content-addressed cache key.
    pub key: u64,
    /// Workload name.
    pub workload: String,
    /// Tiny input scale.
    pub tiny: bool,
    /// Sanitizer on.
    pub sanitize: bool,
    /// Explicit cycle budget, when one was submitted.
    pub max_cycles: Option<u64>,
    /// Sessions subscribed to this job.
    pub sessions: Vec<String>,
    /// Where the job stands.
    pub state: SnapJobState,
}

/// Counter totals inside a snapshot / recovered state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapCounters {
    /// Fresh simulations run.
    pub sims: u64,
    /// Replica store frames sent.
    pub stores: u64,
    /// Primary replica probe hits.
    pub primary_hits: u64,
    /// Non-primary replica probe hits.
    pub read_through: u64,
    /// Write-repairs issued.
    pub repairs: u64,
    /// Probe walks that found nothing.
    pub misses: u64,
    /// Deduplicated submits.
    pub dedup_hits: u64,
    /// Structured sheds.
    pub sheds: u64,
    /// Proactive rebalances.
    pub rebalances: u64,
    /// Leases resumed from inventory.
    pub resumed: u64,
}

impl SnapCounters {
    fn bump(&mut self, c: JCounter, delta: u64) {
        let slot = match c {
            JCounter::PrimaryHits => &mut self.primary_hits,
            JCounter::ReadThrough => &mut self.read_through,
            JCounter::Repairs => &mut self.repairs,
            JCounter::Misses => &mut self.misses,
            JCounter::DedupHits => &mut self.dedup_hits,
            JCounter::Sheds => &mut self.sheds,
            JCounter::Rebalances => &mut self.rebalances,
            JCounter::Resumed => &mut self.resumed,
        };
        *slot = slot.saturating_add(delta);
    }
}

/// One streaming session inside a snapshot / recovered state.
///
/// `events` counts (an upper bound on) the sequenced events the
/// pre-crash coordinator delivered to this session. Recovery restarts
/// the session's sequence numbering *at* this count, so a client whose
/// replay cursor points anywhere into the lost in-memory log re-attaches
/// cleanly: everything the recovered coordinator emits carries a `seq`
/// at or past any cursor the client could hold. Over-counting only costs
/// a `truncated` flag on re-attach; under-counting would make clients
/// skip events, so the bookkeeping rounds up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapSession {
    /// Session id (`s-N`).
    pub id: String,
    /// Upper bound on sequenced events delivered pre-crash.
    pub events: u64,
}

/// Complete durable coordinator state: what a snapshot holds and what
/// replay produces. Worker membership is deliberately absent — workers are
/// ground truth and re-announce themselves (plus their replica inventory)
/// when they rejoin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapState {
    /// Next job id to assign.
    pub next_id: u64,
    /// Every live-or-terminal job, in id order.
    pub jobs: Vec<SnapJob>,
    /// Keys believed replicated somewhere in the fleet.
    pub stored: Vec<u64>,
    /// Next session number to assign.
    pub session_next: u64,
    /// Sessions that have been opened, with their event watermarks.
    pub sessions: Vec<SnapSession>,
    /// Counter totals.
    pub counters: SnapCounters,
}

impl SnapState {
    fn apply(&mut self, rec: Record) {
        match rec {
            Record::Submit {
                id,
                key,
                workload,
                tiny,
                sanitize,
                max_cycles,
                session,
            } => {
                self.next_id = self.next_id.max(id);
                let subscriber = session.clone();
                self.jobs.push(SnapJob {
                    id,
                    key,
                    workload,
                    tiny,
                    sanitize,
                    max_cycles,
                    sessions: session.into_iter().collect(),
                    state: SnapJobState::Queued { was_leased: false },
                });
                // The subscriber saw one sequenced "queued" event.
                if let Some(sid) = subscriber {
                    self.bump_session(&sid, 1);
                }
            }
            Record::Subscribe { id, session } => {
                // A dedup join delivers a synthetic "queued" and, for an
                // already-done job, a synthetic "done": count two (rounding
                // up is safe, see [`SnapSession`]).
                self.bump_session(&session, 2);
                if let Some(j) = self.job_mut(id) {
                    if !j.sessions.contains(&session) {
                        j.sessions.push(session);
                    }
                }
            }
            Record::Lease { id, .. } => {
                let subs = if let Some(j) = self.job_mut(id) {
                    if matches!(j.state, SnapJobState::Queued { .. }) {
                        j.state = SnapJobState::Queued { was_leased: true };
                    }
                    j.sessions.clone()
                } else {
                    Vec::new()
                };
                self.bump_each(&subs);
            }
            Record::Reclaim { id, .. } => {
                let subs = if let Some(j) = self.job_mut(id) {
                    if matches!(j.state, SnapJobState::Queued { .. }) {
                        j.state = SnapJobState::Queued { was_leased: false };
                    }
                    j.sessions.clone()
                } else {
                    Vec::new()
                };
                self.bump_each(&subs);
            }
            Record::Done {
                id,
                cached,
                wall_ms,
                worker_wall_ms,
                worker,
                payload,
            } => {
                if !cached {
                    self.counters.sims = self.counters.sims.saturating_add(1);
                }
                let subs = if let Some(j) = self.job_mut(id) {
                    j.state = SnapJobState::Done {
                        cached,
                        wall_ms,
                        worker_wall_ms,
                        worker,
                        payload,
                    };
                    j.sessions.clone()
                } else {
                    Vec::new()
                };
                self.bump_each(&subs);
            }
            Record::Failed { id, error } => {
                let subs = if let Some(j) = self.job_mut(id) {
                    j.state = SnapJobState::Failed(error);
                    j.sessions.clone()
                } else {
                    Vec::new()
                };
                self.bump_each(&subs);
            }
            Record::SessionOpen { session } => {
                if let Some(n) = session
                    .strip_prefix("s-")
                    .and_then(|d| d.parse::<u64>().ok())
                {
                    self.session_next = self.session_next.max(n);
                }
                if !self.sessions.iter().any(|s| s.id == session) {
                    self.sessions.push(SnapSession {
                        id: session,
                        events: 0,
                    });
                }
            }
            // Sessions stay resumable after the client detaches; the
            // record is an audit line, not a deletion.
            Record::SessionDetach { .. } => {}
            Record::Stored { key, count } => {
                self.counters.stores = self.counters.stores.saturating_add(count);
                if !self.stored.contains(&key) {
                    self.stored.push(key);
                }
            }
            Record::Counter { counter, delta } => self.counters.bump(counter, delta),
            Record::Reset => self.jobs.clear(),
            Record::Snapshot(state) => *self = state,
        }
    }

    fn job_mut(&mut self, id: u64) -> Option<&mut SnapJob> {
        self.jobs.iter_mut().find(|j| j.id == id)
    }

    fn bump_session(&mut self, sid: &str, delta: u64) {
        match self.sessions.iter_mut().find(|s| s.id == sid) {
            Some(s) => s.events = s.events.saturating_add(delta),
            // Subscription seen before its SessionOpen (torn prefix):
            // materialize the session so the watermark still counts.
            None => self.sessions.push(SnapSession {
                id: sid.to_string(),
                events: delta,
            }),
        }
    }

    fn bump_each(&mut self, sids: &[String]) {
        for sid in sids {
            self.bump_session(sid, 1);
        }
    }
}

/// What [`Journal::open_recover`] reconstructed.
#[derive(Debug)]
pub struct RecoveredState {
    /// The folded state: latest snapshot plus every tail record.
    pub state: SnapState,
    /// Whether a torn tail was truncated away.
    pub truncated: bool,
    /// Records replayed (snapshot counts as one).
    pub records: u64,
}

fn enc_record(rec: &Record) -> Vec<u8> {
    let mut e = Enc::new();
    match rec {
        Record::Submit {
            id,
            key,
            workload,
            tiny,
            sanitize,
            max_cycles,
            session,
        } => {
            e.u8(0);
            e.u64(*id);
            e.u64(*key);
            e.str(workload);
            e.bool(*tiny);
            e.bool(*sanitize);
            e.opt(max_cycles, |e, v| e.u64(*v));
            e.opt(session, |e, v| e.str(v));
        }
        Record::Subscribe { id, session } => {
            e.u8(1);
            e.u64(*id);
            e.str(session);
        }
        Record::Lease { id, worker } => {
            e.u8(2);
            e.u64(*id);
            e.str(worker);
        }
        Record::Reclaim { id, reason } => {
            e.u8(3);
            e.u64(*id);
            e.str(reason);
        }
        Record::Done {
            id,
            cached,
            wall_ms,
            worker_wall_ms,
            worker,
            payload,
        } => {
            e.u8(4);
            e.u64(*id);
            e.bool(*cached);
            e.f64(*wall_ms);
            e.f64(*worker_wall_ms);
            e.str(worker);
            e.bytes(payload);
        }
        Record::Failed { id, error } => {
            e.u8(5);
            e.u64(*id);
            e.str(error);
        }
        Record::SessionOpen { session } => {
            e.u8(6);
            e.str(session);
        }
        Record::SessionDetach { session } => {
            e.u8(7);
            e.str(session);
        }
        Record::Stored { key, count } => {
            e.u8(8);
            e.u64(*key);
            e.u64(*count);
        }
        Record::Counter { counter, delta } => {
            e.u8(9);
            e.u8(counter.to_u8());
            e.u64(*delta);
        }
        Record::Reset => e.u8(10),
        Record::Snapshot(state) => {
            e.u8(11);
            enc_snapshot(&mut e, state);
        }
    }
    e.into_bytes()
}

fn enc_snapshot(e: &mut Enc, s: &SnapState) {
    e.u64(s.next_id);
    e.seq(&s.jobs, |e, j| {
        e.u64(j.id);
        e.u64(j.key);
        e.str(&j.workload);
        e.bool(j.tiny);
        e.bool(j.sanitize);
        e.opt(&j.max_cycles, |e, v| e.u64(*v));
        e.seq(&j.sessions, |e, sid| e.str(sid));
        match &j.state {
            SnapJobState::Queued { was_leased } => {
                e.u8(0);
                e.bool(*was_leased);
            }
            SnapJobState::Done {
                cached,
                wall_ms,
                worker_wall_ms,
                worker,
                payload,
            } => {
                e.u8(1);
                e.bool(*cached);
                e.f64(*wall_ms);
                e.f64(*worker_wall_ms);
                e.str(worker);
                e.bytes(payload);
            }
            SnapJobState::Failed(msg) => {
                e.u8(2);
                e.str(msg);
            }
        }
    });
    e.seq(&s.stored, |e, k| e.u64(*k));
    e.u64(s.session_next);
    e.seq(&s.sessions, |e, sess| {
        e.str(&sess.id);
        e.u64(sess.events);
    });
    let c = &s.counters;
    for v in [
        c.sims,
        c.stores,
        c.primary_hits,
        c.read_through,
        c.repairs,
        c.misses,
        c.dedup_hits,
        c.sheds,
        c.rebalances,
        c.resumed,
    ] {
        e.u64(v);
    }
}

fn dec_record(bytes: &[u8]) -> Result<Record, WireError> {
    let mut d = Dec::new(bytes);
    let rec = match d.u8()? {
        0 => Record::Submit {
            id: d.u64()?,
            key: d.u64()?,
            workload: d.str()?,
            tiny: d.bool()?,
            sanitize: d.bool()?,
            max_cycles: d.opt(|d| d.u64())?,
            session: d.opt(|d| d.str())?,
        },
        1 => Record::Subscribe {
            id: d.u64()?,
            session: d.str()?,
        },
        2 => Record::Lease {
            id: d.u64()?,
            worker: d.str()?,
        },
        3 => Record::Reclaim {
            id: d.u64()?,
            reason: d.str()?,
        },
        4 => Record::Done {
            id: d.u64()?,
            cached: d.bool()?,
            wall_ms: d.f64()?,
            worker_wall_ms: d.f64()?,
            worker: d.str()?,
            payload: d.bytes()?.to_vec(),
        },
        5 => Record::Failed {
            id: d.u64()?,
            error: d.str()?,
        },
        6 => Record::SessionOpen { session: d.str()? },
        7 => Record::SessionDetach { session: d.str()? },
        8 => Record::Stored {
            key: d.u64()?,
            count: d.u64()?,
        },
        9 => Record::Counter {
            counter: JCounter::from_u8(d.u8()?)?,
            delta: d.u64()?,
        },
        10 => Record::Reset,
        11 => Record::Snapshot(dec_snapshot(&mut d)?),
        _ => return Err(WireError::Malformed("record kind")),
    };
    if !d.is_done() {
        return Err(WireError::Malformed("trailing record bytes"));
    }
    Ok(rec)
}

fn dec_snapshot(d: &mut Dec) -> Result<SnapState, WireError> {
    let next_id = d.u64()?;
    let jobs = d.seq(|d| {
        let id = d.u64()?;
        let key = d.u64()?;
        let workload = d.str()?;
        let tiny = d.bool()?;
        let sanitize = d.bool()?;
        let max_cycles = d.opt(|d| d.u64())?;
        let sessions = d.seq(|d| d.str())?;
        let state = match d.u8()? {
            0 => SnapJobState::Queued {
                was_leased: d.bool()?,
            },
            1 => SnapJobState::Done {
                cached: d.bool()?,
                wall_ms: d.f64()?,
                worker_wall_ms: d.f64()?,
                worker: d.str()?,
                payload: d.bytes()?.to_vec(),
            },
            2 => SnapJobState::Failed(d.str()?),
            _ => return Err(WireError::Malformed("snapshot job state tag")),
        };
        Ok(SnapJob {
            id,
            key,
            workload,
            tiny,
            sanitize,
            max_cycles,
            sessions,
            state,
        })
    })?;
    let stored = d.seq(|d| d.u64())?;
    let session_next = d.u64()?;
    let sessions = d.seq(|d| {
        Ok(SnapSession {
            id: d.str()?,
            events: d.u64()?,
        })
    })?;
    let counters = SnapCounters {
        sims: d.u64()?,
        stores: d.u64()?,
        primary_hits: d.u64()?,
        read_through: d.u64()?,
        repairs: d.u64()?,
        misses: d.u64()?,
        dedup_hits: d.u64()?,
        sheds: d.u64()?,
        rebalances: d.u64()?,
        resumed: d.u64()?,
    };
    Ok(SnapState {
        next_id,
        jobs,
        stored,
        session_next,
        sessions,
        counters,
    })
}

/// An open write-ahead journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    len: u64,
    dirty: bool,
}

impl Journal {
    fn io(path: &Path, e: std::io::Error) -> JournalError {
        JournalError::Io {
            path: path.to_path_buf(),
            error: e.to_string(),
        }
    }

    /// Create (or truncate) a fresh journal at `path` and write the header.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be created or written.
    pub fn create(path: &Path) -> Result<Journal, JournalError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| Journal::io(path, e))?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Journal::io(path, e))?;
        file.write_all(JOURNAL_MAGIC)
            .and_then(|()| file.write_all(&JOURNAL_VERSION.to_le_bytes()))
            .and_then(|()| file.sync_data())
            .map_err(|e| Journal::io(path, e))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            len: HEADER_LEN,
            dirty: false,
        })
    }

    /// Open `path` and replay it. A missing (or torn-header) file becomes
    /// a fresh empty journal — `--recover` never refuses to start on a
    /// clean prefix, and "nothing yet" is the cleanest prefix there is. A
    /// torn tail is truncated back to the last valid record.
    ///
    /// # Errors
    ///
    /// [`JournalError::Unrecoverable`] when the magic or version belongs
    /// to something other than this format, [`JournalError::Io`]
    /// otherwise.
    pub fn open_recover(path: &Path) -> Result<(Journal, RecoveredState), JournalError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(Journal::io(path, e)),
        };
        if (bytes.len() as u64) < HEADER_LEN {
            // Missing file, or a crash beat the header write. Either way
            // the only valid prefix is empty — unless the bytes already
            // contradict the magic, in which case this is not our file.
            if !JOURNAL_MAGIC.starts_with(&bytes[..bytes.len().min(8)]) {
                return Err(JournalError::Unrecoverable {
                    path: path.to_path_buf(),
                    reason: "bad magic (not a gcl journal)".to_string(),
                });
            }
            let journal = Journal::create(path)?;
            return Ok((
                journal,
                RecoveredState {
                    state: SnapState::default(),
                    truncated: !bytes.is_empty(),
                    records: 0,
                },
            ));
        }
        if &bytes[..8] != JOURNAL_MAGIC {
            return Err(JournalError::Unrecoverable {
                path: path.to_path_buf(),
                reason: "bad magic (not a gcl journal)".to_string(),
            });
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != JOURNAL_VERSION {
            return Err(JournalError::Unrecoverable {
                path: path.to_path_buf(),
                reason: format!("format version {version} (this build reads {JOURNAL_VERSION})"),
            });
        }
        let mut state = SnapState::default();
        let mut pos = HEADER_LEN as usize;
        let mut valid = pos;
        let mut records = 0u64;
        // A decode error (torn/corrupt tail) or clean EOF both end the
        // valid prefix; the `while let` stops on either.
        while let Some(Ok((rec, next))) = read_one(&bytes, pos) {
            state.apply(rec);
            records += 1;
            pos = next;
            valid = next;
        }
        let truncated = valid as u64 != bytes.len() as u64;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| Journal::io(path, e))?;
        if truncated {
            file.set_len(valid as u64)
                .map_err(|e| Journal::io(path, e))?;
            file.sync_data().map_err(|e| Journal::io(path, e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| Journal::io(path, e))?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file,
                len: valid as u64,
                dirty: false,
            },
            RecoveredState {
                state,
                truncated,
                records,
            },
        ))
    }

    /// Append one record. The bytes reach the kernel immediately (so a
    /// `kill -9` of the coordinator loses nothing already appended);
    /// [`Journal::sync`] batches the fsync that defends against an OS
    /// crash.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the write fails.
    pub fn append(&mut self, rec: &Record) -> Result<(), JournalError> {
        let payload = enc_record(rec);
        let sum = fnv_fold_bytes(FNV_OFFSET, &payload);
        let mut framed = Vec::with_capacity(payload.len() + 16);
        framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        framed.extend_from_slice(&payload);
        framed.extend_from_slice(&sum.to_le_bytes());
        self.file
            .write_all(&framed)
            .map_err(|e| Journal::io(&self.path, e))?;
        self.len += framed.len() as u64;
        self.dirty = true;
        Ok(())
    }

    /// Flush batched appends to stable storage (no-op when clean).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the fsync fails.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        if self.dirty {
            self.file
                .sync_data()
                .map_err(|e| Journal::io(&self.path, e))?;
            self.dirty = false;
        }
        Ok(())
    }

    /// Compact: rewrite the journal as header + one snapshot record, via a
    /// temp file and an atomic rename so a crash mid-compaction leaves the
    /// old journal intact.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when any step fails.
    pub fn compact(&mut self, snap: &SnapState) -> Result<(), JournalError> {
        let tmp = self.path.with_extension("journal.tmp");
        {
            let mut replacement = Journal::create(&tmp)?;
            replacement.append(&Record::Snapshot(snap.clone()))?;
            replacement.sync()?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| Journal::io(&self.path, e))?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| Journal::io(&self.path, e))?;
        let len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| Journal::io(&self.path, e))?;
        self.file = file;
        self.len = len;
        self.dirty = false;
        Ok(())
    }

    /// Current journal size in bytes (compaction trigger input).
    pub fn bytes(&self) -> u64 {
        self.len
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Decode the record starting at `pos`. `None` is clean EOF; `Err(())` is
/// a torn or corrupt tail (caller truncates here).
#[allow(clippy::type_complexity)]
fn read_one(bytes: &[u8], pos: usize) -> Option<Result<(Record, usize), ()>> {
    if pos == bytes.len() {
        return None;
    }
    let header_end = pos.checked_add(8)?;
    if header_end > bytes.len() {
        return Some(Err(()));
    }
    let len = u64::from_le_bytes(bytes[pos..header_end].try_into().unwrap());
    let Ok(len) = usize::try_from(len) else {
        return Some(Err(()));
    };
    let Some(payload_end) = header_end.checked_add(len) else {
        return Some(Err(()));
    };
    let Some(frame_end) = payload_end.checked_add(8) else {
        return Some(Err(()));
    };
    if frame_end > bytes.len() {
        return Some(Err(()));
    }
    let payload = &bytes[header_end..payload_end];
    let sum = u64::from_le_bytes(bytes[payload_end..frame_end].try_into().unwrap());
    if fnv_fold_bytes(FNV_OFFSET, payload) != sum {
        return Some(Err(()));
    }
    match dec_record(payload) {
        Ok(rec) => Some(Ok((rec, frame_end))),
        Err(_) => Some(Err(())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gcl-journal-{}-{name}.journal", std::process::id()));
        p
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::SessionOpen {
                session: "s-1".to_string(),
            },
            Record::Submit {
                id: 1,
                key: 0xdead_beef,
                workload: "bfs".to_string(),
                tiny: true,
                sanitize: false,
                max_cycles: Some(123),
                session: Some("s-1".to_string()),
            },
            Record::Lease {
                id: 1,
                worker: "w1".to_string(),
            },
            Record::Done {
                id: 1,
                cached: false,
                wall_ms: 1.5,
                worker_wall_ms: 2.5,
                worker: "w1".to_string(),
                payload: vec![1, 2, 3],
            },
            Record::Stored {
                key: 0xdead_beef,
                count: 2,
            },
            Record::Counter {
                counter: JCounter::Rebalances,
                delta: 1,
            },
        ]
    }

    #[test]
    fn append_replay_round_trips() {
        let path = tmp_path("roundtrip");
        {
            let mut j = Journal::create(&path).unwrap();
            for r in sample_records() {
                j.append(&r).unwrap();
            }
            j.sync().unwrap();
        }
        let (_, rec) = Journal::open_recover(&path).unwrap();
        assert!(!rec.truncated);
        assert_eq!(rec.records, 6);
        let s = rec.state;
        assert_eq!(s.next_id, 1);
        assert_eq!(s.jobs.len(), 1);
        assert!(matches!(s.jobs[0].state, SnapJobState::Done { .. }));
        assert_eq!(s.jobs[0].sessions, vec!["s-1".to_string()]);
        assert_eq!(s.stored, vec![0xdead_beef]);
        // SessionOpen, then 1 queued + 1 leased + 1 done for the one
        // subscribed job: watermark 3.
        assert_eq!(
            s.sessions,
            vec![SnapSession {
                id: "s-1".to_string(),
                events: 3,
            }]
        );
        assert_eq!(s.counters.sims, 1);
        assert_eq!(s.counters.stores, 2);
        assert_eq!(s.counters.rebalances, 1);
        assert_eq!(s.session_next, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lease_without_done_recovers_as_was_leased() {
        let path = tmp_path("leased");
        {
            let mut j = Journal::create(&path).unwrap();
            for r in &sample_records()[..3] {
                j.append(r).unwrap();
            }
            j.sync().unwrap();
        }
        let (_, rec) = Journal::open_recover(&path).unwrap();
        assert_eq!(
            rec.state.jobs[0].state,
            SnapJobState::Queued { was_leased: true }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_preserves_state_and_shrinks() {
        let path = tmp_path("compact");
        let mut j = Journal::create(&path).unwrap();
        let big_payload = vec![7u8; 4096];
        for i in 1..=50u64 {
            j.append(&Record::Submit {
                id: i,
                key: i,
                workload: "bfs".to_string(),
                tiny: true,
                sanitize: false,
                max_cycles: None,
                session: None,
            })
            .unwrap();
            j.append(&Record::Done {
                id: i,
                cached: false,
                wall_ms: 1.0,
                worker_wall_ms: 1.0,
                worker: "w".to_string(),
                payload: big_payload.clone(),
            })
            .unwrap();
        }
        j.sync().unwrap();
        let before = j.bytes();
        let (_, rec) = Journal::open_recover(&path).unwrap();
        j = Journal::open_recover(&path).unwrap().0;
        j.compact(&rec.state).unwrap();
        assert!(j.bytes() < before, "{} !< {before}", j.bytes());
        let (_, again) = Journal::open_recover(&path).unwrap();
        assert_eq!(again.state, rec.state);
        assert_eq!(again.records, 1, "one snapshot record after compaction");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let path = tmp_path("torn");
        {
            let mut j = Journal::create(&path).unwrap();
            for r in sample_records() {
                j.append(&r).unwrap();
            }
            j.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Chop mid-record: replay must keep the clean prefix.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (_, rec) = Journal::open_recover(&path).unwrap();
        assert!(rec.truncated);
        assert_eq!(rec.records, 5, "last record lost, prefix kept");
        let after = std::fs::read(&path).unwrap().len();
        assert!(after < full.len() - 5, "file physically truncated");
        // A second recovery sees a clean file.
        let (_, rec2) = Journal::open_recover(&path).unwrap();
        assert!(!rec2.truncated);
        assert_eq!(rec2.records, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_version_skew_are_unrecoverable() {
        let path = tmp_path("magic");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(matches!(
            Journal::open_recover(&path),
            Err(JournalError::Unrecoverable { .. })
        ));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(JOURNAL_MAGIC);
        bytes.extend_from_slice(&99u16.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = Journal::open_recover(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_record_kind_round_trips() {
        let mut all = sample_records();
        all.extend([
            Record::Subscribe {
                id: 1,
                session: "s-2".to_string(),
            },
            Record::Reclaim {
                id: 1,
                reason: "worker dead".to_string(),
            },
            Record::Failed {
                id: 2,
                error: "boom".to_string(),
            },
            Record::SessionDetach {
                session: "s-1".to_string(),
            },
            Record::Reset,
            Record::Snapshot(SnapState {
                next_id: 9,
                jobs: vec![SnapJob {
                    id: 9,
                    key: 7,
                    workload: "lu".to_string(),
                    tiny: false,
                    sanitize: true,
                    max_cycles: None,
                    sessions: vec!["s-3".to_string()],
                    state: SnapJobState::Failed("x".to_string()),
                }],
                stored: vec![7],
                session_next: 3,
                sessions: vec![SnapSession {
                    id: "s-3".to_string(),
                    events: 4,
                }],
                counters: SnapCounters {
                    sims: 1,
                    ..SnapCounters::default()
                },
            }),
        ]);
        for rec in all {
            let bytes = enc_record(&rec);
            assert_eq!(dec_record(&bytes).unwrap(), rec, "{rec:?}");
        }
    }
}
