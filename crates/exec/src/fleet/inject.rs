//! Chaos injection for the fleet, mirroring simsan's `SanInject`.
//!
//! Each field induces one distributed-systems failure mode on the *worker*
//! side, so tests (and operators running game days) can prove the
//! coordinator detects and recovers from it. All hooks are always
//! compiled; a default [`FleetInject`] is inert.

/// Worker-side fault injection. One field per failure class in the chaos
/// matrix; see the module docs of [`crate::fleet`] for the recovery story
/// each mode exercises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetInject {
    /// Stop answering coordinator pings (the worker otherwise keeps
    /// running jobs). Detected by the pong deadline; the worker is marked
    /// dead and its leases reassigned.
    pub drop_heartbeat: bool,
    /// Sleep this long before starting every job, while holding its lease.
    /// Detected by lease expiry; the job is reassigned to a faster worker
    /// and the straggler's late result is deduplicated away.
    pub stall_ms: u64,
    /// Die abruptly — socket torn down mid-job, no result sent — when the
    /// N-th assignment (1-based) arrives, like `kill -9`. Detected by EOF;
    /// leases reassigned.
    pub kill_after_assigns: Option<u64>,
    /// Corrupt the payload of the first N result frames (the checksum
    /// still describes the honest bytes). Detected by the coordinator's
    /// frame checksum; the job is reassigned.
    pub corrupt_results: u64,
    /// Go silent — stop reading and writing, socket left open — this many
    /// milliseconds after joining, as if the network partitioned. Detected
    /// by the pong deadline (EOF never comes).
    pub partition_after_ms: Option<u64>,
    /// How long a partitioned worker holds its silent socket open before
    /// exiting (long enough for the coordinator's deadline to fire).
    pub partition_hold_ms: u64,
}

impl Default for FleetInject {
    fn default() -> FleetInject {
        FleetInject {
            drop_heartbeat: false,
            stall_ms: 0,
            kill_after_assigns: None,
            corrupt_results: 0,
            partition_after_ms: None,
            partition_hold_ms: 3_000,
        }
    }
}

impl FleetInject {
    /// An inert injector (the default).
    pub fn none() -> FleetInject {
        FleetInject::default()
    }

    /// True when no fault is armed.
    pub fn is_clean(&self) -> bool {
        *self == FleetInject::default()
    }

    /// Parse a comma-separated chaos spec, e.g.
    /// `drop-heartbeat,stall=500,kill-after=2,corrupt=1,partition-after=100`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the unknown or malformed directive.
    pub fn parse(spec: &str) -> Result<FleetInject, String> {
        let mut inject = FleetInject::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let part = part.trim();
            let (name, value) = match part.split_once('=') {
                Some((n, v)) => (n, Some(v)),
                None => (part, None),
            };
            let ms = |v: Option<&str>| -> Result<u64, String> {
                v.ok_or_else(|| format!("`{name}` needs =N"))?
                    .parse::<u64>()
                    .map_err(|e| format!("`{part}`: {e}"))
            };
            match name {
                "drop-heartbeat" => inject.drop_heartbeat = true,
                "stall" => inject.stall_ms = ms(value)?,
                "kill-after" => inject.kill_after_assigns = Some(ms(value)?.max(1)),
                "corrupt" => inject.corrupt_results = ms(value)?,
                "partition-after" => inject.partition_after_ms = Some(ms(value)?),
                "partition-hold" => inject.partition_hold_ms = ms(value)?,
                other => {
                    return Err(format!(
                        "unknown chaos directive `{other}` (expected drop-heartbeat, \
                         stall=MS, kill-after=N, corrupt=N, partition-after=MS, \
                         partition-hold=MS)"
                    ))
                }
            }
        }
        Ok(inject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean_and_parse_round_trips() {
        assert!(FleetInject::none().is_clean());
        let inject = FleetInject::parse("drop-heartbeat,stall=500,kill-after=2,corrupt=1").unwrap();
        assert!(inject.drop_heartbeat);
        assert_eq!(inject.stall_ms, 500);
        assert_eq!(inject.kill_after_assigns, Some(2));
        assert_eq!(inject.corrupt_results, 1);
        assert!(inject.partition_after_ms.is_none());
        assert!(!inject.is_clean());
    }

    #[test]
    fn parse_rejects_unknown_and_malformed_directives() {
        assert!(FleetInject::parse("explode").is_err());
        assert!(FleetInject::parse("stall").is_err());
        assert!(FleetInject::parse("stall=abc").is_err());
        assert!(FleetInject::parse("").unwrap().is_clean());
        let p = FleetInject::parse("partition-after=100,partition-hold=250").unwrap();
        assert_eq!(p.partition_after_ms, Some(100));
        assert_eq!(p.partition_hold_ms, 250);
    }
}
