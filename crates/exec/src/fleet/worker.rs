//! The worker side of fleet mode: `gcl serve --join COORD:PORT`.
//!
//! A worker dials the coordinator (capped-backoff retry on connect),
//! introduces itself with a `join` frame, and then serves one full-duplex
//! NDJSON connection: it answers `ping` with `pong`, runs every `assign`
//! on one of its runner threads (consulting the shared result cache when
//! configured), and reports `done`/`fail` frames. The result payload is
//! the complete wire-encoded `LaunchStats` plus an FNV checksum over the
//! honest bytes, so the coordinator can tell a corrupt frame from a valid
//! one.
//!
//! All [`FleetInject`] chaos modes act here — the worker is the component
//! that fails in production, so it is the component the chaos layer
//! breaks.

use super::inject::FleetInject;
use crate::cache::ResultCache;
use crate::job::run_job_from;
use crate::proto::{
    decode_key, fetched_frame, inventory_frame, write_frame, FrameError, FrameReader, MAX_FRAME,
};
use crate::serve::parse_submit;
use crate::trace_store::TraceStore;
use gcl_rng::{backoff::Backoff, Rng};
use gcl_stats::Json;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// How a worker joins and runs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address, `HOST:PORT`.
    pub coord: String,
    /// Name reported in the coordinator's per-worker outcome table.
    pub name: String,
    /// Concurrent jobs this worker runs (its advertised lease capacity).
    pub slots: usize,
    /// Consult (and fill) this result cache.
    pub cache: Option<ResultCache>,
    /// Serve assigned jobs by replaying shipped trace containers instead
    /// of functional execution; absent or mismatched containers fail the
    /// job structurally (reported as `fail` frames), never fall back.
    pub traces: Option<TraceStore>,
    /// Chaos injection (inert by default).
    pub inject: FleetInject,
    /// Extra connect attempts before giving up on the coordinator.
    pub connect_retries: u64,
    /// Backoff policy between connect attempts.
    pub backoff: Backoff,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
    /// Most replica payloads held for the coordinator's fleet cache
    /// before FIFO eviction kicks in.
    pub replica_cap: usize,
    /// Redial and re-join when the coordinator connection drops, instead
    /// of exiting. Held leases and replica keys are re-announced with an
    /// `inventory` frame so a recovered coordinator resumes them.
    pub rejoin: bool,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            coord: "127.0.0.1:7177".to_string(),
            name: "worker".to_string(),
            slots: 1,
            cache: None,
            traces: None,
            inject: FleetInject::none(),
            connect_retries: 8,
            backoff: Backoff::default(),
            seed: 0x0077_726b, // "wrk"
            replica_cap: 1024,
            rejoin: false,
        }
    }
}

/// Bounded key → checksummed-payload store a worker keeps on behalf of the
/// coordinator's replicated fleet cache. FIFO eviction: the coordinator
/// re-fans hot keys on every recomputation, so recency tracking buys
/// little over insertion order here.
struct ReplicaStore {
    map: HashMap<u64, (String, String, f64)>,
    order: VecDeque<u64>,
    cap: usize,
}

impl ReplicaStore {
    fn new(cap: usize) -> ReplicaStore {
        ReplicaStore {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    fn insert(&mut self, key: u64, stats_hex: String, sum: String, wall_ms: f64) {
        if self.map.insert(key, (stats_hex, sum, wall_ms)).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.cap {
                let Some(evict) = self.order.pop_front() else {
                    break;
                };
                self.map.remove(&evict);
            }
        }
    }

    fn get(&self, key: u64) -> Option<&(String, String, f64)> {
        self.map.get(&key)
    }

    fn keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.map.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

/// What a worker did before its connection ended.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Jobs this worker completed (successfully or with a structured
    /// failure) and reported.
    pub jobs_run: u64,
    /// The kill-mid-job injection fired.
    pub killed: bool,
    /// The partition injection fired.
    pub partitioned: bool,
    /// Times the worker redialled and re-joined after losing the
    /// coordinator connection (always 0 without `--rejoin`).
    pub rejoins: u64,
}

/// Everything runner threads share with the reader loop.
struct WorkerState {
    writer: Mutex<TcpStream>,
    /// Suppress all writes: a partitioned or killed worker is silent.
    silent: AtomicBool,
    /// The worker is exiting for good: runners stop retrying reports.
    closing: AtomicBool,
    /// Rejoin mode: a runner whose report write fails retries on the
    /// (re-dialled) socket instead of giving up.
    rejoin: bool,
    jobs_run: AtomicU64,
    corrupt_budget: AtomicU64,
    cache: Option<ResultCache>,
    traces: Option<TraceStore>,
    inject: FleetInject,
    /// Replica payloads held for the coordinator's fleet cache.
    replica: Mutex<ReplicaStore>,
    /// Job ids accepted but not yet reported: what an `inventory` frame
    /// re-announces as held leases after a reconnect.
    running: Mutex<HashSet<u64>>,
    /// A second handle on the socket so a runner can tear it down abruptly
    /// (the kill-mid-job injection).
    sock: Mutex<TcpStream>,
}

fn dial(opts: &WorkerOptions, rng: &mut Rng) -> Result<TcpStream, String> {
    let mut last = String::new();
    for attempt in 0..=opts.connect_retries {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(opts.backoff.delay_ms(attempt, rng)));
        }
        match TcpStream::connect(&opts.coord) {
            Ok(s) => return Ok(s),
            Err(e) => last = format!("cannot reach coordinator {}: {e}", opts.coord),
        }
    }
    Err(format!(
        "{last} (after {} attempts)",
        opts.connect_retries + 1
    ))
}

/// Dial, set socket deadlines, and run the join handshake. Returns the
/// frame reader plus two extra handles on the socket (writer, teardown).
fn connect_handshake(
    opts: &WorkerOptions,
    rng: &mut Rng,
) -> Result<(FrameReader<TcpStream>, TcpStream, TcpStream), String> {
    let stream = dial(opts, rng)?;
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|e| format!("cannot set read deadline: {e}"))?;
    stream
        .set_write_timeout(Some(Duration::from_millis(2_000)))
        .map_err(|e| format!("cannot set write deadline: {e}"))?;
    let writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let sock = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let mut reader = FrameReader::new(stream, MAX_FRAME);
    {
        let mut w = &writer;
        write_frame(
            &mut w,
            &Json::obj(vec![
                ("op", Json::Str("join".into())),
                ("name", Json::Str(opts.name.clone())),
                ("slots", Json::UInt(opts.slots.max(1) as u64)),
            ]),
        )
        .map_err(|e| format!("join failed: {e}"))?;
    }
    let ack_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match reader.next_frame() {
            Ok(line) => {
                let ack = Json::parse(&line).map_err(|e| format!("bad join ack: {e}"))?;
                if !matches!(ack.get("ok"), Some(Json::Bool(true))) {
                    return Err(format!("coordinator refused join: {ack}"));
                }
                break;
            }
            Err(FrameError::Timeout) => {
                if Instant::now() >= ack_deadline {
                    return Err("coordinator never acknowledged join".to_string());
                }
            }
            Err(e) => return Err(format!("join failed: {e}")),
        }
    }
    Ok((reader, writer, sock))
}

/// Re-announce held leases and replica inventory right after a join ack.
fn send_inventory(state: &WorkerState) -> Result<(), String> {
    let running: Vec<u64> = {
        let running = state.running.lock().expect("running poisoned");
        let mut ids: Vec<u64> = running.iter().copied().collect();
        ids.sort_unstable();
        ids
    };
    let keys = state.replica.lock().expect("replica poisoned").keys();
    let mut w = state.writer.lock().expect("writer poisoned");
    write_frame(&mut *w, &inventory_frame(&running, &keys))
        .map_err(|e| format!("inventory failed: {e}"))
}

/// Why one connection's reader loop ended.
enum ConnEnd {
    /// The coordinator said `close`: clean shutdown.
    Close,
    /// A chaos injection (partition) ended the worker deliberately.
    Chaos,
    /// The connection dropped (read error / coordinator death).
    Dropped,
}

/// Join the coordinator at `opts.coord` and serve assignments until the
/// coordinator closes the connection (or a chaos injection ends the worker
/// first). With [`WorkerOptions::rejoin`], a dropped connection triggers a
/// redial + re-join + `inventory` reconciliation instead of an exit.
/// Returns what happened, for tests and CLI logging.
///
/// # Errors
///
/// A human-readable message when the coordinator cannot be reached or the
/// join handshake fails.
pub fn run_worker(opts: WorkerOptions) -> Result<WorkerReport, String> {
    let mut rng = Rng::new(opts.seed);
    let (mut reader, writer, sock) = connect_handshake(&opts, &mut rng)?;
    let state = WorkerState {
        writer: Mutex::new(writer),
        silent: AtomicBool::new(false),
        closing: AtomicBool::new(false),
        rejoin: opts.rejoin,
        jobs_run: AtomicU64::new(0),
        corrupt_budget: AtomicU64::new(opts.inject.corrupt_results),
        cache: opts.cache.clone(),
        traces: opts.traces.clone(),
        inject: opts.inject.clone(),
        replica: Mutex::new(ReplicaStore::new(opts.replica_cap)),
        running: Mutex::new(HashSet::new()),
        sock: Mutex::new(sock),
    };
    // The first inventory is empty but still sent: it tells the
    // coordinator this worker speaks the reconciliation protocol, and a
    // recovering coordinator needs it even from first-time joiners.
    send_inventory(&state).map_err(|e| format!("join failed: {e}"))?;

    // Serve: the main thread reads frames; `slots` runner threads execute
    // assignments pulled off a local channel. The channel (and the
    // runners) survive reconnects — only the socket is replaced.
    let (tx, rx) = mpsc::channel::<Assignment>();
    let rx = Mutex::new(rx);
    let killed = AtomicBool::new(false);
    let mut partitioned = false;
    let mut rejoins = 0u64;
    let started = Instant::now();
    let mut assigns = 0u64;
    let served: Result<(), String> = std::thread::scope(|scope| {
        for _ in 0..opts.slots.max(1) {
            scope.spawn(|| runner_loop(&state, &rx, &killed));
        }
        let result = loop {
            let end = serve_connection(
                &state,
                &mut reader,
                &tx,
                &started,
                &mut partitioned,
                &mut assigns,
            );
            match end {
                ConnEnd::Close | ConnEnd::Chaos => break Ok(()),
                ConnEnd::Dropped => {
                    if !opts.rejoin || killed.load(Ordering::SeqCst) {
                        break Ok(());
                    }
                    // Redial with a fresh retry budget, swap the socket
                    // handles under the runners, and reconcile. The
                    // handshake itself also gets the budget: a redial can
                    // land in the dying coordinator's accept backlog and
                    // be reset mid-join, which is the same transient as a
                    // refused connect, not a reason to exit.
                    let mut attempt = 0u64;
                    let handshake = loop {
                        match connect_handshake(&opts, &mut rng) {
                            Ok(conn) => break Ok(conn),
                            Err(e) => {
                                attempt += 1;
                                if attempt > opts.connect_retries {
                                    break Err(e);
                                }
                                std::thread::sleep(Duration::from_millis(
                                    opts.backoff.delay_ms(attempt, &mut rng),
                                ));
                            }
                        }
                    };
                    match handshake {
                        Ok((new_reader, new_writer, new_sock)) => {
                            reader = new_reader;
                            *state.writer.lock().expect("writer poisoned") = new_writer;
                            *state.sock.lock().expect("sock poisoned") = new_sock;
                            rejoins += 1;
                            if let Err(e) = send_inventory(&state) {
                                eprintln!("worker `{}`: {e}", opts.name);
                            }
                        }
                        Err(e) => break Err(e),
                    }
                }
            }
        };
        // Closing the channel lets idle runners exit; busy ones finish
        // their current job first. `closing` stops rejoin-mode runners
        // from retrying reports forever against a dead fleet.
        state.closing.store(true, Ordering::SeqCst);
        drop(tx);
        result
    });
    served?;
    Ok(WorkerReport {
        jobs_run: state.jobs_run.load(Ordering::SeqCst),
        killed: killed.load(Ordering::SeqCst),
        partitioned,
        rejoins,
    })
}

/// Read and serve frames on the current connection until it ends.
fn serve_connection(
    state: &WorkerState,
    reader: &mut FrameReader<TcpStream>,
    tx: &mpsc::Sender<Assignment>,
    started: &Instant,
    partitioned: &mut bool,
    assigns: &mut u64,
) -> ConnEnd {
    loop {
        if let Some(after) = state.inject.partition_after_ms {
            if !*partitioned && started.elapsed() >= Duration::from_millis(after) {
                // Network partition: go silent with the socket still
                // open, so only a heartbeat deadline can unmask us.
                *partitioned = true;
                state.silent.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(state.inject.partition_hold_ms));
                return ConnEnd::Chaos;
            }
        }
        let line = match reader.next_frame() {
            Ok(line) => line,
            Err(FrameError::Timeout) => continue,
            Err(_) => return ConnEnd::Dropped,
        };
        let Ok(frame) = Json::parse(&line) else {
            continue;
        };
        match frame.get("op").and_then(Json::as_str) {
            Some("ping") => {
                if state.inject.drop_heartbeat || state.silent.load(Ordering::SeqCst) {
                    continue;
                }
                let seq = frame.get("seq").and_then(Json::as_u64).unwrap_or(0);
                let mut w = state.writer.lock().expect("writer poisoned");
                let _ = write_frame(
                    &mut *w,
                    &Json::obj(vec![
                        ("op", Json::Str("pong".into())),
                        ("seq", Json::UInt(seq)),
                    ]),
                );
            }
            Some("assign") => {
                let Some(id) = frame.get("job").and_then(Json::as_u64) else {
                    continue;
                };
                *assigns += 1;
                let fatal = state.inject.kill_after_assigns == Some(*assigns);
                match parse_submit(&frame) {
                    Ok(spec) => {
                        state.running.lock().expect("running poisoned").insert(id);
                        let _ = tx.send(Assignment { id, spec, fatal });
                    }
                    Err(e) => {
                        let mut w = state.writer.lock().expect("writer poisoned");
                        let _ = write_frame(
                            &mut *w,
                            &Json::obj(vec![
                                ("op", Json::Str("fail".into())),
                                ("job", Json::UInt(id)),
                                ("error", Json::Str(e)),
                            ]),
                        );
                    }
                }
            }
            Some("store") => {
                // The coordinator fans a finished job's checksummed
                // payload to this worker as part of a replica set.
                // Store it verbatim — verification happens on the
                // coordinator when it reads the payload back.
                let key = frame
                    .get("key")
                    .and_then(Json::as_str)
                    .and_then(|t| decode_key(t).ok());
                let stats = frame.get("stats").and_then(Json::as_str);
                let sum = frame.get("sum").and_then(Json::as_str);
                let wall_ms = frame.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
                if let (Some(key), Some(stats), Some(sum)) = (key, stats, sum) {
                    let mut store = state.replica.lock().expect("replica poisoned");
                    store.insert(key, stats.to_string(), sum.to_string(), wall_ms);
                }
            }
            Some("fetch") => {
                let Some(job) = frame.get("job").and_then(Json::as_u64) else {
                    continue;
                };
                let Some(key) = frame
                    .get("key")
                    .and_then(Json::as_str)
                    .and_then(|t| decode_key(t).ok())
                else {
                    continue;
                };
                if state.silent.load(Ordering::SeqCst) {
                    continue;
                }
                let reply = {
                    let store = state.replica.lock().expect("replica poisoned");
                    let hit = store
                        .get(key)
                        .map(|(stats, sum, wall_ms)| (stats.as_str(), sum.as_str(), *wall_ms));
                    match hit {
                        Some((stats, sum, wall_ms)) => {
                            fetched_frame(job, key, Some((stats, sum, wall_ms)))
                        }
                        None => fetched_frame(job, key, None),
                    }
                };
                let mut w = state.writer.lock().expect("writer poisoned");
                let _ = write_frame(&mut *w, &reply);
            }
            Some("close") => return ConnEnd::Close,
            _ => {}
        }
    }
}

struct Assignment {
    id: u64,
    spec: crate::job::JobSpec,
    fatal: bool,
}

fn runner_loop(state: &WorkerState, rx: &Mutex<mpsc::Receiver<Assignment>>, killed: &AtomicBool) {
    loop {
        let assignment = {
            let rx = rx.lock().expect("assignment queue poisoned");
            rx.recv()
        };
        let Ok(Assignment { id, spec, fatal }) = assignment else {
            break;
        };
        if fatal {
            // kill -9 mid-job: the lease is held, the job is "running",
            // and the worker vanishes without a goodbye.
            std::thread::sleep(Duration::from_millis(30));
            state.silent.store(true, Ordering::SeqCst);
            killed.store(true, Ordering::SeqCst);
            let _ = state
                .sock
                .lock()
                .expect("sock poisoned")
                .shutdown(Shutdown::Both);
            break;
        }
        let lease_start = Instant::now();
        if state.inject.stall_ms > 0 {
            // Straggle: hold the lease well past its deadline.
            std::thread::sleep(Duration::from_millis(state.inject.stall_ms));
        }
        let result = run_job_from(&spec, state.cache.as_ref(), state.traces.as_ref());
        // Wall time the worker held the lease: the stall is deliberately
        // included so straggler injection shows up in the timing column.
        let worker_wall_ms = lease_start.elapsed().as_secs_f64() * 1_000.0;
        state.jobs_run.fetch_add(1, Ordering::SeqCst);
        let frame = match result.outcome {
            Ok(out) => {
                // The checksum always describes the honest payload; the
                // corrupt-result injection then flips a payload nibble,
                // which is exactly what the coordinator's verification
                // must catch.
                let (mut hex, sum) = super::encode_stats_payload(&out.stats);
                if state
                    .corrupt_budget
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                    .is_ok()
                {
                    let flipped = if hex.starts_with('0') { '1' } else { '0' };
                    hex.replace_range(0..1, &flipped.to_string());
                }
                Json::obj(vec![
                    ("op", Json::Str("done".into())),
                    ("job", Json::UInt(id)),
                    ("cached", Json::Bool(out.cached)),
                    ("wall_ms", Json::Float(out.wall_ms)),
                    ("worker_wall_ms", Json::Float(worker_wall_ms)),
                    ("stats", Json::Str(hex)),
                    ("sum", Json::Str(sum)),
                ])
            }
            Err(e) => Json::obj(vec![
                ("op", Json::Str("fail".into())),
                ("job", Json::UInt(id)),
                ("error", Json::Str(e.to_string())),
            ]),
        };
        let mut reported = state.silent.load(Ordering::SeqCst);
        while !reported {
            let sent = {
                let mut w = state.writer.lock().expect("writer poisoned");
                write_frame(&mut *w, &frame).is_ok()
            };
            if sent {
                reported = true;
            } else if !state.rejoin || state.closing.load(Ordering::SeqCst) {
                // Without rejoin the socket is gone for good: the old
                // behaviour (give up, let the lease be reclaimed).
                state.running.lock().expect("running poisoned").remove(&id);
                return;
            } else {
                // The reader loop is redialling; once it swaps the writer
                // in, this report lands on the fresh connection — the job
                // stays in `running` so the inventory re-announces it.
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        state.running.lock().expect("running poisoned").remove(&id);
    }
}
