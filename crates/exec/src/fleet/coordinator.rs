//! The fleet coordinator: `gcl coordinate --addr HOST:PORT`.
//!
//! One listener serves two populations. Workers dial in, send a `join`
//! frame, and from then on hold a full-duplex connection over which the
//! coordinator pushes `assign` frames and `ping` heartbeats and receives
//! `done` / `fail` / `pong`. Clients speak the familiar single-node verbs
//! (`submit` / `status` / `result` / `shutdown`); the first frame on a
//! connection decides which role it plays.
//!
//! Supervision is two independent deadlines:
//!
//! * **Heartbeat.** Every [`CoordinatorOptions::heartbeat_ms`] the
//!   coordinator pings each live worker; a worker whose last pong is older
//!   than [`CoordinatorOptions::heartbeat_timeout_ms`] is declared dead
//!   ([`WORKER_DEAD`]) and every lease it held returns to the front of the
//!   queue. This catches crashes, partitions, and heartbeat loss alike.
//! * **Lease.** Every assignment carries a deadline
//!   ([`CoordinatorOptions::lease_ms`] out). A lease that expires —
//!   typically a stalled worker — is reclaimed ([`LEASE_EXPIRED`]) and the
//!   job reassigned, even if the worker still looks alive.
//!
//! Both paths give at-least-once execution; results are deduplicated by
//! first-result-wins per job and by content-addressed cache key across
//! submits, so duplicated work never changes an answer (see the
//! [`crate::fleet`] module docs for the determinism argument).

use crate::job::JobSpec;
use crate::proto::{write_frame, FrameError, FrameReader};
use crate::serve::{error_response, parse_submit, QUEUE_FULL};
use gcl_sim::{fnv_fold, LaunchStats};
use gcl_stats::{Accumulator, Json};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Reason logged when a heartbeat deadline declares a worker dead.
pub const WORKER_DEAD: &str = "worker dead";

/// Reason logged when a lease deadline reclaims a running job.
pub const LEASE_EXPIRED: &str = "lease expired";

/// How the coordinator runs.
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Address to bind, e.g. `127.0.0.1:7177` (port 0 picks a free port).
    pub addr: String,
    /// Maximum queued (not yet leased) jobs before submits are rejected
    /// with [`QUEUE_FULL`] backpressure.
    pub queue_cap: usize,
    /// Lease duration per assignment; an expired lease is reassigned.
    pub lease_ms: u64,
    /// Ping interval for worker heartbeats.
    pub heartbeat_ms: u64,
    /// A worker whose last pong is older than this is dead.
    pub heartbeat_timeout_ms: u64,
    /// Largest frame accepted (result frames carry hex-encoded stats, so
    /// this is larger than the single-node default).
    pub max_frame: usize,
    /// Per-connection write deadline.
    pub write_timeout_ms: u64,
    /// Print the per-worker outcome table on drain.
    pub print_outcomes: bool,
}

impl Default for CoordinatorOptions {
    fn default() -> CoordinatorOptions {
        CoordinatorOptions {
            addr: "127.0.0.1:7177".to_string(),
            queue_cap: 64,
            lease_ms: 60_000,
            heartbeat_ms: 500,
            heartbeat_timeout_ms: 2_000,
            max_frame: 1024 * 1024,
            write_timeout_ms: 5_000,
            print_outcomes: true,
        }
    }
}

/// A completed job's payload, as verified from a worker's `done` frame.
#[derive(Debug, Clone)]
struct FleetResult {
    stats: LaunchStats,
    wall_ms: f64,
    cached: bool,
    worker: String,
}

/// Lifecycle of one fleet job.
#[derive(Debug)]
enum FleetJobState {
    Queued,
    Leased { worker: usize, deadline: Instant },
    Done(Box<FleetResult>),
    Failed(String),
}

struct FleetJob {
    spec: JobSpec,
    key: u64,
    state: FleetJobState,
    /// Times this job has been assigned (> 1 means it was reassigned).
    assigns: u64,
    /// The worker that last held this job's lease. Rendezvous placement is
    /// deterministic per (key, worker), so without anti-affinity a
    /// reclaimed job would bounce back to the same straggler forever;
    /// assignment avoids this worker whenever any other candidate exists.
    last_worker: Option<usize>,
}

/// All jobs ever submitted, plus the dispatch queue and the cache-key
/// dedup index.
#[derive(Default)]
struct JobTable {
    map: HashMap<u64, FleetJob>,
    /// Dispatch order; reclaimed jobs go to the *front* so recovery work
    /// is not starved by a deep queue.
    queue: VecDeque<u64>,
    /// Cache key → job id: a resubmitted spec joins the existing job.
    by_key: HashMap<u64, u64>,
    next_id: u64,
}

/// One registered worker, live or dead.
struct WorkerEntry {
    name: String,
    slots: usize,
    /// Write half of the worker's connection; `None` once dead.
    writer: Option<TcpStream>,
    alive: bool,
    last_pong: Instant,
    last_ping: Instant,
    ping_seq: u64,
    /// Job ids currently leased to this worker.
    leased: HashSet<u64>,
    // Outcome counters for the drain-time table.
    done: u64,
    failed: u64,
    corrupt: u64,
    reassigned: u64,
}

/// Everything the accept loop, session handlers, and supervisor share.
///
/// Lock order: `jobs` before `workers`; never the reverse.
struct CoordShared {
    opts: CoordinatorOptions,
    jobs: Mutex<JobTable>,
    workers: Mutex<Vec<WorkerEntry>>,
    draining: AtomicBool,
    /// Set once the drain completes; accept and supervisor loops exit.
    finished: AtomicBool,
    /// Queue-depth samples, taken each supervisor tick.
    depth: Mutex<Accumulator>,
}

/// A bound, not-yet-running coordinator. Binding is separated from running
/// so callers (and tests) can learn the actual address before blocking.
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<CoordShared>,
}

impl Coordinator {
    /// Bind the listener and set up shared state.
    ///
    /// # Errors
    ///
    /// A human-readable message if the options are inconsistent or the
    /// address cannot be bound.
    pub fn bind(opts: CoordinatorOptions) -> Result<Coordinator, String> {
        if opts.queue_cap == 0 {
            return Err("coordinator needs a positive queue capacity".to_string());
        }
        if opts.lease_ms == 0 || opts.heartbeat_ms == 0 || opts.heartbeat_timeout_ms == 0 {
            return Err("coordinator deadlines must be positive".to_string());
        }
        if opts.heartbeat_timeout_ms <= opts.heartbeat_ms {
            return Err(format!(
                "heartbeat timeout ({} ms) must exceed the ping interval ({} ms)",
                opts.heartbeat_timeout_ms, opts.heartbeat_ms
            ));
        }
        let listener =
            TcpListener::bind(&opts.addr).map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
        let shared = Arc::new(CoordShared {
            jobs: Mutex::new(JobTable::default()),
            workers: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            depth: Mutex::new(Accumulator::default()),
            opts,
        });
        Ok(Coordinator { listener, shared })
    }

    /// The actual bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// A human-readable message if the socket address cannot be read.
    pub fn addr(&self) -> Result<std::net::SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))
    }

    /// Run until a `shutdown` request drains every job to a terminal
    /// state. Blocks the calling thread; sessions and the supervisor run
    /// on their own threads.
    ///
    /// # Errors
    ///
    /// A human-readable message on listener failure.
    pub fn run(self) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;
        std::thread::scope(|scope| {
            {
                let shared = Arc::clone(&self.shared);
                scope.spawn(move || supervisor_loop(&shared));
            }
            loop {
                if self.shared.finished.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let shared = Arc::clone(&self.shared);
                        scope.spawn(move || handle_session(stream, &shared));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => eprintln!("warning: accept failed: {e}"),
                }
            }
        });
        if self.shared.opts.print_outcomes {
            print_outcome_table(&self.shared);
        }
        Ok(())
    }
}

/// Print the per-worker outcome table a drain leaves behind: graceful
/// degradation is only trustworthy when you can see who did what.
fn print_outcome_table(shared: &CoordShared) {
    let workers = shared.workers.lock().expect("workers poisoned");
    eprintln!("fleet outcome ({} workers):", workers.len());
    eprintln!("  worker            state  done  failed  corrupt  reassigned");
    for w in workers.iter() {
        eprintln!(
            "  {:<16} {:>6}  {:>4}  {:>6}  {:>7}  {:>10}",
            w.name,
            if w.alive { "alive" } else { "dead" },
            w.done,
            w.failed,
            w.corrupt,
            w.reassigned
        );
    }
    let depth = shared.depth.lock().expect("depth poisoned");
    if depth.count > 0 {
        eprintln!(
            "  queue depth: mean {:.1}, max {:.0} over {} samples",
            depth.mean(),
            depth.max,
            depth.count
        );
    }
}

/// Declare worker `idx` dead for `reason`: tear down its socket, return
/// every lease it held to the front of the queue. Caller holds both locks
/// (jobs first).
fn mark_dead(jobs: &mut JobTable, workers: &mut [WorkerEntry], idx: usize, reason: &str) {
    let w = &mut workers[idx];
    if !w.alive {
        return;
    }
    w.alive = false;
    if let Some(writer) = w.writer.take() {
        let _ = writer.shutdown(Shutdown::Both);
    }
    let leases: Vec<u64> = w.leased.drain().collect();
    if !leases.is_empty() {
        eprintln!(
            "fleet: {reason}: `{}` loses {} lease(s), reassigning",
            w.name,
            leases.len()
        );
    } else {
        eprintln!("fleet: {reason}: `{}`", w.name);
    }
    for id in leases {
        w.reassigned += 1;
        requeue_front(jobs, id);
    }
}

/// Return a leased job to the front of the queue (if it has not already
/// reached a terminal state through a late result).
fn requeue_front(jobs: &mut JobTable, id: u64) {
    if let Some(job) = jobs.map.get_mut(&id) {
        if matches!(job.state, FleetJobState::Leased { .. }) {
            job.state = FleetJobState::Queued;
            jobs.queue.push_front(id);
        }
    }
}

/// The supervisor: heartbeats, deadline enforcement, assignment, drain.
fn supervisor_loop(shared: &Arc<CoordShared>) {
    let tick = Duration::from_millis(20);
    loop {
        if shared.finished.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        {
            let mut jobs = shared.jobs.lock().expect("jobs poisoned");
            let mut workers = shared.workers.lock().expect("workers poisoned");

            // Heartbeats: ping on schedule, bury on deadline.
            let hb = Duration::from_millis(shared.opts.heartbeat_ms);
            let hb_timeout = Duration::from_millis(shared.opts.heartbeat_timeout_ms);
            for idx in 0..workers.len() {
                if !workers[idx].alive {
                    continue;
                }
                if now.duration_since(workers[idx].last_pong) > hb_timeout {
                    mark_dead(&mut jobs, &mut workers, idx, WORKER_DEAD);
                    continue;
                }
                if now.duration_since(workers[idx].last_ping) >= hb {
                    workers[idx].ping_seq += 1;
                    let seq = workers[idx].ping_seq;
                    workers[idx].last_ping = now;
                    let ping = Json::obj(vec![
                        ("op", Json::Str("ping".into())),
                        ("seq", Json::UInt(seq)),
                    ]);
                    if send_to_worker(&mut workers[idx], &ping).is_err() {
                        mark_dead(&mut jobs, &mut workers, idx, WORKER_DEAD);
                    }
                }
            }

            // Leases: reclaim expired ones even from live workers — a
            // straggler keeps its connection but loses the job.
            let expired: Vec<(u64, usize)> = jobs
                .map
                .iter()
                .filter_map(|(id, job)| match job.state {
                    FleetJobState::Leased { worker, deadline } if now >= deadline => {
                        Some((*id, worker))
                    }
                    _ => None,
                })
                .collect();
            for (id, widx) in expired {
                if let Some(w) = workers.get_mut(widx) {
                    w.leased.remove(&id);
                    w.reassigned += 1;
                    eprintln!(
                        "fleet: {LEASE_EXPIRED}: job {id} reclaimed from `{}`",
                        w.name
                    );
                }
                requeue_front(&mut jobs, id);
            }

            // Assignment: shard the queue across live workers with free
            // slots, rendezvous-hashing on the content-addressed key so
            // placement is deterministic for a fixed fleet.
            let mut stuck = VecDeque::new();
            while let Some(id) = jobs.queue.pop_front() {
                let Some(job) = jobs.map.get(&id) else {
                    continue;
                };
                if !matches!(job.state, FleetJobState::Queued) {
                    continue;
                }
                let key = job.key;
                let avoid = job.last_worker;
                let free =
                    |w: &WorkerEntry| w.alive && w.writer.is_some() && w.leased.len() < w.slots;
                let candidates: Vec<usize> = workers
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| free(w))
                    .map(|(widx, _)| widx)
                    .collect();
                let chosen = candidates
                    .iter()
                    .copied()
                    // Anti-affinity: never hand a reclaimed job straight
                    // back to the worker it was just taken from, unless it
                    // is the only one left.
                    .filter(|widx| candidates.len() == 1 || Some(*widx) != avoid)
                    .max_by_key(|widx| fnv_fold(key, *widx as u64));
                let Some(widx) = chosen else {
                    // No capacity (or no fleet yet): hold the job.
                    stuck.push_back(id);
                    continue;
                };
                let job = jobs.map.get_mut(&id).expect("job exists");
                let assign = Json::obj(vec![
                    ("op", Json::Str("assign".into())),
                    ("job", Json::UInt(id)),
                    ("workload", Json::Str(job.spec.workload.clone())),
                    ("tiny", Json::Bool(job.spec.tiny)),
                    ("sanitize", Json::Bool(job.spec.cfg.sanitize)),
                ]);
                if send_to_worker(&mut workers[widx], &assign).is_err() {
                    mark_dead(&mut jobs, &mut workers, widx, WORKER_DEAD);
                    // mark_dead may have requeued other jobs; this one is
                    // still ours to put back.
                    jobs.queue.push_front(id);
                    continue;
                }
                let job = jobs.map.get_mut(&id).expect("job exists");
                job.assigns += 1;
                job.last_worker = Some(widx);
                job.state = FleetJobState::Leased {
                    worker: widx,
                    deadline: now + Duration::from_millis(shared.opts.lease_ms),
                };
                workers[widx].leased.insert(id);
            }
            // Jobs with nowhere to go wait at the front, in order.
            for id in stuck.into_iter().rev() {
                jobs.queue.push_front(id);
            }

            shared
                .depth
                .lock()
                .expect("depth poisoned")
                .add(jobs.queue.len() as f64);

            // Drain: once every job is terminal, dismiss the fleet.
            if shared.draining.load(Ordering::SeqCst) {
                let all_terminal = jobs
                    .map
                    .values()
                    .all(|j| matches!(j.state, FleetJobState::Done(_) | FleetJobState::Failed(_)));
                if all_terminal {
                    let close = Json::obj(vec![("op", Json::Str("close".into()))]);
                    for w in workers.iter_mut() {
                        if w.alive {
                            let _ = send_to_worker(w, &close);
                        }
                        if let Some(writer) = w.writer.take() {
                            let _ = writer.shutdown(Shutdown::Both);
                        }
                    }
                    shared.finished.store(true, Ordering::SeqCst);
                }
            }
        }
        std::thread::sleep(tick);
    }
}

fn send_to_worker(worker: &mut WorkerEntry, frame: &Json) -> Result<(), FrameError> {
    let Some(writer) = worker.writer.as_mut() else {
        return Err(FrameError::Closed);
    };
    write_frame(writer, frame)
}

/// First frame decides the role: `join` starts a worker session, anything
/// else is a client request.
fn handle_session(stream: TcpStream, shared: &Arc<CoordShared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        shared.opts.write_timeout_ms.max(1),
    )));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("warning: connection clone failed: {e}");
            return;
        }
    };
    let mut reader = FrameReader::new(stream, shared.opts.max_frame);
    let first = loop {
        match reader.next_frame() {
            Ok(line) => break line,
            Err(FrameError::Timeout) => {
                if shared.finished.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(FrameError::TooLarge { limit }) => {
                let _ = write_frame(
                    &mut writer,
                    &error_response(format!("frame too large (cap {limit} bytes)")),
                );
                return;
            }
            Err(_) => return,
        }
    };
    let request = match Json::parse(&first) {
        Ok(j) => j,
        Err(e) => {
            let _ = write_frame(&mut writer, &error_response(format!("bad request: {e}")));
            return;
        }
    };
    if request.get("op").and_then(Json::as_str) == Some("join") {
        worker_session(&request, reader, writer, shared);
    } else {
        client_session(&request, reader, writer, shared);
    }
}

/// Register the worker and relay its frames until the connection ends.
fn worker_session(
    join: &Json,
    mut reader: FrameReader<TcpStream>,
    mut writer: TcpStream,
    shared: &Arc<CoordShared>,
) {
    let name = join
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("worker")
        .to_string();
    let slots = join.get("slots").and_then(Json::as_u64).unwrap_or(1).max(1) as usize;
    if shared.draining.load(Ordering::SeqCst) {
        let _ = write_frame(&mut writer, &error_response("coordinator is draining"));
        return;
    }
    let idx = {
        let mut workers = shared.workers.lock().expect("workers poisoned");
        let now = Instant::now();
        workers.push(WorkerEntry {
            name: name.clone(),
            slots,
            writer: Some(match writer.try_clone() {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("warning: worker stream clone failed: {e}");
                    return;
                }
            }),
            alive: true,
            last_pong: now,
            last_ping: now,
            ping_seq: 0,
            leased: HashSet::new(),
            done: 0,
            failed: 0,
            corrupt: 0,
            reassigned: 0,
        });
        workers.len() - 1
    };
    eprintln!("fleet: worker `{name}` joined with {slots} slot(s)");
    if write_frame(&mut writer, &Json::obj(vec![("ok", Json::Bool(true))])).is_err() {
        let mut jobs = shared.jobs.lock().expect("jobs poisoned");
        let mut workers = shared.workers.lock().expect("workers poisoned");
        mark_dead(&mut jobs, &mut workers, idx, WORKER_DEAD);
        return;
    }
    loop {
        let line = match reader.next_frame() {
            Ok(line) => line,
            Err(FrameError::Timeout) => {
                if shared.finished.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            // EOF or transport error: the worker is gone. (TooLarge from a
            // worker means a result overflow — same recovery: bury it.)
            Err(_) => {
                let mut jobs = shared.jobs.lock().expect("jobs poisoned");
                let mut workers = shared.workers.lock().expect("workers poisoned");
                mark_dead(&mut jobs, &mut workers, idx, WORKER_DEAD);
                return;
            }
        };
        let Ok(frame) = Json::parse(&line) else {
            continue;
        };
        match frame.get("op").and_then(Json::as_str) {
            Some("pong") => {
                let mut workers = shared.workers.lock().expect("workers poisoned");
                if let Some(w) = workers.get_mut(idx) {
                    w.last_pong = Instant::now();
                }
            }
            Some("done") => handle_done(&frame, idx, shared),
            Some("fail") => handle_fail(&frame, idx, shared),
            _ => {}
        }
    }
}

/// Verify and record a worker's `done` frame. A bad checksum or an
/// undecodable payload is treated exactly like a lost worker's job: the
/// corruption is counted and the job reassigned.
fn handle_done(frame: &Json, idx: usize, shared: &Arc<CoordShared>) {
    let Some(id) = frame.get("job").and_then(Json::as_u64) else {
        return;
    };
    let verified = verify_result(frame);
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let mut workers = shared.workers.lock().expect("workers poisoned");
    if let Some(w) = workers.get_mut(idx) {
        w.leased.remove(&id);
    }
    let Some(job) = jobs.map.get_mut(&id) else {
        return;
    };
    match verified {
        Ok((stats, wall_ms, cached)) => {
            // First result wins; a duplicate from a reassigned job carries
            // identical bytes (the run is a pure function of the spec), so
            // dropping it is sound.
            if matches!(
                job.state,
                FleetJobState::Leased { .. } | FleetJobState::Queued
            ) {
                let worker_name = workers
                    .get(idx)
                    .map_or_else(String::new, |w| w.name.clone());
                job.state = FleetJobState::Done(Box::new(FleetResult {
                    stats,
                    wall_ms,
                    cached,
                    worker: worker_name,
                }));
                // It may have been requeued by a pessimistic deadline;
                // drop the stale queue entry lazily (assignment skips
                // non-Queued ids).
                if let Some(w) = workers.get_mut(idx) {
                    w.done += 1;
                }
            }
        }
        Err(why) => {
            eprintln!("fleet: corrupt result for job {id}: {why}; reassigning");
            if let Some(w) = workers.get_mut(idx) {
                w.corrupt += 1;
                w.reassigned += 1;
            }
            requeue_front(&mut jobs, id);
        }
    }
}

/// Decode and checksum-verify the `stats` payload of a `done` frame.
fn verify_result(frame: &Json) -> Result<(LaunchStats, f64, bool), String> {
    let hex = frame
        .get("stats")
        .and_then(Json::as_str)
        .ok_or("missing stats payload")?;
    let sum_text = frame
        .get("sum")
        .and_then(Json::as_str)
        .ok_or("missing checksum")?;
    let stats = super::decode_stats_payload(hex, sum_text)?;
    let wall_ms = frame.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
    let cached = frame.get("cached").and_then(Json::as_bool).unwrap_or(false);
    Ok((stats, wall_ms, cached))
}

/// Record a worker's structured `fail` frame. Failures are deterministic
/// (the simulation is a pure function of the spec), so a failed job is
/// terminal — rerunning it elsewhere would fail identically.
fn handle_fail(frame: &Json, idx: usize, shared: &Arc<CoordShared>) {
    let Some(id) = frame.get("job").and_then(Json::as_u64) else {
        return;
    };
    let error = frame
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("unknown error")
        .to_string();
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let mut workers = shared.workers.lock().expect("workers poisoned");
    if let Some(w) = workers.get_mut(idx) {
        w.leased.remove(&id);
    }
    if let Some(job) = jobs.map.get_mut(&id) {
        if matches!(
            job.state,
            FleetJobState::Leased { .. } | FleetJobState::Queued
        ) {
            job.state = FleetJobState::Failed(error);
            if let Some(w) = workers.get_mut(idx) {
                w.failed += 1;
            }
        }
    }
}

/// Serve client verbs on this connection until EOF or drain.
fn client_session(
    first: &Json,
    mut reader: FrameReader<TcpStream>,
    mut writer: TcpStream,
    shared: &Arc<CoordShared>,
) {
    let mut request = first.clone();
    loop {
        let response = handle_client_request(&request, shared);
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
        request = loop {
            match reader.next_frame() {
                Ok(line) => match Json::parse(&line) {
                    Ok(j) => break j,
                    Err(e) => {
                        if write_frame(&mut writer, &error_response(format!("bad request: {e}")))
                            .is_err()
                        {
                            return;
                        }
                    }
                },
                Err(FrameError::Timeout) => {
                    if shared.finished.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(FrameError::TooLarge { limit }) => {
                    let _ = write_frame(
                        &mut writer,
                        &error_response(format!("frame too large (cap {limit} bytes)")),
                    );
                    return;
                }
                Err(_) => return,
            }
        };
    }
}

fn handle_client_request(request: &Json, shared: &Arc<CoordShared>) -> Json {
    match request.get("op").and_then(Json::as_str) {
        Some("submit") => handle_submit(request, shared),
        Some("status") => handle_status(shared),
        Some("result") => handle_result(request, shared),
        Some("shutdown") => {
            shared.draining.store(true, Ordering::SeqCst);
            let pending = {
                let jobs = shared.jobs.lock().expect("jobs poisoned");
                jobs.queue.len()
            };
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("draining", Json::Bool(true)),
                ("pending", Json::UInt(pending as u64)),
            ])
        }
        Some(other) => error_response(format!(
            "unknown op `{other}` (expected submit, status, result, shutdown)"
        )),
        None => error_response("missing `op` field"),
    }
}

fn handle_submit(request: &Json, shared: &Arc<CoordShared>) -> Json {
    if shared.draining.load(Ordering::SeqCst) {
        return error_response("coordinator is draining (shutdown requested)");
    }
    let spec = match parse_submit(request) {
        Ok(spec) => spec,
        Err(e) => return error_response(e),
    };
    let key = match spec.fingerprint() {
        Ok(fp) => fp.key(),
        Err(e) => return error_response(e.to_string()),
    };
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    // Dedup by content-addressed key: a resubmit of the same spec joins
    // the existing job (unless that job failed — a client retrying a
    // failure deserves a fresh attempt).
    if let Some(&existing) = jobs.by_key.get(&key) {
        if let Some(job) = jobs.map.get(&existing) {
            if !matches!(job.state, FleetJobState::Failed(_)) {
                return Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("id", Json::UInt(existing)),
                    ("deduped", Json::Bool(true)),
                ]);
            }
        }
    }
    if jobs.queue.len() >= shared.opts.queue_cap {
        return error_response(format!(
            "{QUEUE_FULL} ({} pending, cap {})",
            jobs.queue.len(),
            shared.opts.queue_cap
        ));
    }
    jobs.next_id += 1;
    let id = jobs.next_id;
    jobs.map.insert(
        id,
        FleetJob {
            spec,
            key,
            state: FleetJobState::Queued,
            assigns: 0,
            last_worker: None,
        },
    );
    jobs.queue.push_back(id);
    jobs.by_key.insert(key, id);
    Json::obj(vec![("ok", Json::Bool(true)), ("id", Json::UInt(id))])
}

fn count_states(jobs: &MutexGuard<'_, JobTable>) -> (u64, u64, u64, u64) {
    let (mut queued, mut running, mut done, mut failed) = (0u64, 0u64, 0u64, 0u64);
    for job in jobs.map.values() {
        match job.state {
            FleetJobState::Queued => queued += 1,
            FleetJobState::Leased { .. } => running += 1,
            FleetJobState::Done(_) => done += 1,
            FleetJobState::Failed(_) => failed += 1,
        }
    }
    (queued, running, done, failed)
}

fn handle_status(shared: &Arc<CoordShared>) -> Json {
    let jobs = shared.jobs.lock().expect("jobs poisoned");
    let workers = shared.workers.lock().expect("workers poisoned");
    let (queued, running, done, failed) = count_states(&jobs);
    let worker_rows = workers
        .iter()
        .map(|w| {
            Json::obj(vec![
                ("name", Json::Str(w.name.clone())),
                ("alive", Json::Bool(w.alive)),
                ("slots", Json::UInt(w.slots as u64)),
                ("leased", Json::UInt(w.leased.len() as u64)),
                ("done", Json::UInt(w.done)),
                ("failed", Json::UInt(w.failed)),
                ("corrupt", Json::UInt(w.corrupt)),
                ("reassigned", Json::UInt(w.reassigned)),
            ])
        })
        .collect();
    let depth = shared.depth.lock().expect("depth poisoned");
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("queue_depth", Json::UInt(jobs.queue.len() as u64)),
        (
            "draining",
            Json::Bool(shared.draining.load(Ordering::SeqCst)),
        ),
        (
            "jobs",
            Json::obj(vec![
                ("queued", Json::UInt(queued)),
                ("running", Json::UInt(running)),
                ("done", Json::UInt(done)),
                ("failed", Json::UInt(failed)),
            ]),
        ),
        ("workers", Json::Arr(worker_rows)),
        ("queue_depth_stats", depth.to_json()),
    ])
}

fn handle_result(request: &Json, shared: &Arc<CoordShared>) -> Json {
    let Some(id) = request.get("id").and_then(Json::as_u64) else {
        return error_response("result needs a numeric `id` field");
    };
    let jobs = shared.jobs.lock().expect("jobs poisoned");
    let Some(job) = jobs.map.get(&id) else {
        return error_response(format!("no job with id {id}"));
    };
    let mut fields = vec![("ok", Json::Bool(true)), ("id", Json::UInt(id))];
    match &job.state {
        FleetJobState::Queued => fields.push(("state", Json::Str("queued".into()))),
        FleetJobState::Leased { .. } => fields.push(("state", Json::Str("running".into()))),
        FleetJobState::Failed(msg) => {
            fields.push(("state", Json::Str("failed".into())));
            fields.push(("error", Json::Str(msg.clone())));
        }
        FleetJobState::Done(result) => {
            let (hex, sum) = super::encode_stats_payload(&result.stats);
            fields.push(("state", Json::Str("done".into())));
            fields.push(("workload", Json::Str(job.spec.workload.clone())));
            fields.push(("cached", Json::Bool(result.cached)));
            fields.push(("cycles", Json::UInt(result.stats.cycles)));
            fields.push(("warp_insts", Json::UInt(result.stats.sm.warp_insts)));
            fields.push(("wall_ms", Json::Float(result.wall_ms)));
            fields.push((
                "digest",
                match result.stats.digest {
                    Some(d) => Json::Str(format!("0x{d:016x}")),
                    None => Json::Null,
                },
            ));
            fields.push(("worker", Json::Str(result.worker.clone())));
            fields.push(("assigns", Json::UInt(job.assigns)));
            fields.push(("stats", Json::Str(hex)));
            fields.push(("sum", Json::Str(sum)));
        }
    }
    Json::obj(fields)
}
